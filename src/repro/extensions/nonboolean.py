"""Towards non-boolean queries (Section 8's outlook).

RegLFP captures the boolean PTIME queries but "falls short of being able
to express all PTIME queries of higher arity"; the paper reports ongoing
work on extending the logics with a convex-closure operator for that
purpose.  This module implements the natural reading of that operator on
the *output* side: a fixed-point computation selects a set of regions,
and the operator turns the selected regions into a relation — either
their union (safe: stays semi-linear, since regions are semi-linear) or
their convex closure (the paper's proposal).

Both are executable here; the union form is what a non-boolean RegLFP
query can safely return, the convex form shows the intended extension.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import GeometryError
from repro.constraints.relation import (
    ConstraintRelation,
    union_relations,
)
from repro.extensions.convex_closure import convex_hull_of_points
from repro.regions.nc1 import SimplexRegion
from repro.twosorted.structure import RegionExtension


def union_of_regions(
    extension: RegionExtension, indices: Iterable[int]
) -> ConstraintRelation:
    """The union of the selected regions as a relation (safe output)."""
    variables = extension.spatial.variables
    selected = [
        extension.decomposition.region(index).as_relation(variables)
        for index in indices
    ]
    if not selected:
        return ConstraintRelation.empty(variables)
    return union_relations(selected)


def convex_hull_of_regions(
    extension: RegionExtension, indices: Sequence[int]
) -> ConstraintRelation:
    """Convex closure of the selected (bounded) regions as a relation.

    This is the operator Section 8 proposes adding.  It is *not* part of
    the query languages in this package — adding it naively would defeat
    the Section 4 restriction — but is provided for experimentation with
    non-boolean query capture.
    """
    variables = extension.spatial.variables
    points: list = []
    for index in indices:
        region = extension.decomposition.region(index)
        if not region.is_bounded():
            raise GeometryError(
                "convex closure of unbounded regions is not supported"
            )
        relation = region.as_relation(variables)
        for polyhedron in relation.polyhedra():
            if not polyhedron.is_empty():
                points.extend(polyhedron.vertices())
    if not points:
        return ConstraintRelation.empty(variables)
    hull = convex_hull_of_points(points)
    helper = SimplexRegion(hull, "outer", -1)
    return ConstraintRelation.make(
        variables, helper.defining_formula(variables)
    )
