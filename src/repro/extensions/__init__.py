"""Executable versions of the paper's expressiveness boundary results.

* :mod:`repro.extensions.convex_closure` — Section 4's warning: if region
  quantification ranged over regions of *derived* relations, convex
  closure — and with it multiplication (Figure 5) — would become
  definable, breaking closure of the language.  The construction is
  implemented and validated, which is exactly why the main logics do not
  offer it.
* :mod:`repro.extensions.nonboolean` — Section 8's outlook: a convex
  closure *output* operator as a step towards capturing non-boolean
  queries.
"""

from repro.extensions.convex_closure import (
    convex_hull_of_points,
    convex_hull_relation,
    mult_holds,
)
from repro.extensions.nonboolean import convex_hull_of_regions

__all__ = [
    "convex_hull_of_points",
    "convex_hull_relation",
    "mult_holds",
    "convex_hull_of_regions",
]
