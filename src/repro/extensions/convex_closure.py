"""Section 4's expressiveness warning, made executable.

The paper explains why region variables must range over the regions of
the *input* relation only: quantifiers of the form ``∃R ∈ region(ψ)``
over derived relations ψ would let queries compute convex closures, and
convex closure defines multiplication (Figure 5):

    for positive x, y, z:   x · y = z
        iff  (x, y - 1) ∈ conv({(0, y), (z, 0)})

because the segment from (0, y) to (z, 0) passes through (z/y, y-1).
Multiplication takes queries outside the class of semi-linear relations,
destroying both closure and the complexity bounds.

This module implements the construction so the warning can be *tested*:
:func:`mult_holds` decides x·y = z using only convex closure and
membership — no arithmetic multiplication of variables anywhere in the
decision path.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import GeometryError
from repro.geometry.vrep import VPolyhedron
from repro.constraints.relation import ConstraintRelation
from repro.regions.nc1 import SimplexRegion


def convex_hull_of_points(
    points: list[tuple[Fraction, ...]],
) -> VPolyhedron:
    """The closed convex hull of finitely many rational points."""
    if not points:
        raise GeometryError("convex hull of no points")
    return VPolyhedron.make(points, open_hull=False)


def convex_hull_relation(
    relation: ConstraintRelation,
) -> ConstraintRelation:
    """The convex hull of a *bounded* relation, as a relation.

    Collects the vertices of every disjunct's closure and converts the
    hull back to an H-representation by quantifier elimination.  This is
    the operation that must NOT be an operator of the region logics; it
    exists here to demonstrate (and test) why.
    """
    vertices: list[tuple[Fraction, ...]] = []
    for polyhedron in relation.polyhedra():
        if polyhedron.is_empty():
            continue
        if not polyhedron.is_bounded():
            raise GeometryError(
                "convex_hull_relation requires a bounded relation"
            )
        vertices.extend(polyhedron.vertices())
    if not vertices:
        return ConstraintRelation.empty(relation.variables)
    hull = convex_hull_of_points(vertices)
    region = SimplexRegion(hull, "outer", -1)
    return ConstraintRelation.make(
        relation.variables, region.defining_formula(relation.variables)
    )


def mult_holds(x: Fraction, y: Fraction, z: Fraction) -> bool:
    """Decide x · y = z for positive rationals via Figure 5.

    Constructs conv({(0, y), (z, 0)}) and tests whether (x, y-1) lies on
    it.  No multiplication of the inputs happens anywhere: the hull
    membership test is a linear program in the hull coefficients.
    """
    if x <= 0 or y <= 0 or z <= 0:
        raise ValueError("the Figure 5 construction assumes positive values")
    # The witness point (z/y, y-1) lies on the segment only for y >= 1;
    # for smaller y rescale both y and z (x·y = z iff x·(2y) = 2z),
    # which stays within the construction's means (doubling is addition).
    while y < 1:
        y *= 2
        z *= 2
    segment = convex_hull_of_points([
        (Fraction(0), y),
        (z, Fraction(0)),
    ])
    return segment.closure_contains((x, y - 1))
