"""The incidence graph of an arrangement (Section 3, Figure 4).

The graph has one proper vertex per face, storing the face's position
vector, plus two improper vertices: ∅, a virtual (-1)-dimensional face
incident to every 0-dimensional face, and A(S), a (d+1)-dimensional face
every d-dimensional face is incident to.  Each proper vertex carries two
directed edge lists — faces incident *to* it (one dimension down) and
faces it is incident to (one dimension up) — mirroring the data structure
the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arrangement.adjacency import faces_incident
from repro.arrangement.builder import Arrangement
from repro.arrangement.faces import Face

EMPTY_FACE = "∅"
FULL_FACE = "A(S)"


@dataclass(frozen=True)
class IncidenceGraph:
    """Incidence graph over face indices, with improper vertices.

    ``down[i]`` lists the faces incident to face ``i`` (dimension one
    lower, in its boundary); ``up[i]`` lists the faces ``i`` is incident
    to (dimension one higher).  The improper vertices appear as the
    strings ``"∅"`` and ``"A(S)"`` in those lists.
    """

    arrangement: Arrangement
    down: tuple[tuple[object, ...], ...]
    up: tuple[tuple[object, ...], ...]

    @staticmethod
    def build(arrangement: Arrangement) -> "IncidenceGraph":
        faces = arrangement.faces
        by_dimension: dict[int, list[Face]] = {}
        for face in faces:
            by_dimension.setdefault(face.dimension, []).append(face)

        down: list[tuple[object, ...]] = []
        up: list[tuple[object, ...]] = []
        for face in faces:
            lower = [
                g.index
                for g in by_dimension.get(face.dimension - 1, [])
                if faces_incident(face, g)
            ]
            higher = [
                g.index
                for g in by_dimension.get(face.dimension + 1, [])
                if faces_incident(face, g)
            ]
            lower_list: list[object] = sorted(lower)
            higher_list: list[object] = sorted(higher)
            if face.dimension == 0:
                lower_list.insert(0, EMPTY_FACE)
            if face.dimension == arrangement.dimension:
                higher_list.append(FULL_FACE)
            down.append(tuple(lower_list))
            up.append(tuple(higher_list))
        return IncidenceGraph(arrangement, tuple(down), tuple(up))

    # ------------------------------------------------------------------
    def incident_faces(self, index: int) -> tuple[object, ...]:
        """All vertices incident with face ``index`` (both directions)."""
        return self.down[index] + self.up[index]

    def proper_edges(self) -> list[tuple[int, int]]:
        """All (lower, higher) incidence pairs between proper faces."""
        edges = []
        for index, ups in enumerate(self.up):
            for target in ups:
                if isinstance(target, int):
                    edges.append((index, target))
        return edges

    def edge_count(self) -> int:
        """Number of edges including those to improper vertices."""
        return sum(len(ups) for ups in self.up) + sum(
            1 for downs in self.down for t in downs if t == EMPTY_FACE
        )

    def neighbourhood(self, index: int) -> "dict[str, tuple[object, ...]]":
        """The local picture around one face (Figure 4 reproduces this)."""
        return {"down": self.down[index], "up": self.up[index]}
