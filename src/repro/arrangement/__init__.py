"""Hyperplane arrangements (Section 3 of the paper).

Given a linear constraint relation S represented in DNF, this package

* extracts the hyperplane set 𝕳(S) induced by the atoms of the
  representation (:mod:`repro.arrangement.hyperplanes`),
* builds the arrangement A(S): the partition of ℝ^d into *faces* — maximal
  sets of points sharing a position (sign) vector with respect to 𝕳(S)
  (:mod:`repro.arrangement.builder`),
* exposes the incidence graph with the two improper vertices ∅ and A(S)
  (:mod:`repro.arrangement.incidence`) and the adjacency relation used by
  the region logics (:mod:`repro.arrangement.adjacency`).

Faces are enumerated exactly, by depth-first extension of partial sign
vectors with LP-feasibility pruning; for a fixed dimension the total work
is polynomial in the number of hyperplanes (Theorem 3.1).
"""

from repro.arrangement.adjacency import faces_adjacent, face_in_closure_of
from repro.arrangement.builder import Arrangement, build_arrangement
from repro.arrangement.faces import Face
from repro.arrangement.hyperplanes import hyperplanes_of_relation
from repro.arrangement.incidence import IncidenceGraph
from repro.arrangement.incremental import (
    IncrementalArrangement,
    build_arrangement_incremental,
)

__all__ = [
    "Arrangement",
    "Face",
    "IncidenceGraph",
    "IncrementalArrangement",
    "build_arrangement",
    "build_arrangement_incremental",
    "faces_adjacent",
    "face_in_closure_of",
    "hyperplanes_of_relation",
]
