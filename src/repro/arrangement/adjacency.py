"""Adjacency and closure relations between arrangement faces.

Definition 4.1 defines two regions to be adjacent when a point of one has
every ε-neighbourhood meeting the other — equivalently (as the paper
notes) when one region is contained in the closure of the other.  For
arrangement faces the closure relation is purely combinatorial on
position vectors:

    f ⊆ closure(g)   iff   for every hyperplane i:
                               v_g(i) = 0  ⟹  v_f(i) = 0, and
                               v_g(i) ≠ 0  ⟹  v_f(i) ∈ {0, v_g(i)}

i.e. v_f arises from v_g by zeroing some entries.  (The closure of a
non-empty face is the relaxation of its strict constraints, and the sign
vectors satisfying the relaxed system are exactly those above.)
"""

from __future__ import annotations

from repro.arrangement.faces import Face


def signs_in_closure(face_signs: tuple[int, ...],
                     other_signs: tuple[int, ...]) -> bool:
    """Combinatorial closure test on position vectors."""
    if len(face_signs) != len(other_signs):
        raise ValueError("sign vectors of different arrangements")
    return all(
        f == g or f == 0 for f, g in zip(face_signs, other_signs)
    )


def face_in_closure_of(face: Face, other: Face) -> bool:
    """Is ``face`` contained in the closure of ``other``?"""
    return signs_in_closure(face.signs, other.signs)


def faces_adjacent(face: Face, other: Face) -> bool:
    """Definition 4.1's adjacency for arrangement faces.

    Two distinct faces are adjacent iff one lies in the closure of the
    other.  Adjacent faces always differ in dimension (the paper's
    remark): zeroing a sign entry strictly lowers the dimension.
    """
    if face.signs == other.signs:
        return False
    return face_in_closure_of(face, other) or face_in_closure_of(other, face)


def faces_incident(face: Face, other: Face) -> bool:
    """The incidence relation of Section 3.

    Two faces are incident iff one is of dimension exactly one less than
    the other and is contained in the other's boundary (equivalently its
    closure, for distinct faces).
    """
    if abs(face.dimension - other.dimension) != 1:
        return False
    lower, higher = (
        (face, other) if face.dimension < other.dimension else (other, face)
    )
    return face_in_closure_of(lower, higher)
