"""Arrangement construction: exact face enumeration (Theorem 3.1).

The faces of an arrangement of hyperplanes h_1..h_n are exactly the
non-empty sign vectors v ∈ {-1, 0, +1}^n: the system "on h_i if v_i = 0,
strictly above if +1, strictly below if -1" must be feasible.  We
enumerate them by depth-first extension of partial sign vectors, pruning
any prefix whose constraint system is already infeasible (exact LP).

Every internal node of the search tree corresponds to a non-empty
intersection of sign conditions, and each such prefix extends to at least
one face, so the number of explored nodes is at most n times the number
of faces; for fixed dimension d the face count is O(n^d) and the whole
construction runs in polynomial time — the constructive content of
Theorem 3.1.

Fast path
---------

Exact simplex solves dominate the DFS, so the enumerator works hard to
avoid them (all three prunings are exact — they never change the face
set, only who pays for the feasibility certificate):

* **witness reuse** — the parent prefix carries a rational witness point;
  its side of the next hyperplane decides one child branch for free.
* **derived witnesses** — the parent region is a relatively open convex
  polyhedron, so if it meets the new hyperplane (the sign-0 child is
  feasible, witness ``x0``) and the parent witness ``w`` lies strictly on
  one side, the segment through ``w`` and ``x0`` extended slightly past
  ``x0`` stays inside the region and lands strictly on the *other* side.
  A closed-form rational step length replaces the third LP solve.
* **system dedup** — candidate systems are normalised (sorted, duplicate
  rows removed) and memoised per build, so repeated hyperplane multiples
  and recurring subsystems hit a dictionary instead of the solver.

``witness_reuse=False`` / ``dedup=False`` select the naive baseline used
by the E2 before/after benchmark (``repro bench e2``); ``parallel`` fans
top-level sign-vector subtrees out to worker processes (see
:mod:`repro.arrangement.parallel`) while preserving the sequential face
order exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.store.disk import DiskStore

from repro.errors import GeometryError
from repro.geometry.fourier_motzkin import LinearConstraint
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.linalg import Vector
from repro.geometry.simplex import strict_feasible_point
from repro.obs.metrics import get_registry
from repro.obs.tracing import TRACER
from repro.constraints.relation import ConstraintRelation

#: Sign-vector DFS telemetry: explored search-tree nodes, faces kept,
#: and LP solves avoided by the fast-path prunings.
_DFS_NODES = get_registry().counter("arrangement.dfs_nodes")
_FACES = get_registry().counter("arrangement.faces")
_BUILDS = get_registry().counter("arrangement.builds")
_LP_SKIPPED = get_registry().counter("arrangement.lp_skipped")
_DEDUP_HITS = get_registry().counter("arrangement.dedup_hits")
_SIGN_INDEX_BUILDS = get_registry().counter("arrangement.sign_index_builds")
from repro.arrangement.faces import (
    Face,
    SignVector,
    face_dimension,
    sign_vector_constraints,
)
from repro.arrangement.hyperplanes import hyperplanes_of_relation


@dataclass(frozen=True)
class Arrangement:
    """The arrangement A(S): hyperplanes, faces and lookups."""

    dimension: int
    hyperplanes: tuple[Hyperplane, ...]
    faces: tuple[Face, ...]
    relation: ConstraintRelation | None
    #: Lazily built ``signs -> face`` lookup.  An explicit non-field
    #: cache (excluded from ``__eq__`` / ``__hash__`` / ``repr``) instead
    #: of ``object.__setattr__`` tricks on the frozen dataclass.
    _face_index: dict = field(
        default_factory=dict, compare=False, repr=False, hash=False
    )

    # -- lookups ---------------------------------------------------------
    def face_by_signs(self, signs: SignVector) -> Face | None:
        """The face with the given position vector, if it is non-empty."""
        return self._sign_index().get(tuple(signs))

    def _sign_index(self) -> dict[SignVector, Face]:
        index = self._face_index
        if not index and self.faces:
            _SIGN_INDEX_BUILDS.inc()
            index.update({face.signs: face for face in self.faces})
        return index

    def locate(self, point: Sequence[Fraction]) -> Face:
        """The unique face containing a rational point."""
        if len(point) != self.dimension:
            raise GeometryError("point dimension mismatch")
        signs = tuple(
            int(plane.side_of(point)) for plane in self.hyperplanes
        )
        face = self.face_by_signs(signs)
        if face is None:  # pragma: no cover - the faces partition space
            raise GeometryError("point's sign vector matches no face")
        return face

    def faces_of_dimension(self, dimension: int) -> list[Face]:
        return [f for f in self.faces if f.dimension == dimension]

    @property
    def vertices(self) -> list[Face]:
        """0-dimensional faces, in canonical (lexicographic point) order."""
        zero_dim = self.faces_of_dimension(0)
        return sorted(zero_dim, key=lambda f: f.sample)

    def faces_in_relation(self) -> list[Face]:
        return [f for f in self.faces if f.in_relation]

    def face_count_by_dimension(self) -> dict[int, int]:
        """Census {dimension: number of faces} (the paper's 7/9/3 example)."""
        census: dict[int, int] = {}
        for face in self.faces:
            census[face.dimension] = census.get(face.dimension, 0) + 1
        return census

    def __iter__(self) -> Iterator[Face]:
        return iter(self.faces)

    def __len__(self) -> int:
        return len(self.faces)


def _plane_rows(
    plane: Hyperplane,
) -> dict[int, LinearConstraint]:
    """The three sign-condition rows of one hyperplane, built once."""
    return {
        sign: sign_vector_constraints([plane], (sign,))[0]
        for sign in (-1, 0, 1)
    }


def _step_beyond(
    system: Sequence[LinearConstraint],
    anchor: Vector,
    inside: Vector,
) -> Vector:
    """A point ``anchor + t·(anchor - inside)`` still satisfying ``system``.

    Both ``anchor`` and ``inside`` satisfy every row (equality rows
    exactly, strict rows strictly), so equality rows hold for every ``t``
    and each strict row ``a·x < b`` bounds ``t`` only when the slack at
    ``anchor`` is smaller than at ``inside``; half the tightest bound is
    a valid step.
    """
    t = Fraction(1)
    for row in system:
        a_anchor = sum(c * x for c, x in zip(row.coeffs, anchor))
        a_inside = sum(c * x for c, x in zip(row.coeffs, inside))
        growth = a_anchor - a_inside
        if growth > 0:
            slack = row.rhs - a_anchor
            if slack > 0:
                bound = slack / growth
                if bound < t:
                    t = bound
    t = t / 2
    return tuple(
        a + t * (a - i) for a, i in zip(anchor, inside)
    )


def _satisfies(
    system: Sequence[LinearConstraint], point: Vector
) -> bool:
    return all(row.satisfied_by(point) for row in system)


def enumerate_sign_vectors(
    hyperplanes: Sequence[Hyperplane],
    dimension: int,
    witness_reuse: bool = True,
    dedup: bool = True,
    prefix: SignVector = (),
    prefix_witness: Vector | None = None,
) -> Iterator[tuple[SignVector, Vector]]:
    """Yield every feasible full sign vector with a witness point.

    Depth-first search over partial sign vectors; a branch is cut as soon
    as its (mixed strict/equality) system is infeasible.  With
    ``witness_reuse`` the inherited witness and derived witnesses (see
    the module docstring) skip most LP solves; with ``dedup`` normalised
    candidate systems are memoised per enumeration.  Both flags exist so
    the benchmarks can run the naive baseline; disabling them never
    changes the yielded faces or their order.

    ``prefix`` / ``prefix_witness`` seed the DFS at a feasible partial
    sign vector — the parallel builder uses this to enumerate one
    subtree per worker (the seeded enumeration equals the contiguous
    slice of the full enumeration below that prefix).  A seeded run does
    not count the seed node itself in ``arrangement.dfs_nodes``: the
    caller already counted it while enumerating prefixes, so sequential
    and parallel builds report identical node totals.
    """
    n = len(hyperplanes)
    rows = [_plane_rows(plane) for plane in hyperplanes]
    memo: dict[frozenset, Vector | None] = {}

    def solve(
        candidate: list[LinearConstraint],
    ) -> Vector | None:
        if not dedup:
            return strict_feasible_point(candidate, dimension)
        key = frozenset(candidate)
        if key in memo:
            _DEDUP_HITS.inc()
            _LP_SKIPPED.inc()
            return memo[key]
        point = strict_feasible_point(candidate, dimension)
        memo[key] = point
        return point

    def children(
        system: list[LinearConstraint],
        witness: Vector,
        level: int,
    ) -> dict[int, Vector | None]:
        """Feasibility witness (or None) for each sign of the next plane."""
        plane = hyperplanes[level]
        plane_rows = rows[level]
        if not witness_reuse:
            return {
                sign: solve(system + [plane_rows[sign]])
                for sign in (-1, 0, 1)
            }
        result: dict[int, Vector | None] = {}
        witness_sign = int(plane.side_of(witness))
        result[witness_sign] = witness
        _LP_SKIPPED.inc()
        if witness_sign == 0:
            # Witness on the plane: solve one open side; a hit yields the
            # other side by stepping through the witness.
            above = solve(system + [plane_rows[1]])
            result[1] = above
            if above is not None:
                derived = _step_beyond(system, witness, above)
                if _satisfies(system + [plane_rows[-1]], derived):
                    result[-1] = derived
                    _LP_SKIPPED.inc()
                else:  # pragma: no cover - the step length is exact
                    result[-1] = solve(system + [plane_rows[-1]])
            else:
                result[-1] = solve(system + [plane_rows[-1]])
            return result
        # Witness strictly on one side: the parent region is convex, so
        # it meets the opposite open side iff it meets the plane — and a
        # point on the plane yields the opposite-side witness by a
        # rational step, no second LP.
        on_plane = solve(system + [plane_rows[0]])
        result[0] = on_plane
        opposite = -witness_sign
        if on_plane is None:
            result[opposite] = None
            _LP_SKIPPED.inc()
        else:
            derived = _step_beyond(system, on_plane, witness)
            if _satisfies(system + [plane_rows[opposite]], derived):
                result[opposite] = derived
                _LP_SKIPPED.inc()
            else:  # pragma: no cover - the step length is exact
                result[opposite] = solve(system + [plane_rows[opposite]])
        return result

    def extend(
        prefix: list[int],
        system: list[LinearConstraint],
        witness: Vector,
        seeded: bool = False,
    ) -> Iterator[tuple[SignVector, Vector]]:
        if not seeded:
            _DFS_NODES.inc()
        if len(prefix) == n:
            yield tuple(prefix), witness
            return
        level = len(prefix)
        branch = children(system, witness, level)
        for sign in (-1, 0, 1):
            child_witness = branch[sign]
            if child_witness is None:
                continue
            prefix.append(sign)
            yield from extend(
                prefix, system + [rows[level][sign]], child_witness
            )
            prefix.pop()

    if prefix:
        if prefix_witness is None:
            raise GeometryError("a seeded prefix needs its witness point")
        base_system = [rows[i][sign] for i, sign in enumerate(prefix)]
        yield from extend(
            list(prefix), base_system, prefix_witness, seeded=True
        )
        return
    origin: Vector = (Fraction(0),) * dimension
    yield from extend([], [], origin)


def _resolve_planes(
    relation: ConstraintRelation | None,
    hyperplanes: Sequence[Hyperplane] | None,
    dimension: int | None,
) -> tuple[Sequence[Hyperplane], int]:
    if relation is not None:
        extracted = hyperplanes_of_relation(relation)
        if hyperplanes is not None:
            merged = {*extracted, *hyperplanes}
            planes: Sequence[Hyperplane] = sorted(
                merged, key=lambda h: (h.normal, h.offset)
            )
        else:
            planes = extracted
        ambient = relation.arity
    else:
        if hyperplanes is None or dimension is None:
            raise GeometryError(
                "need either a relation or hyperplanes plus a dimension"
            )
        planes = list(hyperplanes)
        ambient = dimension
    for plane in planes:
        if plane.dimension != ambient:
            raise GeometryError(
                f"hyperplane dimension {plane.dimension} != ambient {ambient}"
            )
    return planes, ambient


def build_arrangement(
    relation: ConstraintRelation | None = None,
    hyperplanes: Sequence[Hyperplane] | None = None,
    dimension: int | None = None,
    parallel: int | None = None,
    witness_reuse: bool = True,
    dedup: bool = True,
    store: "DiskStore | None" = None,
) -> Arrangement:
    """Build A(S) from a relation, or from an explicit hyperplane set.

    When a relation is given, 𝕳(S) is extracted from its DNF atoms and
    every face is classified as inside or outside S by evaluating the
    representation at the face's witness point (faces are in-or-out by
    construction).  An explicit hyperplane list can be supplied instead
    (for raw geometric experiments, with ``dimension``), or *in addition*
    to the relation — then the union of both hyperplane sets is used,
    which yields a refinement of A(S); every face of a refinement is
    still in-or-out of S, so all region-logic semantics carry over
    (the paper notes the languages do not depend on the particular
    decomposition).

    ``parallel`` requests process-parallel construction with that many
    workers (``None`` consults the ``REPRO_JOBS`` environment variable,
    default sequential); the face set and its order are identical to the
    sequential build, and construction falls back to sequential when
    worker processes are unavailable.  ``witness_reuse`` / ``dedup``
    toggle the fast-path prunings (see :func:`enumerate_sign_vectors`).

    ``store`` (default: :func:`repro.store.active_store`, i.e. the
    ``--cache-dir`` / ``REPRO_CACHE_DIR`` setting) persists the finished
    arrangement on disk and answers later builds of the same content
    from it — including in other processes.  Only the default fast path
    goes through the store: the naive baseline (``witness_reuse=False``
    or ``dedup=False``) exists to *measure* construction, so it always
    rebuilds, and its witness points may legitimately differ from the
    fast path's.  A disk hit skips sign-vector enumeration (and worker
    pools) entirely; corrupted or mismatched entries are ignored and
    the arrangement is rebuilt.
    """
    planes, ambient = _resolve_planes(relation, hyperplanes, dimension)

    disk = None
    key = None
    if witness_reuse and dedup:
        # Deferred import: repro.store's codec imports this module.
        from repro import store as store_pkg

        disk = store if store is not None else store_pkg.active_store()
        if disk is not None:
            key = store_pkg.arrangement_key(planes, ambient, relation)
            cached = disk.load("arrangement", key)
            if (
                isinstance(cached, Arrangement)
                and cached.dimension == ambient
                and cached.hyperplanes == tuple(planes)
            ):
                if relation is not None:
                    # Reattach the caller's relation object so its memoised
                    # DNF/simplification caches keep working downstream.
                    cached = Arrangement(
                        cached.dimension,
                        cached.hyperplanes,
                        cached.faces,
                        relation,
                    )
                return cached

    from repro.arrangement.parallel import enumerate_parallel, resolve_jobs

    jobs = resolve_jobs(parallel)
    _BUILDS.inc()
    with TRACER.span("arrangement.build") as build_span:
        if jobs > 1 and len(planes) > 1:
            pairs = enumerate_parallel(
                planes,
                ambient,
                jobs,
                witness_reuse=witness_reuse,
                dedup=dedup,
            )
        else:
            pairs = enumerate_sign_vectors(
                planes,
                ambient,
                witness_reuse=witness_reuse,
                dedup=dedup,
            )
        faces: list[Face] = []
        for index, (signs, witness) in enumerate(pairs):
            dim = face_dimension(planes, signs, ambient)
            inside = (
                relation.contains(witness) if relation is not None else False
            )
            faces.append(Face(index, signs, dim, witness, inside))
        _FACES.inc(len(faces))
        build_span.set("hyperplanes", len(planes))
        build_span.set("faces", len(faces))
        build_span.set("jobs", jobs)
        arrangement = Arrangement(
            ambient, tuple(planes), tuple(faces), relation
        )
        if disk is not None and key is not None:
            disk.save("arrangement", key, arrangement)
        return arrangement
