"""Arrangement construction: exact face enumeration (Theorem 3.1).

The faces of an arrangement of hyperplanes h_1..h_n are exactly the
non-empty sign vectors v ∈ {-1, 0, +1}^n: the system "on h_i if v_i = 0,
strictly above if +1, strictly below if -1" must be feasible.  We
enumerate them by depth-first extension of partial sign vectors, pruning
any prefix whose constraint system is already infeasible (exact LP).

Every internal node of the search tree corresponds to a non-empty
intersection of sign conditions, and each such prefix extends to at least
one face, so the number of explored nodes is at most n times the number
of faces; for fixed dimension d the face count is O(n^d) and the whole
construction runs in polynomial time — the constructive content of
Theorem 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Sequence

from repro.errors import GeometryError
from repro.geometry.fourier_motzkin import LinearConstraint
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.linalg import Vector
from repro.geometry.simplex import strict_feasible_point
from repro.obs.metrics import get_registry
from repro.obs.tracing import TRACER
from repro.constraints.relation import ConstraintRelation

#: Sign-vector DFS telemetry: explored search-tree nodes and faces kept.
_DFS_NODES = get_registry().counter("arrangement.dfs_nodes")
_FACES = get_registry().counter("arrangement.faces")
_BUILDS = get_registry().counter("arrangement.builds")
from repro.arrangement.faces import (
    Face,
    SignVector,
    face_dimension,
    sign_vector_constraints,
)
from repro.arrangement.hyperplanes import hyperplanes_of_relation


@dataclass(frozen=True)
class Arrangement:
    """The arrangement A(S): hyperplanes, faces and lookups."""

    dimension: int
    hyperplanes: tuple[Hyperplane, ...]
    faces: tuple[Face, ...]
    relation: ConstraintRelation | None

    # -- lookups ---------------------------------------------------------
    def face_by_signs(self, signs: SignVector) -> Face | None:
        """The face with the given position vector, if it is non-empty."""
        return self._sign_index().get(tuple(signs))

    def _sign_index(self) -> dict[SignVector, Face]:
        if not hasattr(self, "_signs_cached"):
            object.__setattr__(
                self,
                "_signs_cached",
                {face.signs: face for face in self.faces},
            )
        return getattr(self, "_signs_cached")

    def locate(self, point: Sequence[Fraction]) -> Face:
        """The unique face containing a rational point."""
        if len(point) != self.dimension:
            raise GeometryError("point dimension mismatch")
        signs = tuple(
            int(plane.side_of(point)) for plane in self.hyperplanes
        )
        face = self.face_by_signs(signs)
        if face is None:  # pragma: no cover - the faces partition space
            raise GeometryError("point's sign vector matches no face")
        return face

    def faces_of_dimension(self, dimension: int) -> list[Face]:
        return [f for f in self.faces if f.dimension == dimension]

    @property
    def vertices(self) -> list[Face]:
        """0-dimensional faces, in canonical (lexicographic point) order."""
        zero_dim = self.faces_of_dimension(0)
        return sorted(zero_dim, key=lambda f: f.sample)

    def faces_in_relation(self) -> list[Face]:
        return [f for f in self.faces if f.in_relation]

    def face_count_by_dimension(self) -> dict[int, int]:
        """Census {dimension: number of faces} (the paper's 7/9/3 example)."""
        census: dict[int, int] = {}
        for face in self.faces:
            census[face.dimension] = census.get(face.dimension, 0) + 1
        return census

    def __iter__(self) -> Iterator[Face]:
        return iter(self.faces)

    def __len__(self) -> int:
        return len(self.faces)


def enumerate_sign_vectors(
    hyperplanes: Sequence[Hyperplane], dimension: int
) -> Iterator[tuple[SignVector, Vector]]:
    """Yield every feasible full sign vector with a witness point.

    Depth-first search over partial sign vectors; a branch is cut as soon
    as its (mixed strict/equality) system is infeasible.
    """
    n = len(hyperplanes)

    def extend(
        prefix: list[int],
        system: list[LinearConstraint],
        witness: Vector,
    ) -> Iterator[tuple[SignVector, Vector]]:
        _DFS_NODES.inc()
        if len(prefix) == n:
            yield tuple(prefix), witness
            return
        plane = hyperplanes[len(prefix)]
        # The inherited witness already picks a side of the next plane, so
        # that branch is feasible without an LP; only the two other signs
        # need a solve.
        witness_sign = int(plane.side_of(witness))
        for sign in (-1, 0, 1):
            extra = sign_vector_constraints([plane], (sign,))
            candidate = system + extra
            if sign == witness_sign:
                child_witness: Vector | None = witness
            else:
                child_witness = strict_feasible_point(candidate, dimension)
            if child_witness is None:
                continue
            prefix.append(sign)
            yield from extend(prefix, candidate, child_witness)
            prefix.pop()

    origin: Vector = (Fraction(0),) * dimension
    yield from extend([], [], origin)


def build_arrangement(
    relation: ConstraintRelation | None = None,
    hyperplanes: Sequence[Hyperplane] | None = None,
    dimension: int | None = None,
) -> Arrangement:
    """Build A(S) from a relation, or from an explicit hyperplane set.

    When a relation is given, 𝕳(S) is extracted from its DNF atoms and
    every face is classified as inside or outside S by evaluating the
    representation at the face's witness point (faces are in-or-out by
    construction).  An explicit hyperplane list can be supplied instead
    (for raw geometric experiments, with ``dimension``), or *in addition*
    to the relation — then the union of both hyperplane sets is used,
    which yields a refinement of A(S); every face of a refinement is
    still in-or-out of S, so all region-logic semantics carry over
    (the paper notes the languages do not depend on the particular
    decomposition).
    """
    if relation is not None:
        extracted = hyperplanes_of_relation(relation)
        if hyperplanes is not None:
            merged = {*extracted, *hyperplanes}
            planes: Sequence[Hyperplane] = sorted(
                merged, key=lambda h: (h.normal, h.offset)
            )
        else:
            planes = extracted
        ambient = relation.arity
    else:
        if hyperplanes is None or dimension is None:
            raise GeometryError(
                "need either a relation or hyperplanes plus a dimension"
            )
        planes = list(hyperplanes)
        ambient = dimension
    for plane in planes:
        if plane.dimension != ambient:
            raise GeometryError(
                f"hyperplane dimension {plane.dimension} != ambient {ambient}"
            )

    _BUILDS.inc()
    with TRACER.span("arrangement.build") as build_span:
        faces: list[Face] = []
        for index, (signs, witness) in enumerate(
            enumerate_sign_vectors(planes, ambient)
        ):
            dim = face_dimension(planes, signs, ambient)
            inside = (
                relation.contains(witness) if relation is not None else False
            )
            faces.append(Face(index, signs, dim, witness, inside))
        _FACES.inc(len(faces))
        build_span.set("hyperplanes", len(planes))
        build_span.set("faces", len(faces))
        return Arrangement(ambient, tuple(planes), tuple(faces), relation)
