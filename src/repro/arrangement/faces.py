"""Faces of a hyperplane arrangement.

A face is the set of all points sharing a position vector with respect to
the hyperplane set 𝕳(S): for each hyperplane the point is above (+1), on
(0) or below (-1).  Faces are relatively open convex polyhedra; the paper
stores, per face, its position vector — everything else (dimension,
defining formula, sample point) derives from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.geometry.fourier_motzkin import LinearConstraint, Rel
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.linalg import Vector, matrix_rank
from repro.geometry.polyhedron import Polyhedron
from repro.constraints.atoms import Atom, Op
from repro.constraints.formula import AtomFormula, Formula, conjunction
from repro.constraints.terms import LinearTerm

SignVector = tuple[int, ...]


def sign_vector_constraints(
    hyperplanes: Sequence[Hyperplane], signs: SignVector
) -> list[LinearConstraint]:
    """The defining constraint system of a (partial) sign vector."""
    system: list[LinearConstraint] = []
    for plane, sign in zip(hyperplanes, signs):
        if sign == 0:
            system.append(
                LinearConstraint(plane.normal, Rel.EQ, plane.offset)
            )
        elif sign > 0:
            system.append(
                LinearConstraint(
                    tuple(-c for c in plane.normal), Rel.LT, -plane.offset
                )
            )
        else:
            system.append(
                LinearConstraint(plane.normal, Rel.LT, plane.offset)
            )
    return system


@dataclass(frozen=True)
class Face:
    """One face of an arrangement.

    ``index`` is the face's position in the arrangement's canonical face
    order; ``signs`` is the paper's position vector; ``sample`` is a
    rational point in the (relatively open) face; ``dimension`` is the
    dimension of the affine support; ``in_relation`` records whether the
    face is contained in S (every face is either contained in or disjoint
    from S).
    """

    index: int
    signs: SignVector
    dimension: int
    sample: Vector
    in_relation: bool

    @property
    def is_vertex(self) -> bool:
        """0-dimensional faces are the paper's vertices."""
        return self.dimension == 0

    def polyhedron(self, hyperplanes: Sequence[Hyperplane]) -> Polyhedron:
        """The face as an H-representation polyhedron."""
        ambient = len(self.sample)
        return Polyhedron.make(
            ambient, sign_vector_constraints(hyperplanes, self.signs)
        )

    def defining_formula(
        self, hyperplanes: Sequence[Hyperplane], variables: Sequence[str]
    ) -> Formula:
        """A quantifier-free formula defining exactly this face.

        This is the construction in the proof of Theorem 4.3: the
        conjunction of atoms read off the position vector.
        """
        atoms = []
        for plane, sign in zip(hyperplanes, self.signs):
            term = LinearTerm.from_vector(
                plane.normal, -plane.offset, variables
            )
            op = Op.EQ if sign == 0 else (Op.GT if sign > 0 else Op.LT)
            atoms.append(AtomFormula(Atom(term, op)))
        return conjunction(atoms)

    def contains(
        self, hyperplanes: Sequence[Hyperplane], point: Sequence[Fraction]
    ) -> bool:
        """Exact point membership via the position vector."""
        return all(
            int(plane.side_of(point)) == sign
            for plane, sign in zip(hyperplanes, self.signs)
        )

    @property
    def zero_set(self) -> tuple[int, ...]:
        """Indices of hyperplanes the face lies on."""
        return tuple(i for i, s in enumerate(self.signs) if s == 0)

    def __str__(self) -> str:
        kind = "vertex" if self.is_vertex else f"{self.dimension}-face"
        return f"{kind}#{self.index}{list(self.signs)}"


def face_dimension(
    hyperplanes: Sequence[Hyperplane], signs: SignVector, ambient: int
) -> int:
    """Dimension of a non-empty face: ambient minus rank of its zero set.

    A face is the relative interior of the flat cut out by its sign-0
    hyperplanes intersected with open halfspaces, so its affine support is
    that flat.
    """
    normals = [
        list(plane.normal)
        for plane, sign in zip(hyperplanes, signs)
        if sign == 0
    ]
    if not normals:
        return ambient
    return ambient - matrix_rank(normals)
