"""Extraction of the hyperplane set 𝕳(S) from a relation's representation.

Section 3: for every atom of the DNF representation of S, take the
hyperplane obtained by replacing the (in)equality by equality.  The result
is a *set* — canonicalisation (see :class:`repro.geometry.hyperplane.
Hyperplane`) collapses atoms that induce the same hyperplane, e.g.
``x < 1`` and ``2x >= 2``.

The extracted list is sorted canonically so arrangements are deterministic
functions of the represented relation's atom set.
"""

from __future__ import annotations

from repro.geometry.hyperplane import Hyperplane
from repro.constraints.relation import ConstraintRelation


def hyperplanes_of_relation(relation: ConstraintRelation) -> list[Hyperplane]:
    """The paper's 𝕳(S) for a relation in DNF, canonically ordered."""
    planes: set[Hyperplane] = set()
    for disjunct in relation.disjuncts():
        for atom in disjunct:
            plane = atom.hyperplane(relation.variables)
            if plane is not None:
                planes.add(plane)
    return sorted(planes, key=lambda h: (h.normal, h.offset))
