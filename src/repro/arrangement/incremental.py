"""Incremental arrangement construction.

Theorem 3.1 cites the classical O(n^d) bound for arrangements, obtained
by *incremental insertion* (Edelsbrunner, Theorem 7.6): hyperplanes are
added one at a time and each insertion refines only the faces the new
hyperplane actually meets.  This module implements that scheme on the
sign-vector representation:

adding hyperplane h to an arrangement with faces F splits every face
f ∈ F into up to three faces — the parts strictly above h, on h, and
strictly below h — each of which is non-empty exactly when the
corresponding extension of f's sign vector is feasible.  The inherited
witness of f decides one extension for free; at most two LPs per
existing face are needed, so an insertion costs O(|F|) LP calls and the
whole construction is output-sensitive.

Retraction (:meth:`IncrementalArrangement.retract`) is the inverse
walk: dropping h's sign column merges the up-to-three children of every
face back into one, keeping the first surviving witness and
re-certifying it against the remaining sign constraints (exact
arithmetic first, an LP re-derivation only if certification fails).
An insert followed by a retract of the same hyperplane restores the
exact face set.

The face lattice — hyperplanes, sign vectors, dimensions, in/out
classification — is identical to what the batch builder produces (the
DFS in :mod:`repro.arrangement.builder` explores the same sign-vector
tree), which the tests and the E2 ablation verify.  Witness *points*
are path-dependent (the batch DFS and the insertion order derive
different interior samples for the same face), so comparisons go
through :func:`combinatorial parity <to_arrangement>` plus witness
certification, never through witness equality.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.errors import GeometryError
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.linalg import Vector
from repro.geometry.simplex import strict_feasible_point
from repro.obs.metrics import get_registry
from repro.obs.tracing import TRACER
from repro.constraints.relation import ConstraintRelation
from repro.arrangement.builder import Arrangement

#: Incremental-mutation telemetry.  The *shared* family
#: (``arrangement.builds`` / ``arrangement.faces``) moves in
#: :meth:`IncrementalArrangement.to_arrangement` exactly as the batch
#: builder moves it per build, so downstream consumers (the optimizer's
#: ``jobs`` knob, dashboards) see one coherent signal regardless of
#: which construction path produced an arrangement; the counters below
#: are incremental-only extras (see docs/OBSERVABILITY.md).
_INSERTIONS = get_registry().counter("arrangement.insertions")
_SPLIT_FACES = get_registry().counter("arrangement.split_faces")
_RETRACTIONS = get_registry().counter("arrangement.retractions")
_MERGED_FACES = get_registry().counter("arrangement.merged_faces")
_RECERTIFICATIONS = get_registry().counter(
    "arrangement.witness_recertified"
)
_BUILDS = get_registry().counter("arrangement.builds")
_FACES = get_registry().counter("arrangement.faces")
from repro.arrangement.faces import (
    Face,
    SignVector,
    face_dimension,
    sign_vector_constraints,
)
from repro.arrangement.hyperplanes import hyperplanes_of_relation


class IncrementalArrangement:
    """An arrangement that grows one hyperplane at a time."""

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise GeometryError("dimension must be positive")
        self.dimension = dimension
        self.hyperplanes: list[Hyperplane] = []
        # Parallel lists: sign vectors and their witness points.
        self._signs: list[SignVector] = [()]
        self._witnesses: list[Vector] = [(Fraction(0),) * dimension]

    def __len__(self) -> int:
        return len(self._signs)

    def insert(self, hyperplane: Hyperplane) -> int:
        """Add one hyperplane; returns the number of new faces created.

        Duplicate hyperplanes (canonical form already present) are
        ignored and create nothing.
        """
        if hyperplane.dimension != self.dimension:
            raise GeometryError(
                f"hyperplane dimension {hyperplane.dimension} != "
                f"{self.dimension}"
            )
        if hyperplane in self.hyperplanes:
            # Faces already carry this plane's sign; extend vectors only.
            index = self.hyperplanes.index(hyperplane)
            self.hyperplanes.append(hyperplane)
            self._signs = [
                signs + (signs[index],) for signs in self._signs
            ]
            return 0

        _INSERTIONS.inc()
        with TRACER.span("arrangement.insert", aggregate=True):
            return self._insert_new(hyperplane)

    def _insert_new(self, hyperplane: Hyperplane) -> int:
        new_signs: list[SignVector] = []
        new_witnesses: list[Vector] = []
        created = 0
        for signs, witness in zip(self._signs, self._witnesses):
            base_system = sign_vector_constraints(
                self.hyperplanes, signs
            )
            witness_sign = int(hyperplane.side_of(witness))
            survivors = 0
            for sign in (-1, 0, 1):
                if sign == witness_sign:
                    child_witness: Vector | None = witness
                else:
                    extra = sign_vector_constraints([hyperplane], (sign,))
                    child_witness = strict_feasible_point(
                        base_system + extra, self.dimension
                    )
                if child_witness is None:
                    continue
                new_signs.append(signs + (sign,))
                new_witnesses.append(child_witness)
                survivors += 1
            created += survivors - 1
        self.hyperplanes.append(hyperplane)
        self._signs = new_signs
        self._witnesses = new_witnesses
        _SPLIT_FACES.inc(created)
        return created

    def insert_all(self, hyperplanes: Sequence[Hyperplane]) -> None:
        for hyperplane in hyperplanes:
            self.insert(hyperplane)

    def retract(self, hyperplane: Hyperplane) -> int:
        """Remove one hyperplane; returns the number of faces merged away.

        The inverse of :meth:`insert`: the plane's sign column is
        dropped and faces whose remaining sign vectors coincide — the
        up-to-three pieces the plane once split one face into — are
        merged back together.  The merged face keeps the first
        surviving witness, re-certified against the remaining sign
        constraints exactly; if certification fails the witness is
        re-derived by LP (``arrangement.witness_recertified`` counts
        these).  Retracting one copy of a duplicated plane only drops
        its column (no merging — the other copy still separates).
        """
        if hyperplane.dimension != self.dimension:
            raise GeometryError(
                f"hyperplane dimension {hyperplane.dimension} != "
                f"{self.dimension}"
            )
        try:
            index = self.hyperplanes.index(hyperplane)
        except ValueError:
            raise GeometryError(
                f"cannot retract {hyperplane}: not in the arrangement"
            ) from None
        duplicated = self.hyperplanes.count(hyperplane) > 1
        self.hyperplanes.pop(index)
        if duplicated:
            self._signs = [
                signs[:index] + signs[index + 1:] for signs in self._signs
            ]
            return 0
        _RETRACTIONS.inc()
        with TRACER.span("arrangement.retract", aggregate=True):
            return self._retract_unique(index)

    def _retract_unique(self, index: int) -> int:
        merged: dict[SignVector, Vector] = {}
        for signs, witness in zip(self._signs, self._witnesses):
            reduced = signs[:index] + signs[index + 1:]
            if reduced not in merged:
                merged[reduced] = witness
        removed = len(self._signs) - len(merged)
        planes = self.hyperplanes
        new_signs: list[SignVector] = []
        new_witnesses: list[Vector] = []
        for reduced, witness in merged.items():
            certified = all(
                int(plane.side_of(witness)) == sign
                for plane, sign in zip(planes, reduced)
            )
            if not certified:
                _RECERTIFICATIONS.inc()
                system = sign_vector_constraints(planes, reduced)
                witness = strict_feasible_point(system, self.dimension)
                if witness is None:
                    raise GeometryError(
                        "face became infeasible during retraction "
                        f"(sign vector {reduced})"
                    )
            new_signs.append(reduced)
            new_witnesses.append(witness)
        self._signs = new_signs
        self._witnesses = new_witnesses
        _MERGED_FACES.inc(removed)
        return removed

    def reorder(self, hyperplanes: Sequence[Hyperplane]) -> None:
        """Permute the plane columns into the given order.

        After a mixed insert/retract update the internal plane list is
        in mutation order; reordering to the canonical sorted order of
        :func:`~repro.arrangement.hyperplanes.hyperplanes_of_relation`
        makes :meth:`to_arrangement` combinatorially identical to a
        batch build of the same relation.  The target must be a
        permutation of the current planes.
        """
        target = list(hyperplanes)
        if sorted(map(str, target)) != sorted(map(str, self.hyperplanes)):
            raise GeometryError(
                "reorder target is not a permutation of the arrangement"
            )
        remaining = list(range(len(self.hyperplanes)))
        order: list[int] = []
        for plane in target:
            for position in remaining:
                if self.hyperplanes[position] == plane:
                    order.append(position)
                    remaining.remove(position)
                    break
        self.hyperplanes = [self.hyperplanes[i] for i in order]
        self._signs = [
            tuple(signs[i] for i in order) for signs in self._signs
        ]

    @classmethod
    def from_arrangement(cls, arrangement: Arrangement) -> "IncrementalArrangement":
        """Adopt a built arrangement as the starting state.

        The batch builder, the disk store and this module agree on the
        face lattice, so a cached :class:`Arrangement` seeds incremental
        maintenance without re-running any construction.
        """
        incremental = cls(arrangement.dimension)
        incremental.hyperplanes = list(arrangement.hyperplanes)
        incremental._signs = [face.signs for face in arrangement.faces]
        incremental._witnesses = [face.sample for face in arrangement.faces]
        return incremental

    def to_arrangement(
        self, relation: ConstraintRelation | None = None
    ) -> Arrangement:
        """Freeze into the standard :class:`Arrangement` value.

        Faces are ordered by sign vector in the same -1 < 0 < +1 DFS
        order the batch builder uses, so results are interchangeable.
        When a relation is given, faces are classified against it (its
        atoms must only use the inserted hyperplanes for the faces to be
        in-or-out of the relation; this is not re-checked).

        Freezing moves the *shared* counter family exactly as one batch
        build does — ``arrangement.builds`` by one, ``arrangement.faces``
        by the face count — so both construction paths feed the same
        telemetry (the counter-parity test pins this).
        """
        planes = tuple(self.hyperplanes)
        order = sorted(
            range(len(self._signs)), key=lambda i: self._signs[i]
        )
        faces = []
        for position, i in enumerate(order):
            signs = self._signs[i]
            witness = self._witnesses[i]
            dim = face_dimension(planes, signs, self.dimension)
            inside = (
                relation.contains(witness) if relation is not None else False
            )
            faces.append(Face(position, signs, dim, witness, inside))
        _BUILDS.inc()
        _FACES.inc(len(faces))
        return Arrangement(self.dimension, planes, tuple(faces), relation)


def build_arrangement_incremental(
    relation: ConstraintRelation | None = None,
    hyperplanes: Sequence[Hyperplane] | None = None,
    dimension: int | None = None,
) -> Arrangement:
    """Drop-in incremental counterpart of
    :func:`repro.arrangement.builder.build_arrangement`."""
    if relation is not None:
        planes: Sequence[Hyperplane] = hyperplanes_of_relation(relation)
        ambient = relation.arity
    else:
        if hyperplanes is None or dimension is None:
            raise GeometryError(
                "need either a relation or hyperplanes plus a dimension"
            )
        planes = list(hyperplanes)
        ambient = dimension
    incremental = IncrementalArrangement(ambient)
    incremental.insert_all(planes)
    return incremental.to_arrangement(relation)
