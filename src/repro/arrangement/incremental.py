"""Incremental arrangement construction.

Theorem 3.1 cites the classical O(n^d) bound for arrangements, obtained
by *incremental insertion* (Edelsbrunner, Theorem 7.6): hyperplanes are
added one at a time and each insertion refines only the faces the new
hyperplane actually meets.  This module implements that scheme on the
sign-vector representation:

adding hyperplane h to an arrangement with faces F splits every face
f ∈ F into up to three faces — the parts strictly above h, on h, and
strictly below h — each of which is non-empty exactly when the
corresponding extension of f's sign vector is feasible.  The inherited
witness of f decides one extension for free; at most two LPs per
existing face are needed, so an insertion costs O(|F|) LP calls and the
whole construction is output-sensitive.

The result is bit-for-bit the same arrangement the batch builder
produces (the DFS in :mod:`repro.arrangement.builder` explores the same
sign-vector tree), which the tests and the E2 ablation verify.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.errors import GeometryError
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.linalg import Vector
from repro.geometry.simplex import strict_feasible_point
from repro.obs.metrics import get_registry
from repro.obs.tracing import TRACER
from repro.constraints.relation import ConstraintRelation
from repro.arrangement.builder import Arrangement

#: Incremental-insertion telemetry (mirrors the batch builder's counters).
_INSERTIONS = get_registry().counter("arrangement.insertions")
_SPLIT_FACES = get_registry().counter("arrangement.split_faces")
from repro.arrangement.faces import (
    Face,
    SignVector,
    face_dimension,
    sign_vector_constraints,
)
from repro.arrangement.hyperplanes import hyperplanes_of_relation


class IncrementalArrangement:
    """An arrangement that grows one hyperplane at a time."""

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise GeometryError("dimension must be positive")
        self.dimension = dimension
        self.hyperplanes: list[Hyperplane] = []
        # Parallel lists: sign vectors and their witness points.
        self._signs: list[SignVector] = [()]
        self._witnesses: list[Vector] = [(Fraction(0),) * dimension]

    def __len__(self) -> int:
        return len(self._signs)

    def insert(self, hyperplane: Hyperplane) -> int:
        """Add one hyperplane; returns the number of new faces created.

        Duplicate hyperplanes (canonical form already present) are
        ignored and create nothing.
        """
        if hyperplane.dimension != self.dimension:
            raise GeometryError(
                f"hyperplane dimension {hyperplane.dimension} != "
                f"{self.dimension}"
            )
        if hyperplane in self.hyperplanes:
            # Faces already carry this plane's sign; extend vectors only.
            index = self.hyperplanes.index(hyperplane)
            self.hyperplanes.append(hyperplane)
            self._signs = [
                signs + (signs[index],) for signs in self._signs
            ]
            return 0

        _INSERTIONS.inc()
        with TRACER.span("arrangement.insert", aggregate=True):
            return self._insert_new(hyperplane)

    def _insert_new(self, hyperplane: Hyperplane) -> int:
        new_signs: list[SignVector] = []
        new_witnesses: list[Vector] = []
        created = 0
        for signs, witness in zip(self._signs, self._witnesses):
            base_system = sign_vector_constraints(
                self.hyperplanes, signs
            )
            witness_sign = int(hyperplane.side_of(witness))
            survivors = 0
            for sign in (-1, 0, 1):
                if sign == witness_sign:
                    child_witness: Vector | None = witness
                else:
                    extra = sign_vector_constraints([hyperplane], (sign,))
                    child_witness = strict_feasible_point(
                        base_system + extra, self.dimension
                    )
                if child_witness is None:
                    continue
                new_signs.append(signs + (sign,))
                new_witnesses.append(child_witness)
                survivors += 1
            created += survivors - 1
        self.hyperplanes.append(hyperplane)
        self._signs = new_signs
        self._witnesses = new_witnesses
        _SPLIT_FACES.inc(created)
        return created

    def insert_all(self, hyperplanes: Sequence[Hyperplane]) -> None:
        for hyperplane in hyperplanes:
            self.insert(hyperplane)

    def to_arrangement(
        self, relation: ConstraintRelation | None = None
    ) -> Arrangement:
        """Freeze into the standard :class:`Arrangement` value.

        Faces are ordered by sign vector in the same -1 < 0 < +1 DFS
        order the batch builder uses, so results are interchangeable.
        When a relation is given, faces are classified against it (its
        atoms must only use the inserted hyperplanes for the faces to be
        in-or-out of the relation; this is not re-checked).
        """
        planes = tuple(self.hyperplanes)
        order = sorted(
            range(len(self._signs)), key=lambda i: self._signs[i]
        )
        faces = []
        for position, i in enumerate(order):
            signs = self._signs[i]
            witness = self._witnesses[i]
            dim = face_dimension(planes, signs, self.dimension)
            inside = (
                relation.contains(witness) if relation is not None else False
            )
            faces.append(Face(position, signs, dim, witness, inside))
        return Arrangement(self.dimension, planes, tuple(faces), relation)


def build_arrangement_incremental(
    relation: ConstraintRelation | None = None,
    hyperplanes: Sequence[Hyperplane] | None = None,
    dimension: int | None = None,
) -> Arrangement:
    """Drop-in incremental counterpart of
    :func:`repro.arrangement.builder.build_arrangement`."""
    if relation is not None:
        planes: Sequence[Hyperplane] = hyperplanes_of_relation(relation)
        ambient = relation.arity
    else:
        if hyperplanes is None or dimension is None:
            raise GeometryError(
                "need either a relation or hyperplanes plus a dimension"
            )
        planes = list(hyperplanes)
        ambient = dimension
    incremental = IncrementalArrangement(ambient)
    incremental.insert_all(planes)
    return incremental.to_arrangement(relation)
