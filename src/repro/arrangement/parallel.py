"""Process-parallel sign-vector enumeration.

The DFS of :func:`repro.arrangement.builder.enumerate_sign_vectors` is
embarrassingly parallel below any fixed depth: the subtrees rooted at
the feasible sign prefixes of the first few hyperplanes are independent.
This module enumerates those prefixes sequentially (cheap — there are at
most ``3^depth``), fans each subtree out to a
:class:`~concurrent.futures.ProcessPoolExecutor` worker, and
concatenates the results in prefix order, which is exactly the order
the sequential DFS would have produced — parallelism never changes the
face list, only who computes it.

Knobs:

* ``parallel=`` on :func:`~repro.arrangement.builder.build_arrangement`
  (and ``jobs=`` on :class:`~repro.engine.QueryEngine`, ``--jobs`` on
  the CLI) selects the worker count explicitly;
* the ``REPRO_JOBS`` environment variable supplies a process-wide
  default when the knob is not given (``1`` = sequential).

When worker processes cannot be created (restricted sandboxes, missing
semaphores) the build falls back to enumerating the same subtree tasks
sequentially in the parent and counts the event in
``arrangement.parallel_fallbacks``.  Workers measure the counter deltas
their subtree produced (:func:`~repro.obs.metrics.metrics_snapshot`
before and after — fork-started workers inherit the parent's counter
*values*, so absolute numbers would double-count) and ship them home
with the face batch; the parent folds every delta into its registry via
:func:`~repro.obs.metrics.merge_snapshot`.  Workers likewise export the
feasibility-memo entries their subtree added and the parent folds them
into its memo, so the process ends in the same cache state a sequential
build would have produced.  A parallel build therefore reports the same
``lp.solves`` / ``arrangement.dfs_nodes`` totals as the sequential
build of the same arrangement — and downstream evaluation keeps
matching too, because it warm-starts from the identical memo.  The
journal records one ``worker.spawn`` event per build plus one
``worker.merge`` event per subtree batch.

Disk warm-start (:mod:`repro.store`) composes with parallelism in the
parent: :func:`~repro.arrangement.builder.build_arrangement` consults
the store *before* any pool is created, so a disk hit skips worker
startup entirely, and a miss persists the (order-identical) parallel
result for the next process.  Workers inherit ``REPRO_CACHE_DIR``
through the environment like every subprocess, but they only enumerate
sign vectors — they never read or write the store themselves.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.geometry import fastlp
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.linalg import Vector
from repro.obs.journal import JOURNAL
from repro.obs.metrics import get_registry, merge_snapshot, metrics_snapshot

from repro.arrangement.faces import SignVector

_PARALLEL_BUILDS = get_registry().counter("arrangement.parallel_builds")
_PARALLEL_SUBTREES = get_registry().counter("arrangement.parallel_subtrees")
_PARALLEL_FALLBACKS = get_registry().counter(
    "arrangement.parallel_fallbacks"
)


def resolve_jobs(parallel: int | None) -> int:
    """The effective worker count: explicit knob, else ``REPRO_JOBS``.

    Values below 1 (and unparsable environment values) mean sequential.
    """
    if parallel is not None:
        return max(1, int(parallel))
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def _subtree_worker(
    args: tuple[
        tuple[Hyperplane, ...], SignVector, Vector, int, bool, bool, str
    ],
) -> tuple[
    list[tuple[SignVector, Vector]], dict[str, int], dict
]:
    """Enumerate one sign-vector subtree (runs in a worker process).

    Returns the subtree's faces, the counter *deltas* the enumeration
    produced in this process, and the feasibility-memo entries it added.
    Deltas, not absolute values: fork-started workers inherit the
    parent's counter state, so only the before/after difference is the
    subtree's own work — and likewise only memo entries beyond the
    inherited key set are the subtree's own solves.
    """
    (
        hyperplanes,
        prefix,
        witness,
        dimension,
        witness_reuse,
        dedup,
        lp_mode,
    ) = args
    from repro.arrangement.builder import enumerate_sign_vectors
    from repro.geometry.simplex import (
        export_feasibility_entries,
        snapshot_feasibility_keys,
    )

    # The parent resolved its LP mode (knob, context manager or
    # environment) at submit time; pin the worker to the same tier so
    # spawn-based pools behave like fork-based ones.
    fastlp.set_lp_mode(lp_mode)
    before = metrics_snapshot()
    inherited = snapshot_feasibility_keys()
    pairs = list(
        enumerate_sign_vectors(
            hyperplanes,
            dimension,
            witness_reuse=witness_reuse,
            dedup=dedup,
            prefix=prefix,
            prefix_witness=witness,
        )
    )
    after = metrics_snapshot()
    deltas = {
        name: value - before.get(name, 0)
        for name, value in after.items()
        if value - before.get(name, 0)
    }
    return pairs, deltas, export_feasibility_entries(inherited)


def _split_depth(n_planes: int, jobs: int) -> int:
    """DFS depth below which subtrees are distributed to workers."""
    depth = 1
    while 3 ** depth < 2 * jobs and depth < n_planes - 1:
        depth += 1
    return min(depth, n_planes - 1)


def enumerate_parallel(
    hyperplanes: Sequence[Hyperplane],
    dimension: int,
    jobs: int,
    witness_reuse: bool = True,
    dedup: bool = True,
) -> list[tuple[SignVector, Vector]]:
    """All feasible sign vectors, computed by a process pool.

    Deterministic: the concatenation over subtree prefixes in DFS order
    reproduces the sequential enumeration order exactly.  Falls back to
    the sequential enumerator when the pool cannot be created.
    """
    from repro.arrangement.builder import enumerate_sign_vectors

    planes = tuple(hyperplanes)
    depth = _split_depth(len(planes), jobs)
    prefixes = list(
        enumerate_sign_vectors(
            planes[:depth],
            dimension,
            witness_reuse=witness_reuse,
            dedup=dedup,
        )
    )
    active_mode = fastlp.get_lp_mode()
    tasks = [
        (planes, signs, witness, dimension, witness_reuse, dedup, active_mode)
        for signs, witness in prefixes
    ]
    if JOURNAL.enabled:
        JOURNAL.emit("worker.spawn", jobs=jobs, subtrees=len(tasks))
    try:
        import concurrent.futures

        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, max(1, len(tasks)))
        ) as pool:
            chunks = list(pool.map(_subtree_worker, tasks))
    except Exception:
        _PARALLEL_FALLBACKS.inc()
        # Enumerate the same subtree tasks in-process: with seeded
        # enumeration not re-counting its seed node, the fallback
        # reports the same totals a sequential build would.
        results = []
        for signs, witness in prefixes:
            results.extend(
                enumerate_sign_vectors(
                    planes,
                    dimension,
                    witness_reuse=witness_reuse,
                    dedup=dedup,
                    prefix=signs,
                    prefix_witness=witness,
                )
            )
        return results
    from repro.geometry.simplex import merge_feasibility_entries

    _PARALLEL_BUILDS.inc()
    _PARALLEL_SUBTREES.inc(len(tasks))
    results = []
    for index, (pairs, counters, memo_entries) in enumerate(chunks):
        merge_snapshot(counters)
        merge_feasibility_entries(memo_entries)
        if JOURNAL.enabled:
            JOURNAL.emit(
                "worker.merge",
                worker=index,
                faces=len(pairs),
                counters=counters,
            )
        results.extend(pairs)
    return results
