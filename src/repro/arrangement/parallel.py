"""Process-parallel sign-vector enumeration.

The DFS of :func:`repro.arrangement.builder.enumerate_sign_vectors` is
embarrassingly parallel below any fixed depth: the subtrees rooted at
the feasible sign prefixes of the first few hyperplanes are independent.
This module enumerates those prefixes sequentially (cheap — there are at
most ``3^depth``), fans each subtree out to a
:class:`~concurrent.futures.ProcessPoolExecutor` worker, and
concatenates the results in prefix order, which is exactly the order
the sequential DFS would have produced — parallelism never changes the
face list, only who computes it.

Knobs:

* ``parallel=`` on :func:`~repro.arrangement.builder.build_arrangement`
  (and ``jobs=`` on :class:`~repro.engine.QueryEngine`, ``--jobs`` on
  the CLI) selects the worker count explicitly;
* the ``REPRO_JOBS`` environment variable supplies a process-wide
  default when the knob is not given (``1`` = sequential).

When worker processes cannot be created (restricted sandboxes, missing
semaphores) the build falls back to the sequential enumerator and
counts the event in ``arrangement.parallel_fallbacks``.  Metric
counters incremented inside workers stay in the worker process; the
parent's counters still reflect the sequential prefix enumeration and
the per-build aggregates on the ``arrangement.build`` span.

Disk warm-start (:mod:`repro.store`) composes with parallelism in the
parent: :func:`~repro.arrangement.builder.build_arrangement` consults
the store *before* any pool is created, so a disk hit skips worker
startup entirely, and a miss persists the (order-identical) parallel
result for the next process.  Workers inherit ``REPRO_CACHE_DIR``
through the environment like every subprocess, but they only enumerate
sign vectors — they never read or write the store themselves.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.geometry import fastlp
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.linalg import Vector
from repro.obs.metrics import get_registry

from repro.arrangement.faces import SignVector

_PARALLEL_BUILDS = get_registry().counter("arrangement.parallel_builds")
_PARALLEL_SUBTREES = get_registry().counter("arrangement.parallel_subtrees")
_PARALLEL_FALLBACKS = get_registry().counter(
    "arrangement.parallel_fallbacks"
)


def resolve_jobs(parallel: int | None) -> int:
    """The effective worker count: explicit knob, else ``REPRO_JOBS``.

    Values below 1 (and unparsable environment values) mean sequential.
    """
    if parallel is not None:
        return max(1, int(parallel))
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def _subtree_worker(
    args: tuple[
        tuple[Hyperplane, ...], SignVector, Vector, int, bool, bool, str
    ],
) -> list[tuple[SignVector, Vector]]:
    """Enumerate one sign-vector subtree (runs in a worker process)."""
    (
        hyperplanes,
        prefix,
        witness,
        dimension,
        witness_reuse,
        dedup,
        lp_mode,
    ) = args
    from repro.arrangement.builder import enumerate_sign_vectors

    # The parent resolved its LP mode (knob, context manager or
    # environment) at submit time; pin the worker to the same tier so
    # spawn-based pools behave like fork-based ones.
    fastlp.set_lp_mode(lp_mode)
    return list(
        enumerate_sign_vectors(
            hyperplanes,
            dimension,
            witness_reuse=witness_reuse,
            dedup=dedup,
            prefix=prefix,
            prefix_witness=witness,
        )
    )


def _split_depth(n_planes: int, jobs: int) -> int:
    """DFS depth below which subtrees are distributed to workers."""
    depth = 1
    while 3 ** depth < 2 * jobs and depth < n_planes - 1:
        depth += 1
    return min(depth, n_planes - 1)


def enumerate_parallel(
    hyperplanes: Sequence[Hyperplane],
    dimension: int,
    jobs: int,
    witness_reuse: bool = True,
    dedup: bool = True,
) -> list[tuple[SignVector, Vector]]:
    """All feasible sign vectors, computed by a process pool.

    Deterministic: the concatenation over subtree prefixes in DFS order
    reproduces the sequential enumeration order exactly.  Falls back to
    the sequential enumerator when the pool cannot be created.
    """
    from repro.arrangement.builder import enumerate_sign_vectors

    planes = tuple(hyperplanes)
    depth = _split_depth(len(planes), jobs)
    prefixes = list(
        enumerate_sign_vectors(
            planes[:depth],
            dimension,
            witness_reuse=witness_reuse,
            dedup=dedup,
        )
    )
    active_mode = fastlp.get_lp_mode()
    tasks = [
        (planes, signs, witness, dimension, witness_reuse, dedup, active_mode)
        for signs, witness in prefixes
    ]
    try:
        import concurrent.futures

        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, max(1, len(tasks)))
        ) as pool:
            chunks = list(pool.map(_subtree_worker, tasks))
    except Exception:
        _PARALLEL_FALLBACKS.inc()
        return list(
            enumerate_sign_vectors(
                planes,
                dimension,
                witness_reuse=witness_reuse,
                dedup=dedup,
            )
        )
    _PARALLEL_BUILDS.inc()
    _PARALLEL_SUBTREES.inc(len(tasks))
    results: list[tuple[SignVector, Vector]] = []
    for chunk in chunks:
        results.extend(chunk)
    return results
