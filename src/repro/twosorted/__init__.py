"""Two-sorted region extensions of linear constraint databases."""

from repro.twosorted.structure import RegionExtension

__all__ = ["RegionExtension"]
