"""The region extension 𝔅^Reg (Definition 4.1 / Note 7.1).

Given a database 𝔅 = ((ℝ, <, +), S), its region extension is the
two-sorted structure

    𝔅^Reg = (ℝ, Reg; ≤, +, S, adj, ∈)

whose second sort Reg is a decomposition of ℝ^d into regions — the faces
of the arrangement A(S) for the fixed-point logics (Sections 4-6), or the
NC¹ decomposition of Appendix A for the transitive-closure logics
(Section 7).  Every database has a unique region extension per
decomposition, so the logics can freely treat 𝔅 itself as a model.

:class:`RegionExtension` bundles the database with its decomposition and
exposes the structure's relations:

* ``element containment``: ``contains(point, region_index)``;
* ``adjacency``: ``adjacent(i, j)`` (Definition 4.1, via closures);
* the spatial relation S, and the derived ``region ⊆ S`` predicate the
  example queries use.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.errors import EvaluationError
from repro.constraints.database import ConstraintDatabase
from repro.constraints.relation import ConstraintRelation
from repro.obs.tracing import TRACER
from repro.regions.arrangement_regions import ArrangementDecomposition
from repro.regions.base import Decomposition, Region
from repro.regions.nc1 import NC1Decomposition


class RegionExtension:
    """The two-sorted structure 𝔅^Reg over a constraint database."""

    def __init__(
        self,
        database: ConstraintDatabase,
        decomposition: Decomposition,
        spatial_name: str = "S",
    ) -> None:
        if spatial_name not in database:
            raise EvaluationError(
                f"database has no spatial relation {spatial_name!r}"
            )
        self.database = database
        self.decomposition = decomposition
        self.spatial_name = spatial_name

    @staticmethod
    def build(
        database: ConstraintDatabase,
        decomposition: str = "arrangement",
        spatial_name: str = "S",
        arrangement_factory=None,
    ) -> "RegionExtension":
        """Construct the region extension of a database.

        ``decomposition`` selects the region family: ``"arrangement"``
        (Definition 4.1, the default), ``"nc1"`` (Note 7.1), or
        ``"refined"`` — the arrangement of the hyperplanes of *all*
        database relations, classified by S.  The refined variant models
        the paper's mixed-information maps (Figure 6), where one spatial
        relation carries several layers of information: refining by the
        auxiliary relations' atoms makes every region homogeneous with
        respect to each of them, exactly as the paper's single-relation
        encoding via an extra dimension would.

        ``arrangement_factory`` — optional ``(relation,
        extra_hyperplanes) -> Arrangement`` used in place of a fresh
        build; :mod:`repro.engine` passes its cross-query arrangement
        cache here so repeated builds of the same database skip the
        Theorem-3.1 construction.
        """
        if spatial_name not in database:
            raise EvaluationError(
                f"database has no spatial relation {spatial_name!r}"
            )
        spatial = database.relation(spatial_name)
        with TRACER.span("extension.build") as build_span:
            build_span.set("decomposition", decomposition)
            if decomposition == "arrangement":
                if arrangement_factory is not None:
                    regions: Decomposition = ArrangementDecomposition(
                        spatial,
                        arrangement=arrangement_factory(spatial, None),
                    )
                else:
                    regions = ArrangementDecomposition(spatial)
            elif decomposition == "refined":
                from repro.arrangement.hyperplanes import (
                    hyperplanes_of_relation,
                )

                extra: list = []
                for name, relation in database:
                    if name != spatial_name:
                        if relation.arity != spatial.arity:
                            raise EvaluationError(
                                "refined decomposition requires all "
                                "relations to share the spatial arity"
                            )
                        extra.extend(hyperplanes_of_relation(relation))
                if arrangement_factory is not None:
                    regions = ArrangementDecomposition(
                        spatial,
                        arrangement=arrangement_factory(
                            spatial, tuple(extra)
                        ),
                    )
                else:
                    regions = ArrangementDecomposition(
                        spatial, extra_hyperplanes=tuple(extra)
                    )
            elif decomposition == "nc1":
                regions = NC1Decomposition(spatial)
            else:
                raise EvaluationError(
                    f"unknown decomposition {decomposition!r}; "
                    "use 'arrangement', 'refined' or 'nc1'"
                )
            build_span.set("regions", len(regions))
        return RegionExtension(database, regions, spatial_name)

    # ------------------------------------------------------------------
    # The structure's relations
    # ------------------------------------------------------------------
    @property
    def spatial(self) -> ConstraintRelation:
        """The spatial relation S."""
        return self.database.relation(self.spatial_name)

    @property
    def regions(self) -> tuple[Region, ...]:
        """The second sort Reg, canonically ordered."""
        return self.decomposition.regions

    def region_count(self) -> int:
        return len(self.decomposition)

    def contains(
        self, point: Sequence[Fraction], region_index: int
    ) -> bool:
        """The ∈ relation between ℝ^d and Reg."""
        return self.decomposition.region(region_index).contains(point)

    def adjacent(self, left: int, right: int) -> bool:
        """The adj relation (Definition 4.1)."""
        return self.decomposition.adjacent(left, right)

    def region_subset_of_spatial(self, region_index: int) -> bool:
        """The derived ``R ⊆ S`` predicate used by the example queries."""
        return self.decomposition.region_subset_of_relation(region_index)

    def zero_dimensional_regions(self) -> list[Region]:
        """0-dimensional regions in lexicographic order (rBIT's domain)."""
        return self.decomposition.zero_dimensional()

    def __str__(self) -> str:
        return (
            f"RegionExtension({self.spatial_name}: arity "
            f"{self.spatial.arity}, {len(self.decomposition)} regions)"
        )
