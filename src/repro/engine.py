"""The query engine: unified entry point and cross-query caching.

The arrangement A(S) — the PTIME bottleneck of Theorem 3.1 — used to be
rebuilt from scratch for every query against the same database.  This
module adds the missing layer between the logic and the geometry:

* **fingerprints** — a canonical SHA-256 digest of a database (relation
  names, schemas and the structural rendering of their defining
  formulas).  Two databases with structurally equal content share a
  fingerprint regardless of object identity; renaming a relation or
  changing any constraint changes it.
* :class:`EngineCache` — a bounded LRU cache of arrangements and
  :meth:`RegionExtension.build <repro.twosorted.structure.\
  RegionExtension.build>` results keyed by those fingerprints, with
  hit/miss/invalidation counters in the process metrics registry.
* :class:`QueryEngine` — the façade the rest of the library (CLI, the
  deprecated ``evaluate_query`` / ``query_truth`` helpers, benchmarks)
  routes through::

      engine = QueryEngine(db)
      answer = engine.evaluate("S(x) & x < 1")
      assert engine.truth("exists x. S(x)")

All caching is safe because :class:`ConstraintDatabase`,
:class:`ConstraintRelation` and the formula AST are immutable; explicit
invalidation (:meth:`EngineCache.invalidate`) exists for long-running
processes that want to bound memory, not for correctness.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import EvaluationError
from repro.config import EngineConfig
from repro.constraints.database import ConstraintDatabase
from repro.constraints.relation import ConstraintRelation
from repro.arrangement.builder import Arrangement, build_arrangement
from repro.deprecation import warn_once
from repro.geometry import fastlp
from repro.geometry.hyperplane import Hyperplane
from repro.logic import ast
from repro.logic.evaluator import Evaluator
from repro.obs.journal import JOURNAL
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.telemetry import get_telemetry
from repro.obs.tracing import TRACER
from repro.twosorted.structure import RegionExtension
from repro import store as store_pkg
from repro.store.disk import DiskStore


def relation_fingerprint(relation: ConstraintRelation) -> str:
    """Canonical digest of one relation (schema + structural formula).

    Delegates to :meth:`ConstraintRelation.fingerprint`, which memoises
    the digest on the relation — engine caches and the disk store look
    relations up far more often than they build them.
    """
    return relation.fingerprint()


def database_fingerprint(database: ConstraintDatabase) -> str:
    """Canonical digest of a whole database.

    Relations are visited in their stored (sorted-by-name) order, so the
    digest is independent of construction order; it changes whenever a
    relation is renamed, added, dropped, or its defining formula differs
    structurally.  Cached on the (immutable) database object.
    """
    cached = database.__dict__.get("_fingerprint")
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for name, relation in database:
        digest.update(name.encode())
        digest.update(b"\x00")
        digest.update(relation_fingerprint(relation).encode())
        digest.update(b"\x01")
    fingerprint = digest.hexdigest()
    object.__setattr__(database, "_fingerprint", fingerprint)
    return fingerprint


class EngineCache:
    """Bounded LRU cache of arrangements and region extensions.

    An instance may be shared by many engines — including engines on
    different threads (the server pool): all map access is serialised
    behind one lock, and misses are **single-flight** per key.  When N
    threads miss the same fingerprint concurrently, exactly one of them
    builds (one ``arrangement.builds`` increment, one disk-store probe)
    while the other N−1 wait on the in-flight build and then take a hit
    — a thundering herd computes each arrangement once.  Waits are
    counted in ``engine.cache.singleflight.coalesced``.
    """

    def __init__(
        self,
        capacity: int = 64,
        metrics: MetricsRegistry | None = None,
        store: DiskStore | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        #: Optional pinned disk store for arrangement warm-starts.  When
        #: ``None`` every miss consults :func:`repro.store.active_store`
        #: (the ``--cache-dir`` / ``REPRO_CACHE_DIR`` setting), so the
        #: process-wide shared cache honours the CLI flags without being
        #: rebuilt.
        self.store = store
        self._extensions: OrderedDict[tuple, RegionExtension] = OrderedDict()
        self._arrangements: OrderedDict[tuple, Arrangement] = OrderedDict()
        self._lock = threading.Lock()
        #: In-flight builds, keyed by ("arrangement"|"extension", key);
        #: followers wait on the event, then re-check the map.
        self._inflight: dict[tuple, threading.Event] = {}
        registry = metrics if metrics is not None else get_registry()
        self._c_ext_hits = registry.counter("engine.cache.extension.hits")
        self._c_ext_misses = registry.counter("engine.cache.extension.misses")
        self._c_arr_hits = registry.counter("engine.cache.arrangement.hits")
        self._c_arr_misses = registry.counter(
            "engine.cache.arrangement.misses"
        )
        self._c_invalidations = registry.counter(
            "engine.cache.invalidations"
        )
        self._c_coalesced = registry.counter(
            "engine.cache.singleflight.coalesced"
        )

    # ------------------------------------------------------------------
    # Single-flight plumbing
    # ------------------------------------------------------------------
    def _get_or_build(self, family: str, table, key, hit, miss, build):
        """Look ``key`` up in ``table`` with single-flight misses.

        ``hit``/``miss`` record counters and journal events; ``build``
        produces the value (called without the lock held, by exactly
        one thread per in-flight key).
        """
        flight_key = (family, key)
        while True:
            with self._lock:
                cached = table.get(key)
                if cached is not None:
                    table.move_to_end(key)
                    event = None
                else:
                    event = self._inflight.get(flight_key)
                    if event is None:
                        self._inflight[flight_key] = threading.Event()
                        break  # this thread builds
            if cached is not None:
                hit()
                return cached
            # Another thread is building this key: wait, then re-check.
            self._c_coalesced.inc()
            event.wait()
        miss()
        try:
            started = time.perf_counter()
            value = build()
            elapsed = time.perf_counter() - started
            with self._lock:
                table[key] = value
                while len(table) > self.capacity:
                    table.popitem(last=False)
            get_telemetry().histogram(
                f"engine.{family}_build_seconds"
            ).observe(elapsed)
        finally:
            with self._lock:
                event = self._inflight.pop(flight_key)
            event.set()
        return value

    # ------------------------------------------------------------------
    # Arrangements
    # ------------------------------------------------------------------
    def arrangement(
        self,
        relation: ConstraintRelation,
        extra_hyperplanes: tuple[Hyperplane, ...] | None = None,
        jobs: int | None = None,
    ) -> Arrangement:
        """A(S) for a relation, built once per structural fingerprint.

        ``jobs`` requests process-parallel construction on a miss; the
        cache key ignores it because the resulting arrangement is
        identical for every worker count.  Misses consult the disk
        store (when one is pinned or active) before enumerating, and
        persist freshly built arrangements for later processes.
        """
        extra_key = (
            tuple(
                (plane.normal, plane.offset)
                for plane in extra_hyperplanes
            )
            if extra_hyperplanes
            else ()
        )
        key = (relation_fingerprint(relation), extra_key)

        def hit() -> None:
            self._c_arr_hits.inc()
            TRACER.current().add("arrangement_cache_hits", 1)
            if JOURNAL.enabled:
                JOURNAL.emit(
                    "cache", layer="engine", kind="arrangement",
                    outcome="hit", key=key[0][:12],
                )

        def miss() -> None:
            self._c_arr_misses.inc()
            if JOURNAL.enabled:
                JOURNAL.emit(
                    "cache", layer="engine", kind="arrangement",
                    outcome="miss", key=key[0][:12],
                )

        def build() -> Arrangement:
            return build_arrangement(
                relation,
                hyperplanes=extra_hyperplanes or None,
                parallel=jobs,
                store=self.store,
            )

        return self._get_or_build(
            "arrangement", self._arrangements, key, hit, miss, build
        )

    # ------------------------------------------------------------------
    # Region extensions (decomposition + database bundle)
    # ------------------------------------------------------------------
    def extension(
        self,
        database: ConstraintDatabase,
        decomposition: str = "arrangement",
        spatial_name: str = "S",
        jobs: int | None = None,
    ) -> RegionExtension:
        """The region extension, reused across structurally equal builds."""
        key = (
            database_fingerprint(database),
            decomposition,
            spatial_name,
        )
        def hit() -> None:
            self._c_ext_hits.inc()
            TRACER.current().add("extension_cache_hits", 1)
            if JOURNAL.enabled:
                JOURNAL.emit(
                    "cache", layer="engine", kind="extension",
                    outcome="hit", key=key[0][:12],
                )

        def miss() -> None:
            self._c_ext_misses.inc()
            if JOURNAL.enabled:
                JOURNAL.emit(
                    "cache", layer="engine", kind="extension",
                    outcome="miss", key=key[0][:12],
                )

        def factory(relation, extra_hyperplanes):
            return self.arrangement(relation, extra_hyperplanes, jobs=jobs)

        def build() -> RegionExtension:
            return RegionExtension.build(
                database,
                decomposition,
                spatial_name,
                arrangement_factory=factory,
            )

        return self._get_or_build(
            "extension", self._extensions, key, hit, miss, build
        )

    def seed_arrangement(
        self,
        relation: ConstraintRelation,
        arrangement: Arrangement,
        store: DiskStore | None = None,
    ) -> None:
        """Install a maintained arrangement under its relation's key.

        The incremental write path (:meth:`QueryEngine.apply_delta`)
        computes the new version's arrangement by delta and seeds it
        here, so the next extension build takes a counted hit instead
        of re-running the batch construction.  When a disk store is
        given the entry is persisted too — but never overwritten:
        content-addressed keys mean an existing entry is the same
        arrangement already, and leaving it untouched keeps store bytes
        stable across write/undo round trips.
        """
        from repro.arrangement.hyperplanes import hyperplanes_of_relation

        key = (relation_fingerprint(relation), ())
        with self._lock:
            self._arrangements[key] = arrangement
            self._arrangements.move_to_end(key)
            while len(self._arrangements) > self.capacity:
                self._arrangements.popitem(last=False)
        disk = store if store is not None else self.store
        if disk is not None:
            disk_key = store_pkg.arrangement_key(
                hyperplanes_of_relation(relation),
                relation.arity,
                relation,
            )
            if not disk.entry_path("arrangement", disk_key).exists():
                disk.save("arrangement", disk_key, arrangement)

    # ------------------------------------------------------------------
    # Predictions (non-mutating, for ``repro explain``)
    # ------------------------------------------------------------------
    def peek_arrangement(
        self,
        relation: ConstraintRelation,
        extra_hyperplanes: tuple[Hyperplane, ...] | None = None,
    ) -> bool:
        """Whether :meth:`arrangement` would hit, without touching state.

        No counters move and the LRU order is left alone — this is how
        ``repro explain`` predicts cache outcomes without perturbing
        the run it is predicting.
        """
        extra_key = (
            tuple(
                (plane.normal, plane.offset)
                for plane in extra_hyperplanes
            )
            if extra_hyperplanes
            else ()
        )
        key = (relation_fingerprint(relation), extra_key)
        with self._lock:
            return key in self._arrangements

    def peek_extension(
        self,
        database: ConstraintDatabase,
        decomposition: str = "arrangement",
        spatial_name: str = "S",
    ) -> bool:
        """Whether :meth:`extension` would hit (no counters, no LRU)."""
        key = (
            database_fingerprint(database),
            decomposition,
            spatial_name,
        )
        with self._lock:
            return key in self._extensions

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def invalidate(self, database: ConstraintDatabase | None = None) -> None:
        """Drop cached entries — all of them, or one database's.

        Passing a database also drops the arrangements of each of its
        relations (they may be shared with other databases holding the
        same relation; dropping is always safe, merely un-warm).
        """
        if database is None:
            with self._lock:
                dropped = len(self._extensions) + len(self._arrangements)
                self._extensions.clear()
                self._arrangements.clear()
            self._c_invalidations.inc(dropped)
            return
        fingerprint = database_fingerprint(database)
        relation_prints = {
            relation_fingerprint(relation) for __, relation in database
        }
        with self._lock:
            stale_ext = [
                key for key in self._extensions if key[0] == fingerprint
            ]
            stale_arr = [
                key
                for key in self._arrangements
                if key[0] in relation_prints
            ]
            for key in stale_ext:
                del self._extensions[key]
            for key in stale_arr:
                del self._arrangements[key]
        self._c_invalidations.inc(len(stale_ext) + len(stale_arr))

    def stats(self) -> dict[str, int]:
        """Current hit/miss/size numbers (plain dict snapshot)."""
        with self._lock:
            extensions = len(self._extensions)
            arrangements = len(self._arrangements)
        return {
            "extension_hits": self._c_ext_hits.value,
            "extension_misses": self._c_ext_misses.value,
            "arrangement_hits": self._c_arr_hits.value,
            "arrangement_misses": self._c_arr_misses.value,
            "invalidations": self._c_invalidations.value,
            "singleflight_coalesced": self._c_coalesced.value,
            "extensions_cached": extensions,
            "arrangements_cached": arrangements,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._extensions) + len(self._arrangements)


# The process-default cache: what ``QueryEngine(cache=None)`` uses, so
# independent engines keep reusing each other's work.  New code that
# wants an explicit lifetime constructs its own EngineCache (or calls
# EngineConfig.make_cache()) and passes it via ``QueryEngine(cache=...)``.
_DEFAULT_CACHE = EngineCache()


def default_cache() -> EngineCache:
    """The process-default :class:`EngineCache`.

    Prefer constructing an explicit cache and passing it through
    ``QueryEngine(cache=...)``; this accessor exists for code that
    genuinely wants the process-wide default (tests asserting on it,
    notebooks warming it deliberately).
    """
    return _DEFAULT_CACHE


def shared_cache() -> EngineCache:
    """Deprecated: the process-wide engine cache.

    .. deprecated:: 1.2
       Construct an :class:`EngineCache` explicitly and pass it via
       ``QueryEngine(cache=...)`` (or use :func:`default_cache` when the
       process default is genuinely what you want).
    """
    warn_once(
        "shared_cache",
        "shared_cache() is deprecated; pass an explicit EngineCache via "
        "QueryEngine(cache=...) or use repro.engine.default_cache()",
    )
    return _DEFAULT_CACHE


def invalidate_cache(database: ConstraintDatabase | None = None) -> None:
    """Deprecated: invalidate the process-wide engine cache.

    .. deprecated:: 1.2
       Call :meth:`EngineCache.invalidate` on the cache you own (the
       process default is reachable via :func:`default_cache`).
    """
    warn_once(
        "invalidate_cache",
        "invalidate_cache() is deprecated; call .invalidate() on an "
        "explicit EngineCache (repro.engine.default_cache() for the "
        "process default)",
    )
    _DEFAULT_CACHE.invalidate(database)


@dataclass(frozen=True)
class DeltaReport:
    """What one :meth:`QueryEngine.apply_delta` call did.

    ``parent``/``child`` are the database fingerprints before and after
    the write; ``lineage_seq`` is the persisted chain position (``None``
    without a disk store) and ``compacted`` reports whether the child
    was folded back into a full snapshot.
    """

    parent: str
    child: str
    operations: int
    relations_changed: tuple[str, ...]
    planes_inserted: int
    planes_retracted: int
    lineage_seq: "int | None"
    compacted: bool


class QueryEngine:
    """The unified entry point for querying one constraint database.

    Owns the region-extension backend choice (``decomposition`` /
    ``spatial_name``), resolves the extension through the cross-query
    :class:`EngineCache`, and keeps one memoising
    :class:`~repro.logic.evaluator.Evaluator` alive across queries, so::

        engine = QueryEngine(db)
        engine.truth("exists x. S(x)")     # builds (or reuses) A(S)
        engine.evaluate("S(x) & x < 1")    # reuses everything

    Queries may be :class:`~repro.logic.ast.RegFormula` values or source
    strings (parsed with :func:`repro.logic.parser.parse_query`).

    Runtime knobs arrive as one :class:`~repro.config.EngineConfig`
    (``QueryEngine(db, config=EngineConfig.resolve(jobs=4))``).  The
    pre-1.2 per-knob kwargs (``jobs=``, ``lp_mode=``, ``cache_dir=``)
    still work — they are folded into an unresolved config with the
    identical deferred-environment semantics — but are deprecated.
    """

    #: Sentinel distinguishing "kwarg not passed" from an explicit None.
    _UNSET = object()

    def __init__(
        self,
        database: ConstraintDatabase,
        decomposition: str = "arrangement",
        spatial_name: str = "S",
        cache: EngineCache | None = None,
        jobs: "int | None" = _UNSET,
        lp_mode: "str | None" = _UNSET,
        cache_dir: "DiskStore | str | None" = _UNSET,
        *,
        config: EngineConfig | None = None,
    ) -> None:
        legacy = {
            name: value
            for name, value in (
                ("jobs", jobs), ("lp_mode", lp_mode), ("cache_dir", cache_dir)
            )
            if value is not QueryEngine._UNSET
        }
        if config is not None and legacy:
            raise ValueError(
                "pass either config=EngineConfig(...) or the legacy "
                f"kwargs {sorted(legacy)}, not both"
            )
        if config is None:
            if legacy:
                warn_once(
                    "QueryEngine.legacy_kwargs",
                    "QueryEngine(jobs=, lp_mode=, cache_dir=) is "
                    "deprecated; pass config=repro.config.EngineConfig(...) "
                    "instead",
                )
            # An *unresolved* config: None fields keep the historical
            # consult-the-environment-at-use-time behaviour.
            config = EngineConfig(
                lp_mode=legacy.get("lp_mode"),
                jobs=legacy.get("jobs"),
                cache_dir=legacy.get("cache_dir"),
            )
        self.database = database
        self.decomposition = decomposition
        self.spatial_name = spatial_name
        #: The engine's (frozen) runtime configuration.
        self.config = config
        self.cache = cache if cache is not None else _DEFAULT_CACHE
        #: Disk warm-start: an explicit ``cache_dir`` (path or
        #: :class:`~repro.store.disk.DiskStore`) pins persistence for
        #: this engine; ``None`` defers to the process-wide setting
        #: (``--cache-dir`` / ``REPRO_CACHE_DIR``) at use time.
        self._pinned_store = store_pkg.resolve_store(
            config.cache_dir, size_budget=config.cache_budget
        )
        self._results: OrderedDict[str, ConstraintRelation] = OrderedDict()
        #: Rewritten plans, keyed by the original query's structural
        #: rendering.  Re-planning must return the *same* formula object
        #: so EXPLAIN's profiler frames line up with the plan tree.
        self._plans: OrderedDict[str, tuple] = OrderedDict()
        self._statistics = None
        self._statistics_loaded = False
        self._knobs = None
        registry = get_registry()
        self._c_opt_hits = registry.counter("optimizer.stats_hits")
        self._c_opt_misses = registry.counter("optimizer.stats_misses")
        self._c_opt_rewrites = registry.counter("optimizer.rewrites")
        self._c_opt_updates = registry.counter("optimizer.stats_updates")
        #: Worker processes for arrangement construction (``None`` =
        #: consult the ``REPRO_JOBS`` environment variable).
        self.jobs = config.jobs
        #: LP tier selection, ``"exact"`` or ``"filtered"`` (``None`` =
        #: consult ``REPRO_LP_MODE``, defaulting to ``"filtered"``).
        #: Both modes return identical statuses and exact witnesses, so
        #: the engine cache is deliberately not keyed on it.
        self.lp_mode = config.lp_mode
        self._extension: RegionExtension | None = None
        self._evaluator: Evaluator | None = None
        #: Lazily created per-engine arrangement maintenance state
        #: (:class:`repro.incremental.MaintainedArrangements`).
        self._maintained = None
        self._c_deltas = registry.counter("engine.deltas_applied")

    # ------------------------------------------------------------------
    # Lazily resolved backends
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """The database's canonical fingerprint (the cache key)."""
        return database_fingerprint(self.database)

    def _store(self) -> DiskStore | None:
        """The disk store in effect for this engine right now."""
        if self._pinned_store is not None:
            return self._pinned_store
        return store_pkg.active_store()

    def _store_scope(self):
        """A context pinning this engine's store for nested builds.

        A no-op when no ``cache_dir`` was pinned, so process-wide
        ``--cache-dir`` / ``REPRO_CACHE_DIR`` settings stay in effect.
        """
        if self._pinned_store is None:
            from contextlib import nullcontext

            return nullcontext()
        return store_pkg.store_scope(self._pinned_store)

    # ------------------------------------------------------------------
    # Cost-based optimizer (statistics, rewrites, knobs)
    # ------------------------------------------------------------------
    def optimizer_enabled(self) -> bool:
        """Whether the cost-based optimizer applies to this engine."""
        from repro.config import resolve_optimizer

        return resolve_optimizer(self.config.optimizer) == "on"

    def statistics(self):
        """The persisted optimizer statistics (``None`` without a store).

        Loaded once per engine; a corrupt entry is quarantined by the
        store and read as a miss, so a bad file can degrade plans back
        to the static priors but never produce a wrong one.
        """
        if self._statistics_loaded:
            return self._statistics
        self._statistics_loaded = True
        disk = self._store()
        if disk is not None:
            from repro.optimizer.statistics import Statistics

            loaded = disk.load("statistics", store_pkg.statistics_key())
            if isinstance(loaded, Statistics):
                self._statistics = loaded
        return self._statistics

    def knob_decisions(self) -> list:
        """The resolved adaptive knobs with their ``because`` strings."""
        if self._knobs is None:
            from repro.optimizer.knobs import choose_knobs

            statistics = (
                self.statistics() if self.optimizer_enabled() else None
            )
            self._knobs = choose_knobs(self.config, statistics)
        return self._knobs

    def _chosen_knob(self, name: str) -> str:
        from repro.optimizer.knobs import decided

        return decided(self.knob_decisions(), name).chosen

    def _effective_lp_mode(self) -> "str | None":
        """The LP tier this engine runs under (adaptive when open)."""
        if self.lp_mode is not None or not self.optimizer_enabled():
            return self.lp_mode
        return self._chosen_knob("lp_mode")

    def _effective_jobs(self) -> "int | None":
        """Arrangement worker count (adaptive when open)."""
        if self.jobs is not None or not self.optimizer_enabled():
            return self.jobs
        return int(self._chosen_knob("jobs"))

    #: Bound on remembered rewritten plans per engine.
    _PLAN_CAPACITY = 256

    def plan(self, query: "ast.RegFormula | str"):
        """The (possibly rewritten) plan for a query.

        Returns ``(formula, outcome)`` where ``outcome`` is the
        :class:`~repro.optimizer.rewrite.RewriteOutcome` carrying the
        recorded decisions, or ``None`` with the optimizer off (the
        formula is then returned unchanged — the oracle path).  Planning
        is memoised per structural query so repeated evaluation and
        EXPLAIN see the identical rewritten objects.
        """
        formula = self._parse(query)
        if not self.optimizer_enabled():
            return formula, None
        key = str(formula)
        cached = self._plans.get(key)
        if cached is not None:
            self._plans.move_to_end(key)
            return cached
        from repro.optimizer.rewrite import rewrite_query

        outcome = rewrite_query(formula, self.statistics())
        self._c_opt_rewrites.inc()
        if outcome.model.stats_hits:
            self._c_opt_hits.inc(outcome.model.stats_hits)
        if outcome.model.stats_misses:
            self._c_opt_misses.inc(outcome.model.stats_misses)
        planned = (outcome.formula, outcome)
        self._plans[key] = planned
        while len(self._plans) > self._PLAN_CAPACITY:
            self._plans.popitem(last=False)
        return planned

    def result_key_text(self, original_text: str, optimized: bool) -> str:
        """The store key text for a query answer.

        Keys derive from the *original* query text — the cost-based
        rewrite is stats-dependent, so keying by the rewritten plan
        would orphan persisted answers whenever new measurements shift
        the plan.  A mode marker keeps optimized and ablated runs on
        separate entries: each mode's warm answers stay byte-identical
        to its own cold run.
        """
        if optimized:
            return "optimizer=on\x00" + original_text
        return original_text

    def _record_statistics(self, formula: ast.RegFormula, profiler) -> None:
        """Merge one profiled run into the persisted statistics."""
        disk = self._store()
        if disk is None:
            return
        from repro.explain import _children_of
        from repro.optimizer.statistics import (
            Statistics,
            harvest_profile,
        )

        nodes_by_id: dict[int, ast.RegFormula] = {}

        def collect(node: ast.RegFormula) -> None:
            if id(node) in nodes_by_id:
                return
            nodes_by_id[id(node)] = node
            for child in _children_of(node):
                collect(child)

        collect(formula)
        run_nodes = harvest_profile(
            profiler.stats, profiler.counters, nodes_by_id
        )
        run_nodes.update(self._global_run_stats(profiler))
        if not run_nodes:
            return
        base = self.statistics() or Statistics()
        merged = base.merge(run_nodes)
        disk.save("statistics", store_pkg.statistics_key(), merged)
        self._statistics = merged
        self._statistics_loaded = True
        self._c_opt_updates.inc()

    def _global_run_stats(self, profiler) -> dict:
        """Process-wide observations with no single plan node.

        The run delta of the fastlp filter counters (feeds the adaptive
        ``lp_mode``) and of the arrangement counters (feeds ``jobs``),
        recorded under pseudo-fingerprints.
        """
        from repro.optimizer.statistics import (
            GLOBAL_ARRANGEMENT,
            GLOBAL_LP,
            make_node_stats,
        )

        before = getattr(profiler, "_run_baseline", None)
        if before is None:
            return {}
        registry = get_registry()
        delta = {
            name: registry.get(name) - before.get(name, 0)
            for name in before
        }
        out = {}
        lp = {
            name: value
            for name, value in delta.items()
            if name.startswith("lp.") and value > 0
        }
        if lp:
            out[GLOBAL_LP] = make_node_stats(calls=1, counters=lp)
        arrangement = {
            name: value
            for name, value in delta.items()
            if name.startswith("arrangement.") and value > 0
        }
        # The build usually pre-dates the profiled window, so the live
        # region count is the reliable size signal for the jobs knob.
        if self._extension is not None:
            count = self._extension.region_count()
            arrangement["arrangement.faces"] = max(
                arrangement.get("arrangement.faces", 0), count
            )
        if arrangement:
            out[GLOBAL_ARRANGEMENT] = make_node_stats(
                calls=1, counters=arrangement
            )
        return out

    @property
    def extension(self) -> RegionExtension:
        """The region extension 𝔅^Reg (cached across engines)."""
        if self._extension is None:
            with fastlp.lp_mode(self._effective_lp_mode()), \
                    self._store_scope():
                self._extension = self.cache.extension(
                    self.database,
                    self.decomposition,
                    self.spatial_name,
                    jobs=self._effective_jobs(),
                )
        return self._extension

    @property
    def evaluator(self) -> Evaluator:
        """The engine's memoising evaluator (one per engine instance)."""
        if self._evaluator is None:
            self._evaluator = Evaluator(
                self.extension,
                executor=self.config.executor,
                backend=self.config.backend,
            )
        return self._evaluator

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _parse(self, query: "ast.RegFormula | str") -> ast.RegFormula:
        if isinstance(query, str):
            from repro.logic.parser import parse_query

            return parse_query(query)
        return query

    def evaluate(self, query: "ast.RegFormula | str") -> ConstraintRelation:
        """The answer relation of a query over its free element variables.

        The query must not have free region or set variables (the
        paper's notion of a RegFO/RegLFP/RegTC *query*).
        """
        formula = self._parse(query)
        if formula.free_region_vars() or formula.free_set_vars():
            raise EvaluationError(
                "queries must not have free region or set variables"
            )
        # The cost-based rewrite (identity with the optimizer off); see
        # result_key_text for why the store key uses the original text.
        original_text = str(formula)
        formula, outcome = self.plan(formula)
        disk = self._store()
        key = None
        if disk is not None:
            key = store_pkg.query_result_key(
                self.fingerprint,
                self.decomposition,
                self.spatial_name,
                self.result_key_text(original_text, outcome is not None),
            )
            cached = self._results.get(key)
            if cached is not None:
                self._results.move_to_end(key)
                return cached
            loaded = disk.load("relation", key)
            if isinstance(loaded, ConstraintRelation):
                self._remember(key, loaded)
                return loaded
        profiler = self._install_collector(disk)
        started = time.perf_counter()
        try:
            with TRACER.span("evaluate"), \
                    fastlp.lp_mode(self._effective_lp_mode()), \
                    self._store_scope():
                answer = self.evaluator.evaluate(formula)
        finally:
            if profiler is not None:
                self.evaluator.profiler = None
        self._observe_latency(
            "engine.evaluate_seconds", time.perf_counter() - started
        )
        if profiler is not None:
            self._record_statistics(formula, profiler)
        if disk is not None and key is not None:
            disk.save("relation", key, answer)
            self._remember(key, answer)
        return answer

    def _observe_latency(self, name: str, seconds: float) -> None:
        """Record a latency observation, labeled by executor/lp_mode.

        Labels honour the ``metrics_labels`` knob; with labels off the
        family keeps one aggregate series.  One histogram observe per
        query — negligible against evaluation cost (measured in
        docs/OBSERVABILITY.md's overhead contract).
        """
        from repro.config import resolve_executor, resolve_metrics_labels

        labels = None
        if resolve_metrics_labels(self.config.metrics_labels) == "on":
            labels = {
                "executor": resolve_executor(self.config.executor),
                "lp_mode": self._effective_lp_mode(),
            }
        get_telemetry().histogram(name, labels).observe(seconds)

    def _install_collector(self, disk):
        """A statistics-collecting profiler, when one can be useful.

        Only with the optimizer on, a disk store to persist into, and
        no profiler already installed (EXPLAIN ANALYZE owns that slot
        and its measurements serve the same purpose).
        """
        if (
            disk is None
            or not self.optimizer_enabled()
            or self.evaluator.profiler is not None
        ):
            return None
        from repro.explain import NodeProfiler

        profiler = NodeProfiler()
        registry = get_registry()
        profiler._run_baseline = {
            name: registry.get(name)
            for name in profiler.counters
            if name.startswith(("lp.", "arrangement."))
        }
        self.evaluator.profiler = profiler
        return profiler

    #: In-memory bound on remembered per-query answer relations.
    _RESULT_CAPACITY = 256

    def _remember(self, key: str, answer: ConstraintRelation) -> None:
        self._results[key] = answer
        self._results.move_to_end(key)
        while len(self._results) > self._RESULT_CAPACITY:
            self._results.popitem(last=False)

    def truth(self, query: "ast.RegFormula | str") -> bool:
        """Truth of a boolean query (no free variables of any sort)."""
        formula = self._parse(query)
        if formula.free_element_vars():
            raise EvaluationError("boolean queries have no free variables")
        return not self.evaluate(formula).is_empty()

    def explain(
        self,
        query: "ast.RegFormula | str",
        analyze: bool = False,
    ):
        """EXPLAIN (or EXPLAIN ANALYZE) a query: the annotated plan tree.

        Compiles the query into a :class:`~repro.explain.PlanNode` tree
        mirroring its quantifier/connective structure, annotated with
        the relations and arrangements each node needs and the
        *predicted* cache/store outcomes (by fingerprint, without
        perturbing any cache).  With ``analyze=True`` the query is also
        executed and each node carries its measured cost: wall time, LP
        solves, DFS nodes, cache hits, per-stage fixpoint deltas.

        Returns an :class:`~repro.explain.ExplainResult`.
        """
        from repro.explain import explain_query

        return explain_query(self, self._parse(query), analyze=analyze)

    # ------------------------------------------------------------------
    # Writes (incremental view maintenance)
    # ------------------------------------------------------------------
    def apply_delta(self, delta) -> DeltaReport:
        """Apply a write to this engine's database, maintaining caches.

        ``delta`` is a :class:`repro.incremental.Delta` (or a sequence
        of ``(action, relation, formula)`` triples accepted by
        :func:`repro.incremental.make_delta`).  The engine

        * rebinds :attr:`database` to the post-delta version (built
          all-or-nothing; an invalid op raises
          :class:`~repro.errors.DeltaError` and changes nothing),
        * maintains each changed relation's cached arrangement by plane
          delta (insertion + retraction, reordered to the canonical
          plane order) and seeds the engine cache and disk store with
          the result, so the next query against the new version skips
          the batch construction,
        * records the version edge in the store's lineage log (when a
          store is active), rooting and compacting the chain as needed.

        Maintained arrangements are combinatorially identical to a
        batch rebuild; answers computed against the new version are
        byte-identical to a cold engine's — the differential suite in
        ``tests/test_ivm_differential.py`` holds this path to the
        fresh-rebuild oracle.  Maintenance covers the default
        (per-relation) arrangement keys; decompositions that refine by
        other relations' planes simply rebuild on demand, which is
        correct, merely un-warm.
        """
        from repro import incremental as inc

        if not isinstance(delta, inc.Delta):
            delta = inc.make_delta(*delta)
        parent_db = self.database
        parent_print = database_fingerprint(parent_db)
        child_db = inc.apply_delta(parent_db, delta)
        child_print = database_fingerprint(child_db)
        changed = delta.relations()
        registry = get_registry()
        inserted_before = registry.get("incremental.planes_inserted")
        retracted_before = registry.get("incremental.planes_retracted")
        disk = self._store()
        if self._maintained is None:
            self._maintained = inc.MaintainedArrangements()
        delta_started = time.perf_counter()
        with TRACER.span("apply_delta"), \
                fastlp.lp_mode(self._effective_lp_mode()), \
                self._store_scope():
            for name in changed:
                old_rel = parent_db.relation(name)
                new_rel = child_db.relation(name)
                if old_rel.formula == new_rel.formula:
                    continue
                arrangement = self._maintained.update(
                    old_rel,
                    new_rel,
                    build_old=lambda rel=old_rel: self.cache.arrangement(
                        rel, jobs=self._effective_jobs()
                    ),
                )
                self.cache.seed_arrangement(
                    new_rel, arrangement, store=disk
                )
        self._observe_latency(
            "engine.apply_delta_seconds",
            time.perf_counter() - delta_started,
        )
        lineage_seq: "int | None" = None
        compacted = False
        if disk is not None:
            compactions_before = registry.get(
                "incremental.lineage_compactions"
            )
            record = inc.LineageLog(disk).record(parent_db, child_db, delta)
            lineage_seq = record.seq
            compacted = (
                registry.get("incremental.lineage_compactions")
                > compactions_before
            )
        self.database = child_db
        self._extension = None
        self._evaluator = None
        self._c_deltas.inc()
        report = DeltaReport(
            parent=parent_print,
            child=child_print,
            operations=len(delta),
            relations_changed=changed,
            planes_inserted=(
                registry.get("incremental.planes_inserted") - inserted_before
            ),
            planes_retracted=(
                registry.get("incremental.planes_retracted")
                - retracted_before
            ),
            lineage_seq=lineage_seq,
            compacted=compacted,
        )
        if JOURNAL.enabled:
            JOURNAL.emit(
                "delta.applied",
                parent=parent_print[:12],
                child=child_print[:12],
                operations=report.operations,
                relations=",".join(changed),
                planes_inserted=report.planes_inserted,
                planes_retracted=report.planes_retracted,
            )
        return report

    # ------------------------------------------------------------------
    # Maintenance / introspection
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop this database's cached construction (engine-wide).

        Does not touch the disk store: entries there are content-
        addressed, so a changed database simply resolves different keys.
        """
        self.cache.invalidate(self.database)
        self._extension = None
        self._evaluator = None
        self._results.clear()

    def stats(self) -> dict[str, object]:
        """One dict with the engine's caches and evaluator telemetry."""
        from repro.config import resolve_backend, resolve_executor

        registry = get_registry()
        numbers: dict[str, object] = {
            "cache": self.cache.stats(),
            "executor": resolve_executor(self.config.executor),
            "backend": resolve_backend(self.config.backend),
            "optimizer": {
                "enabled": self.optimizer_enabled(),
                "stats_hits": registry.get("optimizer.stats_hits"),
                "stats_misses": registry.get("optimizer.stats_misses"),
                "rewrites": registry.get("optimizer.rewrites"),
                "stats_updates": registry.get("optimizer.stats_updates"),
                "persisted_nodes": (
                    len(self._statistics.nodes)
                    if self._statistics is not None
                    else 0
                ),
            },
        }
        if self._evaluator is not None:
            numbers["evaluator"] = self._evaluator.metrics.snapshot()
        if self._extension is not None:
            numbers["regions"] = self._extension.region_count()
        disk = self._store()
        if disk is not None:
            numbers["store"] = disk.stats()
        return numbers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryEngine({self.spatial_name!r}, "
            f"decomposition={self.decomposition!r}, "
            f"fingerprint={self.fingerprint[:12]}…)"
        )
