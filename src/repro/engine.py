"""The query engine: unified entry point and cross-query caching.

The arrangement A(S) — the PTIME bottleneck of Theorem 3.1 — used to be
rebuilt from scratch for every query against the same database.  This
module adds the missing layer between the logic and the geometry:

* **fingerprints** — a canonical SHA-256 digest of a database (relation
  names, schemas and the structural rendering of their defining
  formulas).  Two databases with structurally equal content share a
  fingerprint regardless of object identity; renaming a relation or
  changing any constraint changes it.
* :class:`EngineCache` — a bounded LRU cache of arrangements and
  :meth:`RegionExtension.build <repro.twosorted.structure.\
  RegionExtension.build>` results keyed by those fingerprints, with
  hit/miss/invalidation counters in the process metrics registry.
* :class:`QueryEngine` — the façade the rest of the library (CLI, the
  deprecated ``evaluate_query`` / ``query_truth`` helpers, benchmarks)
  routes through::

      engine = QueryEngine(db)
      answer = engine.evaluate("S(x) & x < 1")
      assert engine.truth("exists x. S(x)")

All caching is safe because :class:`ConstraintDatabase`,
:class:`ConstraintRelation` and the formula AST are immutable; explicit
invalidation (:meth:`EngineCache.invalidate`) exists for long-running
processes that want to bound memory, not for correctness.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

from repro.errors import EvaluationError
from repro.constraints.database import ConstraintDatabase
from repro.constraints.relation import ConstraintRelation
from repro.arrangement.builder import Arrangement, build_arrangement
from repro.geometry import fastlp
from repro.geometry.hyperplane import Hyperplane
from repro.logic import ast
from repro.logic.evaluator import Evaluator
from repro.obs.journal import JOURNAL
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import TRACER
from repro.twosorted.structure import RegionExtension
from repro import store as store_pkg
from repro.store.disk import DiskStore


def relation_fingerprint(relation: ConstraintRelation) -> str:
    """Canonical digest of one relation (schema + structural formula).

    Delegates to :meth:`ConstraintRelation.fingerprint`, which memoises
    the digest on the relation — engine caches and the disk store look
    relations up far more often than they build them.
    """
    return relation.fingerprint()


def database_fingerprint(database: ConstraintDatabase) -> str:
    """Canonical digest of a whole database.

    Relations are visited in their stored (sorted-by-name) order, so the
    digest is independent of construction order; it changes whenever a
    relation is renamed, added, dropped, or its defining formula differs
    structurally.  Cached on the (immutable) database object.
    """
    cached = database.__dict__.get("_fingerprint")
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for name, relation in database:
        digest.update(name.encode())
        digest.update(b"\x00")
        digest.update(relation_fingerprint(relation).encode())
        digest.update(b"\x01")
    fingerprint = digest.hexdigest()
    object.__setattr__(database, "_fingerprint", fingerprint)
    return fingerprint


class EngineCache:
    """Bounded LRU cache of arrangements and region extensions.

    One instance (:func:`shared_cache`) is shared process-wide so that
    independent :class:`QueryEngine` instances — and the deprecated
    ``evaluate_query`` one-shot helpers — reuse each other's work.
    """

    def __init__(
        self,
        capacity: int = 64,
        metrics: MetricsRegistry | None = None,
        store: DiskStore | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        #: Optional pinned disk store for arrangement warm-starts.  When
        #: ``None`` every miss consults :func:`repro.store.active_store`
        #: (the ``--cache-dir`` / ``REPRO_CACHE_DIR`` setting), so the
        #: process-wide shared cache honours the CLI flags without being
        #: rebuilt.
        self.store = store
        self._extensions: OrderedDict[tuple, RegionExtension] = OrderedDict()
        self._arrangements: OrderedDict[tuple, Arrangement] = OrderedDict()
        registry = metrics if metrics is not None else get_registry()
        self._c_ext_hits = registry.counter("engine.cache.extension.hits")
        self._c_ext_misses = registry.counter("engine.cache.extension.misses")
        self._c_arr_hits = registry.counter("engine.cache.arrangement.hits")
        self._c_arr_misses = registry.counter(
            "engine.cache.arrangement.misses"
        )
        self._c_invalidations = registry.counter(
            "engine.cache.invalidations"
        )

    # ------------------------------------------------------------------
    # Arrangements
    # ------------------------------------------------------------------
    def arrangement(
        self,
        relation: ConstraintRelation,
        extra_hyperplanes: tuple[Hyperplane, ...] | None = None,
        jobs: int | None = None,
    ) -> Arrangement:
        """A(S) for a relation, built once per structural fingerprint.

        ``jobs`` requests process-parallel construction on a miss; the
        cache key ignores it because the resulting arrangement is
        identical for every worker count.  Misses consult the disk
        store (when one is pinned or active) before enumerating, and
        persist freshly built arrangements for later processes.
        """
        extra_key = (
            tuple(
                (plane.normal, plane.offset)
                for plane in extra_hyperplanes
            )
            if extra_hyperplanes
            else ()
        )
        key = (relation_fingerprint(relation), extra_key)
        cached = self._arrangements.get(key)
        if cached is not None:
            self._arrangements.move_to_end(key)
            self._c_arr_hits.inc()
            TRACER.current().add("arrangement_cache_hits", 1)
            if JOURNAL.enabled:
                JOURNAL.emit(
                    "cache", layer="engine", kind="arrangement",
                    outcome="hit", key=key[0][:12],
                )
            return cached
        self._c_arr_misses.inc()
        if JOURNAL.enabled:
            JOURNAL.emit(
                "cache", layer="engine", kind="arrangement",
                outcome="miss", key=key[0][:12],
            )
        arrangement = build_arrangement(
            relation,
            hyperplanes=extra_hyperplanes or None,
            parallel=jobs,
            store=self.store,
        )
        self._arrangements[key] = arrangement
        while len(self._arrangements) > self.capacity:
            self._arrangements.popitem(last=False)
        return arrangement

    # ------------------------------------------------------------------
    # Region extensions (decomposition + database bundle)
    # ------------------------------------------------------------------
    def extension(
        self,
        database: ConstraintDatabase,
        decomposition: str = "arrangement",
        spatial_name: str = "S",
        jobs: int | None = None,
    ) -> RegionExtension:
        """The region extension, reused across structurally equal builds."""
        key = (
            database_fingerprint(database),
            decomposition,
            spatial_name,
        )
        cached = self._extensions.get(key)
        if cached is not None:
            self._extensions.move_to_end(key)
            self._c_ext_hits.inc()
            TRACER.current().add("extension_cache_hits", 1)
            if JOURNAL.enabled:
                JOURNAL.emit(
                    "cache", layer="engine", kind="extension",
                    outcome="hit", key=key[0][:12],
                )
            return cached
        self._c_ext_misses.inc()
        if JOURNAL.enabled:
            JOURNAL.emit(
                "cache", layer="engine", kind="extension",
                outcome="miss", key=key[0][:12],
            )

        def factory(relation, extra_hyperplanes):
            return self.arrangement(relation, extra_hyperplanes, jobs=jobs)

        extension = RegionExtension.build(
            database,
            decomposition,
            spatial_name,
            arrangement_factory=factory,
        )
        self._extensions[key] = extension
        while len(self._extensions) > self.capacity:
            self._extensions.popitem(last=False)
        return extension

    # ------------------------------------------------------------------
    # Predictions (non-mutating, for ``repro explain``)
    # ------------------------------------------------------------------
    def peek_arrangement(
        self,
        relation: ConstraintRelation,
        extra_hyperplanes: tuple[Hyperplane, ...] | None = None,
    ) -> bool:
        """Whether :meth:`arrangement` would hit, without touching state.

        No counters move and the LRU order is left alone — this is how
        ``repro explain`` predicts cache outcomes without perturbing
        the run it is predicting.
        """
        extra_key = (
            tuple(
                (plane.normal, plane.offset)
                for plane in extra_hyperplanes
            )
            if extra_hyperplanes
            else ()
        )
        key = (relation_fingerprint(relation), extra_key)
        return key in self._arrangements

    def peek_extension(
        self,
        database: ConstraintDatabase,
        decomposition: str = "arrangement",
        spatial_name: str = "S",
    ) -> bool:
        """Whether :meth:`extension` would hit (no counters, no LRU)."""
        key = (
            database_fingerprint(database),
            decomposition,
            spatial_name,
        )
        return key in self._extensions

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def invalidate(self, database: ConstraintDatabase | None = None) -> None:
        """Drop cached entries — all of them, or one database's.

        Passing a database also drops the arrangements of each of its
        relations (they may be shared with other databases holding the
        same relation; dropping is always safe, merely un-warm).
        """
        if database is None:
            dropped = len(self._extensions) + len(self._arrangements)
            self._extensions.clear()
            self._arrangements.clear()
            self._c_invalidations.inc(dropped)
            return
        fingerprint = database_fingerprint(database)
        stale_ext = [
            key for key in self._extensions if key[0] == fingerprint
        ]
        relation_prints = {
            relation_fingerprint(relation) for __, relation in database
        }
        stale_arr = [
            key
            for key in self._arrangements
            if key[0] in relation_prints
        ]
        for key in stale_ext:
            del self._extensions[key]
        for key in stale_arr:
            del self._arrangements[key]
        self._c_invalidations.inc(len(stale_ext) + len(stale_arr))

    def stats(self) -> dict[str, int]:
        """Current hit/miss/size numbers (plain dict snapshot)."""
        return {
            "extension_hits": self._c_ext_hits.value,
            "extension_misses": self._c_ext_misses.value,
            "arrangement_hits": self._c_arr_hits.value,
            "arrangement_misses": self._c_arr_misses.value,
            "invalidations": self._c_invalidations.value,
            "extensions_cached": len(self._extensions),
            "arrangements_cached": len(self._arrangements),
        }

    def __len__(self) -> int:
        return len(self._extensions) + len(self._arrangements)


_SHARED_CACHE = EngineCache()


def shared_cache() -> EngineCache:
    """The process-wide engine cache."""
    return _SHARED_CACHE


def invalidate_cache(database: ConstraintDatabase | None = None) -> None:
    """Invalidate the process-wide engine cache."""
    _SHARED_CACHE.invalidate(database)


class QueryEngine:
    """The unified entry point for querying one constraint database.

    Owns the region-extension backend choice (``decomposition`` /
    ``spatial_name``), resolves the extension through the cross-query
    :class:`EngineCache`, and keeps one memoising
    :class:`~repro.logic.evaluator.Evaluator` alive across queries, so::

        engine = QueryEngine(db)
        engine.truth("exists x. S(x)")     # builds (or reuses) A(S)
        engine.evaluate("S(x) & x < 1")    # reuses everything

    Queries may be :class:`~repro.logic.ast.RegFormula` values or source
    strings (parsed with :func:`repro.logic.parser.parse_query`).
    """

    def __init__(
        self,
        database: ConstraintDatabase,
        decomposition: str = "arrangement",
        spatial_name: str = "S",
        cache: EngineCache | None = None,
        jobs: int | None = None,
        lp_mode: str | None = None,
        cache_dir: "DiskStore | str | None" = None,
    ) -> None:
        self.database = database
        self.decomposition = decomposition
        self.spatial_name = spatial_name
        self.cache = cache if cache is not None else _SHARED_CACHE
        #: Disk warm-start: an explicit ``cache_dir`` (path or
        #: :class:`~repro.store.disk.DiskStore`) pins persistence for
        #: this engine; ``None`` defers to the process-wide setting
        #: (``--cache-dir`` / ``REPRO_CACHE_DIR``) at use time.
        self._pinned_store = store_pkg.resolve_store(cache_dir)
        self._results: OrderedDict[str, ConstraintRelation] = OrderedDict()
        #: Worker processes for arrangement construction (``None`` =
        #: consult the ``REPRO_JOBS`` environment variable).
        self.jobs = jobs
        #: LP tier selection, ``"exact"`` or ``"filtered"`` (``None`` =
        #: consult ``REPRO_LP_MODE``, defaulting to ``"filtered"``).
        #: Both modes return identical statuses and exact witnesses, so
        #: the engine cache is deliberately not keyed on it.
        if lp_mode is not None and lp_mode not in fastlp.LP_MODES:
            raise ValueError(
                f"lp_mode must be one of {fastlp.LP_MODES}, got {lp_mode!r}"
            )
        self.lp_mode = lp_mode
        self._extension: RegionExtension | None = None
        self._evaluator: Evaluator | None = None

    # ------------------------------------------------------------------
    # Lazily resolved backends
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """The database's canonical fingerprint (the cache key)."""
        return database_fingerprint(self.database)

    def _store(self) -> DiskStore | None:
        """The disk store in effect for this engine right now."""
        if self._pinned_store is not None:
            return self._pinned_store
        return store_pkg.active_store()

    def _store_scope(self):
        """A context pinning this engine's store for nested builds.

        A no-op when no ``cache_dir`` was pinned, so process-wide
        ``--cache-dir`` / ``REPRO_CACHE_DIR`` settings stay in effect.
        """
        if self._pinned_store is None:
            from contextlib import nullcontext

            return nullcontext()
        return store_pkg.store_scope(self._pinned_store)

    @property
    def extension(self) -> RegionExtension:
        """The region extension 𝔅^Reg (cached across engines)."""
        if self._extension is None:
            with fastlp.lp_mode(self.lp_mode), self._store_scope():
                self._extension = self.cache.extension(
                    self.database,
                    self.decomposition,
                    self.spatial_name,
                    jobs=self.jobs,
                )
        return self._extension

    @property
    def evaluator(self) -> Evaluator:
        """The engine's memoising evaluator (one per engine instance)."""
        if self._evaluator is None:
            self._evaluator = Evaluator(self.extension)
        return self._evaluator

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _parse(self, query: "ast.RegFormula | str") -> ast.RegFormula:
        if isinstance(query, str):
            from repro.logic.parser import parse_query

            return parse_query(query)
        return query

    def evaluate(self, query: "ast.RegFormula | str") -> ConstraintRelation:
        """The answer relation of a query over its free element variables.

        The query must not have free region or set variables (the
        paper's notion of a RegFO/RegLFP/RegTC *query*).
        """
        formula = self._parse(query)
        if formula.free_region_vars() or formula.free_set_vars():
            raise EvaluationError(
                "queries must not have free region or set variables"
            )
        disk = self._store()
        key = None
        if disk is not None:
            key = store_pkg.query_result_key(
                self.fingerprint,
                self.decomposition,
                self.spatial_name,
                str(formula),
            )
            cached = self._results.get(key)
            if cached is not None:
                self._results.move_to_end(key)
                return cached
            loaded = disk.load("relation", key)
            if isinstance(loaded, ConstraintRelation):
                self._remember(key, loaded)
                return loaded
        with TRACER.span("evaluate"), fastlp.lp_mode(self.lp_mode), \
                self._store_scope():
            answer = self.evaluator.evaluate(formula)
        if disk is not None and key is not None:
            disk.save("relation", key, answer)
            self._remember(key, answer)
        return answer

    #: In-memory bound on remembered per-query answer relations.
    _RESULT_CAPACITY = 256

    def _remember(self, key: str, answer: ConstraintRelation) -> None:
        self._results[key] = answer
        self._results.move_to_end(key)
        while len(self._results) > self._RESULT_CAPACITY:
            self._results.popitem(last=False)

    def truth(self, query: "ast.RegFormula | str") -> bool:
        """Truth of a boolean query (no free variables of any sort)."""
        formula = self._parse(query)
        if formula.free_element_vars():
            raise EvaluationError("boolean queries have no free variables")
        return not self.evaluate(formula).is_empty()

    def explain(
        self,
        query: "ast.RegFormula | str",
        analyze: bool = False,
    ):
        """EXPLAIN (or EXPLAIN ANALYZE) a query: the annotated plan tree.

        Compiles the query into a :class:`~repro.explain.PlanNode` tree
        mirroring its quantifier/connective structure, annotated with
        the relations and arrangements each node needs and the
        *predicted* cache/store outcomes (by fingerprint, without
        perturbing any cache).  With ``analyze=True`` the query is also
        executed and each node carries its measured cost: wall time, LP
        solves, DFS nodes, cache hits, per-stage fixpoint deltas.

        Returns an :class:`~repro.explain.ExplainResult`.
        """
        from repro.explain import explain_query

        return explain_query(self, self._parse(query), analyze=analyze)

    # ------------------------------------------------------------------
    # Maintenance / introspection
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop this database's cached construction (engine-wide).

        Does not touch the disk store: entries there are content-
        addressed, so a changed database simply resolves different keys.
        """
        self.cache.invalidate(self.database)
        self._extension = None
        self._evaluator = None
        self._results.clear()

    def stats(self) -> dict[str, object]:
        """One dict with the engine's caches and evaluator telemetry."""
        numbers: dict[str, object] = {"cache": self.cache.stats()}
        if self._evaluator is not None:
            numbers["evaluator"] = self._evaluator.metrics.snapshot()
        if self._extension is not None:
            numbers["regions"] = self._extension.region_count()
        disk = self._store()
        if disk is not None:
            numbers["store"] = disk.stats()
        return numbers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryEngine({self.spatial_name!r}, "
            f"decomposition={self.decomposition!r}, "
            f"fingerprint={self.fingerprint[:12]}…)"
        )
