"""Small topological queries in RegFO.

These illustrate the two-sorted language below the fixed-point layer:
emptiness, membership of distinguished points, existence of interior, and
(via the region sort) boundedness of the spatial relation.
"""

from __future__ import annotations

from repro.constraints.database import ConstraintDatabase
from repro.logic.ast import RegFormula
from repro.logic.parser import parse_query
from repro.twosorted.structure import RegionExtension


def _vars(arity: int) -> list[str]:
    return [f"x{i}" for i in range(arity)]


def is_empty_query(arity: int) -> RegFormula:
    """``¬∃x̄ S(x̄)``."""
    xs = _vars(arity)
    return parse_query(
        f"!(exists {', '.join(xs)}. S({', '.join(xs)}))"
    )


def contains_origin_query(arity: int) -> RegFormula:
    """``S(0̄)``."""
    xs = _vars(arity)
    constraints = " & ".join(f"{x} = 0" for x in xs)
    return parse_query(
        f"exists {', '.join(xs)}. {constraints} & S({', '.join(xs)})"
    )


def has_interior_query(arity: int) -> RegFormula:
    """Does S contain a full-dimensional region?

    Uses the region sort: some region R ⊆ S is adjacent to no region of
    strictly higher dimension... more simply, some region inside S is not
    in the closure of any other region — for arrangement faces that is
    exactly a top-dimensional face.  Expressed via adjacency: R ⊆ S and
    every region adjacent to R is in R's boundary, i.e. no region Z with
    R in Z's closure exists other than R itself.  Since adjacency is
    symmetric and relates regions of different dimensions only, a
    d-dimensional face is one that no *higher-dimensional* face is
    adjacent to from above; combinatorially, R is top-dimensional iff
    every Z adjacent to R satisfies: every neighbourhood point...

    Rather than reconstruct dimensions in the logic, this query uses the
    ε-neighbourhood directly in FO+LIN: S has interior iff some point has
    a box neighbourhood inside S.
    """
    xs = _vars(arity)
    es = [f"e{i}" for i in range(arity)]
    ys = [f"y{i}" for i in range(arity)]
    eps_pos = " & ".join(f"{e} > 0" for e in es)
    box = " & ".join(
        f"{x} - {e} < {y} & {y} < {x} + {e}"
        for x, e, y in zip(xs, es, ys)
    )
    return parse_query(
        f"exists {', '.join(xs)}. exists {', '.join(es)}. {eps_pos} & "
        f"(forall {', '.join(ys)}. ({box}) -> S({', '.join(ys)}))"
    )


def relation_bounded(database: ConstraintDatabase) -> bool:
    """Is S bounded?  Decided on the region sort: S is bounded iff every
    region contained in S is bounded (regions partition / cover S)."""
    extension = RegionExtension.build(database)
    return all(
        region.is_bounded()
        for region in extension.regions
        if extension.region_subset_of_spatial(region.index)
    )


def run_boolean(query: RegFormula, database: ConstraintDatabase) -> bool:
    """Evaluate a boolean topological query."""
    from repro.engine import QueryEngine

    return QueryEngine(database).truth(query)
