"""The GIS scenario of Figure 6: rivers, cities and chemicals.

The paper sketches a map with a river, cities on its bank, and asks — in
RegLFP — whether, following the river from its spring, a part polluted
with a first chemical is followed by a part polluted with a second one.
The paper assumes predicates ``spring(R)``, ``river(R)``, ``chem₁(R)``,
``chem₂(R)`` "with the obvious semantics"; here they are definable
macros over a multi-relation database:

* ``S``      — the river course (the spatial relation the region
  extension decomposes);
* ``Chem1``, ``Chem2`` — the polluted zones, extra constraint relations;
* ``spring(R)`` — the region contains the spring point (x = 0);
* ``river(R)`` — ``R ⊆ S``;
* ``chem_i(R)`` — R overlaps the zone ``Chem_i``.

The LFP program is the paper's, verbatim: starting at the spring it
walks the river region by region (pairs (R, R) in M), and records a pair
(R, Z) with R ≠ Z whenever a chem₂ region R is combined with a visited
chem₁ region Z — so the query is true iff the fixpoint contains an
unequal pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.errors import WorkloadError
from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.logic.ast import RegFormula
from repro.logic.parser import parse_query


@dataclass(frozen=True)
class RiverMap:
    """A one-dimensional river model.

    The river runs from the spring at 0 to ``length``; chemical zones are
    closed intervals on it.  ``gaps`` optionally removes open stretches
    from the river (a dried-up river is disconnected, so regions beyond a
    gap are not reachable from the spring).
    """

    length: int
    chem1_zones: tuple[tuple[Fraction, Fraction], ...] = ()
    chem2_zones: tuple[tuple[Fraction, Fraction], ...] = ()
    gaps: tuple[tuple[Fraction, Fraction], ...] = ()

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise WorkloadError("river length must be positive")
        for lo, hi in (
            self.chem1_zones + self.chem2_zones + self.gaps
        ):
            if not lo < hi:
                raise WorkloadError(f"bad zone [{lo}, {hi}]")


def _interval_union(
    intervals: tuple[tuple[Fraction, Fraction], ...],
    closed: bool = True,
) -> str:
    op_lo, op_hi = ("<=", "<=") if closed else ("<", "<")
    parts = [
        f"({lo} {op_lo} x0 & x0 {op_hi} {hi})" for lo, hi in intervals
    ]
    return " | ".join(parts) if parts else "x0 < x0"


def build_river_database(river: RiverMap) -> ConstraintDatabase:
    """The constraint database for a river map."""
    river_text = f"(0 <= x0 & x0 <= {river.length})"
    for lo, hi in river.gaps:
        river_text += f" & !({lo} < x0 & x0 < {hi})"
    relations = {
        "S": ConstraintRelation.make(
            ("x0",), parse_formula(river_text)
        ),
        "Chem1": ConstraintRelation.make(
            ("x0",), parse_formula(_interval_union(river.chem1_zones))
        ),
        "Chem2": ConstraintRelation.make(
            ("x0",), parse_formula(_interval_union(river.chem2_zones))
        ),
    }
    return ConstraintDatabase.make(relations)


def pollution_query() -> RegFormula:
    """The paper's RegLFP pollution program (Section 5), verbatim.

    ψ := ∃R₁ ∃R₂  R₁ ≠ R₂ ∧
         [LFP_{M,R,R'}( (spring(R) ∧ R = R')
           ∨ (∃Z ∃Z' M(Z,Z') ∧ river(R) ∧ adj(Z,R) ∧ R = R')
           ∨ (∃Z ∃Z' M(Z,Z') ∧ chem₁(Z) ∧ chem₂(R) ∧ R' = Z))](R₁, R₂)
    """
    text = (
        "exists R1, R2. R1 != R2 & "
        "[lfp M(R, Rp). "
        "  ((exists s. s = 0 & (s) in R) & R = Rp)"
        "| ((exists Z, Zp. M(Z, Zp) & adj(Z, R)) & sub(R, S) & R = Rp)"
        "| (exists Z, Zp. M(Z, Zp)"
        "   & (exists u. (u) in Z & Chem1(u))"
        "   & (exists v. (v) in R & Chem2(v))"
        "   & Rp = Z)"
        "](R1, R2)"
    )
    return parse_query(text)


def river_has_chemical_sequence(database: ConstraintDatabase) -> bool:
    """Run the pollution query against a river database.

    Uses the *refined* region extension: the decomposition of the river
    also cuts at the chemical-zone boundaries, so every region is
    homogeneous with respect to Chem1/Chem2 — the analogue of the
    paper's single-relation map encoding.
    """
    from repro.engine import QueryEngine

    return QueryEngine(database, decomposition="refined").truth(
        pollution_query()
    )
