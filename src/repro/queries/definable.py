"""RegFO-definability of the capture proof's auxiliary predicates.

The proof of Theorem 6.4 relies on several properties of regions being
definable inside the logic itself: being a single point (0-dimensional),
being bounded, and the lexicographic order on 0-dimensional regions.
This module writes those predicates as actual RegFO formulas, so the
definability claims can be checked against the engine's geometric
implementations (see ``tests/test_queries_definable.py``):

* ``singleton(R)`` — R contains exactly one point:
  ``∃x̄ (x̄ ∈ R ∧ ∀ȳ (ȳ ∈ R → ȳ = x̄))``;
* ``bounded(R)`` — some box contains R:
  ``∃b (b > 0 ∧ ∀x̄ (x̄ ∈ R → ⋀_i (−b < x_i < b)))``;
* ``lex_less(R₁, R₂)`` — the points of two singleton regions compare
  lexicographically.

(Full dimension comparison is also FO-definable by the results the
paper cites [21; 22; 2]; the three predicates here are the ones the
encoding construction actually uses.)
"""

from __future__ import annotations

from repro.logic.ast import RegFormula
from repro.logic.parser import parse_query


def _coords(prefix: str, arity: int) -> list[str]:
    return [f"{prefix}{i}" for i in range(arity)]


def singleton_region_formula(arity: int, region: str = "R") -> RegFormula:
    """``R`` contains exactly one point (is 0-dimensional)."""
    xs = _coords("u", arity)
    ys = _coords("v", arity)
    same = " & ".join(f"{y} = {x}" for x, y in zip(xs, ys))
    text = (
        f"exists {', '.join(xs)}. ({', '.join(xs)}) in {region} & "
        f"(forall {', '.join(ys)}. ({', '.join(ys)}) in {region} -> "
        f"({same}))"
    )
    return parse_query(text)


def bounded_region_formula(arity: int, region: str = "R") -> RegFormula:
    """``R`` fits inside some hypercube (the paper's boundedness)."""
    xs = _coords("w", arity)
    box = " & ".join(f"0 - b < {x} & {x} < b" for x in xs)
    text = (
        "exists b. b > 0 & "
        f"(forall {', '.join(xs)}. ({', '.join(xs)}) in {region} -> "
        f"({box}))"
    )
    return parse_query(text)


def lex_less_formula(
    arity: int, left: str = "R1", right: str = "R2"
) -> RegFormula:
    """The points of two singleton regions compare lex-smaller.

    For 0-dimensional regions this is exactly the order the proof of
    Theorem 6.4 puts on them.  (On non-singleton regions the formula
    quantifies over all point pairs and is not intended to be used.)
    """
    xs = _coords("p", arity)
    ys = _coords("q", arity)
    cases = []
    for i in range(arity):
        prefix = " & ".join(f"{xs[j]} = {ys[j]}" for j in range(i))
        case = f"{xs[i]} < {ys[i]}"
        cases.append(f"({prefix} & {case})" if prefix else f"({case})")
    lex = " | ".join(cases)
    text = (
        f"exists {', '.join(xs)}, {', '.join(ys)}. "
        f"({', '.join(xs)}) in {left} & ({', '.join(ys)}) in {right} & "
        f"({lex})"
    )
    return parse_query(text)
