"""Region reachability as a non-boolean query.

The connected component of a point: the union of all regions reachable
from the point's region through chains of adjacent in-S regions.  The
reachable *set of regions* is a RegLFP-definable unary fixed point; the
final union step is the "safe" output operator of Section 8 (regions
are semi-linear, so their union is again a linear relation) —
implemented via :func:`repro.extensions.nonboolean.union_of_regions`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.errors import EvaluationError
from repro.constraints.database import ConstraintDatabase
from repro.constraints.relation import ConstraintRelation
from repro.extensions.nonboolean import union_of_regions
from repro.logic.evaluator import Evaluator
from repro.logic.parser import parse_query
from repro.twosorted.structure import RegionExtension


def reachable_region_indices(
    extension: RegionExtension, start_index: int
) -> frozenset[int]:
    """Indices of in-S regions reachable from ``start_index``.

    Computed with the paper's Conn induction (fixed-point bodies cannot
    take region parameters — free(φ) must be exactly {M, X̄} — so
    reachability is the binary relation, applied with the start region
    as first argument):

        [LFP_{M,R,R'} (R = R' ∧ R ⊆ S) ∨
                      (∃Z M(R, Z) ∧ adj(Z, R') ∧ R' ⊆ S)](R₀, R)

    One induction serves all membership queries via memoisation.
    """
    evaluator = Evaluator(extension)
    formula = parse_query(
        "[lfp M(R, Rp). ((R = Rp & sub(R, S)) | "
        "(exists Z. M(R, Z) & adj(Z, Rp) & sub(Rp, S)))](R0, RTarget)"
    )
    reached = []
    for region in extension.regions:
        if evaluator.truth(
            formula, {"R0": start_index, "RTarget": region.index}
        ):
            reached.append(region.index)
    return frozenset(reached)


def connected_component(
    database: ConstraintDatabase,
    point: Sequence[Fraction],
    decomposition: str = "arrangement",
) -> ConstraintRelation:
    """The connected component of ``point`` within S, as a relation.

    Returns the empty relation when the point is not in S.
    """
    extension = RegionExtension.build(database, decomposition)
    relation = extension.spatial
    if len(point) != relation.arity:
        raise EvaluationError(
            f"point arity {len(point)} != spatial arity {relation.arity}"
        )
    if not relation.contains(point):
        return ConstraintRelation.empty(relation.variables)
    holders = extension.decomposition.regions_containing(point)
    if not holders:
        raise EvaluationError(
            "the decomposition does not cover the point; use the "
            "arrangement decomposition for component queries"
        )
    reached = reachable_region_indices(extension, holders[0].index)
    return union_of_regions(extension, sorted(reached)).simplify()
