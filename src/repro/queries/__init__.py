"""Reusable queries built on the region logics.

* :mod:`repro.queries.connectivity` — the paper's flagship example:
  topological connectivity of the spatial relation, in RegLFP (Section 5)
  and in RegTC (Section 7), plus a direct graph-based ground truth for
  cross-checking.
* :mod:`repro.queries.river` — the GIS scenario of Figure 6: follow a
  river from its spring and detect a chemical combination downstream.
* :mod:`repro.queries.topology` — small topological queries (emptiness,
  boundedness, dimension tests) expressed in RegFO.
"""

from repro.queries.connectivity import (
    connectivity_ground_truth,
    connectivity_query_lfp,
    connectivity_query_tc,
    is_connected,
)
from repro.queries.river import (
    RiverMap,
    build_river_database,
    pollution_query,
    river_has_chemical_sequence,
)
from repro.queries.topology import (
    contains_origin_query,
    has_interior_query,
    is_empty_query,
    relation_bounded,
)
from repro.queries.reachability import (
    connected_component,
    reachable_region_indices,
)
from repro.queries.definable import (
    bounded_region_formula,
    lex_less_formula,
    singleton_region_formula,
)

__all__ = [
    "connectivity_ground_truth",
    "connectivity_query_lfp",
    "connectivity_query_tc",
    "is_connected",
    "RiverMap",
    "build_river_database",
    "pollution_query",
    "river_has_chemical_sequence",
    "contains_origin_query",
    "has_interior_query",
    "is_empty_query",
    "relation_bounded",
    "connected_component",
    "reachable_region_indices",
    "bounded_region_formula",
    "lex_less_formula",
    "singleton_region_formula",
]
