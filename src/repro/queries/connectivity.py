"""Topological connectivity of the spatial relation (Section 5).

The paper's Conn query: S is connected iff for every two points of S the
regions containing them can be linked by a chain of adjacent regions all
contained in S.  Three implementations are provided:

* :func:`connectivity_query_lfp` — the paper's RegLFP sentence, verbatim;
* :func:`connectivity_query_tc` — the RegTC variant (Section 7);
* :func:`connectivity_ground_truth` — a direct union-find over the
  decomposition's adjacency graph, used by the tests and the benchmarks
  to validate the logical answers.

For the arrangement decomposition the logical queries and the ground
truth agree on every database: regions inside S partition S, and two
in-S regions touching each other are exactly the adjacent ones.
"""

from __future__ import annotations

from repro.constraints.database import ConstraintDatabase
from repro.logic.ast import RegFormula
from repro.logic.parser import parse_query
from repro.twosorted.structure import RegionExtension


def _point_vars(arity: int, suffix: str) -> list[str]:
    return [f"x{i}{suffix}" for i in range(arity)]


def connectivity_query_lfp(arity: int) -> RegFormula:
    """The paper's Conn sentence for a d-ary spatial relation.

    Conn := ∀x̄ ∀ȳ (Sx̄ ∧ Sȳ → ∃R_x ∃R_y  x̄ ∈ R_x ∧ ȳ ∈ R_y ∧
        [LFP_{M,R,R'} ((R = R' ∧ R ⊆ S) ∨
                       (∃Z M(R,Z) ∧ adj(Z,R') ∧ R' ⊆ S))](R_x, R_y))
    """
    xs = _point_vars(arity, "a")
    ys = _point_vars(arity, "b")
    all_vars = ", ".join(xs + ys)
    text = (
        f"forall {all_vars}. (S({', '.join(xs)}) & S({', '.join(ys)})) -> "
        f"(exists RX, RY. ({', '.join(xs)}) in RX & "
        f"({', '.join(ys)}) in RY & "
        "[lfp M(R, Rp). ((R = Rp & sub(R, S)) | "
        "(exists Z. M(R, Z) & adj(Z, Rp) & sub(Rp, S)))](RX, RY))"
    )
    return parse_query(text)


def connectivity_query_tc(arity: int) -> RegFormula:
    """Connectivity via the transitive closure operator (Section 7)."""
    xs = _point_vars(arity, "a")
    ys = _point_vars(arity, "b")
    all_vars = ", ".join(xs + ys)
    text = (
        f"forall {all_vars}. (S({', '.join(xs)}) & S({', '.join(ys)})) -> "
        f"(exists RX, RY. ({', '.join(xs)}) in RX & "
        f"({', '.join(ys)}) in RY & sub(RX, S) & sub(RY, S) & "
        "(RX = RY | [tc (R) -> (Rp). adj(R, Rp) & sub(R, S) & "
        "sub(Rp, S)](RX; RY)))"
    )
    return parse_query(text)


def is_connected(
    database: ConstraintDatabase, method: str = "lfp",
    decomposition: str = "arrangement",
) -> bool:
    """Evaluate connectivity of the database's spatial relation.

    ``method`` is "lfp", "tc" or "ground" (the graph-based oracle).
    """
    from repro.engine import QueryEngine

    arity = database.relation("S").arity
    if method == "lfp":
        return QueryEngine(database, decomposition).truth(
            connectivity_query_lfp(arity)
        )
    if method == "tc":
        return QueryEngine(database, decomposition).truth(
            connectivity_query_tc(arity)
        )
    if method == "ground":
        extension = RegionExtension.build(database, decomposition)
        return connectivity_ground_truth(extension)
    raise ValueError(f"unknown connectivity method {method!r}")


def connectivity_ground_truth(extension: RegionExtension) -> bool:
    """Union-find over in-S regions linked by adjacency.

    S is connected iff the subgraph of regions contained in S, with edges
    between adjacent regions, has at most one connected component (for
    the arrangement decomposition, whose in-S regions partition S).
    """
    in_s = [
        region.index
        for region in extension.regions
        if extension.region_subset_of_spatial(region.index)
    ]
    if not in_s:
        return True
    parent = {index: index for index in in_s}

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for left in in_s:
        for right in in_s:
            if left < right and extension.adjacent(left, right):
                parent[find(left)] = find(right)
    roots = {find(index) for index in in_s}
    return len(roots) == 1
