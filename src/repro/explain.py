"""EXPLAIN / EXPLAIN ANALYZE: annotated query plan trees.

``repro explain`` (and :meth:`repro.engine.QueryEngine.explain`) compile
a RegFO/RegLFP/RegTC query into a :class:`PlanNode` tree that mirrors
the formula's quantifier/connective structure, annotated with

* the language tier (:func:`repro.logic.ast.classify_language`),
* the database relations and arrangements each node needs, and
* the *predicted* cache/store outcome of every expensive artifact —
  region extension, arrangement, whole-query answer — resolved by
  fingerprint against the engine cache and the disk store **without
  perturbing either** (no counters move, no LRU entry is touched).

With ``analyze=True`` the query is executed and every node carries its
*measured* cost: wall time (inclusive and self), evaluator calls and
memo hits, and per-node deltas of the hot counters (LP solves split
filtered/exact, feasibility-cache hits, DFS nodes, faces, store
traffic).  Per-node attribution is exact for counters: the synthetic
``setup`` node carries the extension/arrangement construction, the
formula nodes carry evaluation, and a trailing ``other`` node absorbs
whatever bookkeeping remains, so the per-node ``self`` values sum to the
run's totals by construction.

Fixpoint nodes additionally carry their per-stage semi-naive deltas
(``fixpoint.stage`` journal events), and the full structured record of
the run — span tree plus journal events — is available on the returned
:class:`ExplainResult` for ``--journal`` streaming and replay.

Datalog programs get the same treatment through
:func:`explain_datalog`: one plan node per stratum and rule, per-stage
delta disjunct counts from the ``datalog.stage`` journal events.

Costs are attributed per *formula object* (``id``-keyed): the evaluator
memoises structurally, so two structurally equal but distinct subtrees
share evaluation work — the node that evaluated first pays, the second
shows memo hits.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Iterator

from repro.logic import ast
from repro.logic.ast import classify_language
from repro.obs.journal import JOURNAL
from repro.obs.metrics import get_registry
from repro.obs.tracing import TRACER, Span

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.engine import QueryEngine

#: Counters attributed per plan node during EXPLAIN ANALYZE.  Exactly
#: the hot-path telemetry the profile command reports: LP activity,
#: arrangement DFS work, disk-store traffic and evaluator progress.
PROFILE_COUNTERS = (
    "lp.solves",
    "lp.cache_hits",
    "lp.filter_hits",
    "lp.filter_fallbacks",
    "arrangement.dfs_nodes",
    "arrangement.faces",
    "evaluator.evaluations",
    "evaluator.memo_hits",
    "evaluator.fixpoint_stages",
    "store.hits",
    "store.misses",
)


class PlanNode:
    """One node of an EXPLAIN plan tree."""

    __slots__ = ("op", "label", "detail", "children", "cost")

    def __init__(
        self,
        op: str,
        label: str,
        detail: dict[str, Any] | None = None,
    ) -> None:
        #: Node kind — the AST class name, or a synthetic ``query`` /
        #: ``setup`` / ``other`` / ``stratum`` / ``rule`` marker.
        self.op = op
        #: Short human rendering ("∃x : ℝ", "lfp M(R, Rp)", …).
        self.label = label
        #: Static annotations (relations needed, predictions, arity…).
        self.detail: dict[str, Any] = detail or {}
        self.children: list[PlanNode] = []
        #: Measured cost, attached by EXPLAIN ANALYZE (``None`` before).
        self.cost: dict[str, Any] | None = None

    def walk(self) -> Iterator["PlanNode"]:
        """This node and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        node: dict[str, Any] = {"op": self.op, "label": self.label}
        if self.detail:
            node["detail"] = dict(self.detail)
        if self.cost is not None:
            node["cost"] = self.cost
        node["children"] = [child.to_dict() for child in self.children]
        return node

    def format(self, indent: int = 0) -> str:
        """Human-readable plan rendering (the ``repro explain`` output)."""
        pad = "  " * indent
        parts = [f"{pad}{self.label}"]
        # Optimizer decisions render as their own trailing lines (see
        # below); everything else stays in the bracketed detail list.
        detail = {
            key: value
            for key, value in self.detail.items()
            if key not in ("chosen", "because")
        }
        if detail:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(detail.items())
            )
            parts.append(f"  [{rendered}]")
        if self.cost is not None:
            bits = [f"wall_ms={self.cost['wall_ms']}"]
            if self.cost.get("self_wall_ms") != self.cost.get("wall_ms"):
                bits.append(f"self_ms={self.cost['self_wall_ms']}")
            calls = self.cost.get("calls", 0)
            if calls > 1:
                bits.append(f"calls={calls}")
            memo = self.cost.get("memo_hits", 0)
            if memo:
                bits.append(f"memo_hits={memo}")
            for name, value in self.cost.get("self_counters", {}).items():
                if value:
                    bits.append(f"{name}={value}")
            stages = self.cost.get("stages")
            if stages:
                bits.append(f"stages={len(stages)}")
            parts.append("  (" + " ".join(bits) + ")")
        lines = ["".join(parts)]
        if "chosen" in self.detail:
            lines.append(f"{pad}  chosen: {self.detail['chosen']}")
        if "because" in self.detail:
            lines.append(f"{pad}  because: {self.detail['because']}")
        lines.extend(child.format(indent + 1) for child in self.children)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanNode({self.op!r}, {self.label!r})"


class NodeProfiler:
    """Attributes wall time and counter deltas to evaluator nodes.

    Installed as ``Evaluator.profiler`` during EXPLAIN ANALYZE; the
    evaluator brackets every non-memoised dispatch with :meth:`enter` /
    :meth:`exit` and reports memo hits.  Nodes are keyed by formula
    object identity (the plan tree keeps the formula alive, so ids are
    stable), which avoids double-charging structurally equal subtrees
    that share one memoised evaluation.

    ``self`` (exclusive) numbers subtract everything attributed to
    nested frames, so summing ``self`` over all nodes reproduces the
    totals of the bracketed region exactly (for counters) or up to
    clock granularity (for wall time).
    """

    def __init__(
        self,
        counters: tuple[str, ...] = PROFILE_COUNTERS,
        registry=None,
    ) -> None:
        self.counters = tuple(counters)
        self._registry = registry if registry is not None else get_registry()
        # Frame: [node_id, start, snapshot, child_wall, child_counts]
        self._stack: list[list] = []
        #: ``id(formula) -> stats dict`` accumulated across calls.
        self.stats: dict[int, dict[str, Any]] = {}

    def _snap(self) -> list[int]:
        registry = self._registry
        return [registry.get(name) for name in self.counters]

    def _node(self, formula: ast.RegFormula) -> dict[str, Any]:
        node = self.stats.get(id(formula))
        if node is None:
            zero = [0] * len(self.counters)
            node = {
                "calls": 0,
                "memo_hits": 0,
                "wall_s": 0.0,
                "self_wall_s": 0.0,
                "counters": list(zero),
                "self_counters": list(zero),
            }
            self.stats[id(formula)] = node
        return node

    def enter(self, formula: ast.RegFormula) -> None:
        self._stack.append(
            [
                id(formula),
                time.perf_counter(),
                self._snap(),
                0.0,
                [0] * len(self.counters),
            ]
        )

    def exit(self, formula: ast.RegFormula) -> None:
        frame = self._stack.pop()
        wall = time.perf_counter() - frame[1]
        after = self._snap()
        inclusive = [b - a for a, b in zip(frame[2], after)]
        node = self._node(formula)
        node["calls"] += 1
        node["wall_s"] += wall
        node["self_wall_s"] += wall - frame[3]
        node["counters"] = [
            c + d for c, d in zip(node["counters"], inclusive)
        ]
        node["self_counters"] = [
            c + d - k
            for c, d, k in zip(node["self_counters"], inclusive, frame[4])
        ]
        if self._stack:
            parent = self._stack[-1]
            parent[3] += wall
            parent[4] = [c + d for c, d in zip(parent[4], inclusive)]

    def memo_hit(self, formula: ast.RegFormula) -> None:
        self._node(formula)["memo_hits"] += 1

    def observe(self, formula: ast.RegFormula, result) -> None:
        """Record the observed cardinality of one evaluated result.

        Called by the evaluator after each non-memoised dispatch; the
        accumulated ``sizes``/``observations`` feed the optimizer's
        persisted statistics (mean representation size per node).
        """
        size = getattr(result, "representation_size", None)
        if not callable(size):
            return
        node = self._node(formula)
        node["sizes"] = node.get("sizes", 0) + size()
        node["observations"] = node.get("observations", 0) + 1

    def cost_of(self, formula: ast.RegFormula) -> dict[str, Any] | None:
        """The JSON-ready cost block of one formula node (or ``None``)."""
        node = self.stats.get(id(formula))
        if node is None:
            return None
        return _cost_block(
            node["wall_s"],
            node["self_wall_s"],
            dict(zip(self.counters, node["counters"])),
            dict(zip(self.counters, node["self_counters"])),
            calls=node["calls"],
            memo_hits=node["memo_hits"],
        )


def _cost_block(
    wall_s: float,
    self_wall_s: float,
    counters: dict[str, int],
    self_counters: dict[str, int],
    calls: int = 1,
    memo_hits: int = 0,
) -> dict[str, Any]:
    return {
        "calls": calls,
        "memo_hits": memo_hits,
        "wall_ms": round(wall_s * 1000.0, 3),
        "self_wall_ms": round(self_wall_s * 1000.0, 3),
        "counters": {k: v for k, v in counters.items() if v},
        "self_counters": {k: v for k, v in self_counters.items() if v},
    }


def plan_cost_totals(plan: dict) -> dict[str, Any]:
    """Sum per-node *self* costs over a serialized plan tree.

    Operates on the :meth:`PlanNode.to_dict` shape — the form stored in
    slow-query log records — and returns ``{"self_wall_ms",
    "self_counters"}`` aggregates over every node.  By the attribution
    contract in the module docstring (setup node + formula nodes +
    trailing ``other`` node) the counter sums equal the run's
    ``totals`` counters *exactly*, and the wall sum matches
    ``totals["wall_ms"]`` up to per-node rounding.  The slow-query-log
    tests assert this invariant on every captured record.
    """
    wall = 0.0
    counters: dict[str, int] = {}
    pending = [plan]
    while pending:
        node = pending.pop()
        cost = node.get("cost")
        if cost:
            wall += float(cost.get("self_wall_ms", 0.0))
            for name, value in (cost.get("self_counters") or {}).items():
                counters[name] = counters.get(name, 0) + int(value)
        pending.extend(node.get("children", ()))
    return {
        "self_wall_ms": round(wall, 3),
        "self_counters": counters,
    }


# ----------------------------------------------------------------------
# Plan compilation (the static half of EXPLAIN)
# ----------------------------------------------------------------------
def _node_label(formula: ast.RegFormula) -> str:
    if isinstance(formula, ast.ExistsElem):
        return f"∃{formula.variable} : ℝ"
    if isinstance(formula, ast.ForallElem):
        return f"∀{formula.variable} : ℝ"
    if isinstance(formula, ast.ExistsRegion):
        return f"∃{formula.variable} : Reg"
    if isinstance(formula, ast.ForallRegion):
        return f"∀{formula.variable} : Reg"
    if isinstance(formula, ast.RNot):
        return "¬"
    if isinstance(formula, ast.RAnd):
        return f"∧ ({len(formula.operands)} operands)"
    if isinstance(formula, ast.ROr):
        return f"∨ ({len(formula.operands)} operands)"
    if isinstance(formula, ast.Fixpoint):
        head = f"{formula.set_var}({', '.join(formula.bound_vars)})"
        return f"{formula.kind.value} {head}"
    if isinstance(formula, ast.TC):
        return f"tc ({', '.join(formula.left_vars)}) → " \
               f"({', '.join(formula.right_vars)})"
    if isinstance(formula, ast.DTC):
        return f"dtc ({', '.join(formula.left_vars)}) → " \
               f"({', '.join(formula.right_vars)})"
    if isinstance(formula, ast.RBit):
        return f"rbit {formula.element_var}"
    return str(formula)


def _node_detail(formula: ast.RegFormula) -> dict[str, Any]:
    detail: dict[str, Any] = {}
    if isinstance(formula, ast.RelationAtom):
        detail["relation"] = formula.name
    elif isinstance(formula, ast.SubsetAtom):
        detail["relation"] = formula.relation_name
    elif isinstance(formula, ast.Fixpoint):
        detail["kind"] = formula.kind.value
        detail["arity"] = len(formula.bound_vars)
        detail["operator"] = f"{formula.kind.value} {formula.set_var}"
    elif isinstance(formula, (ast.TC, ast.DTC)):
        detail["arity"] = len(formula.left_vars)
    return detail


def _children_of(formula: ast.RegFormula) -> tuple[ast.RegFormula, ...]:
    if isinstance(formula, (ast.RAnd, ast.ROr)):
        return formula.operands
    if isinstance(formula, ast.RNot):
        return (formula.operand,)
    if isinstance(
        formula,
        (
            ast.ExistsElem,
            ast.ForallElem,
            ast.ExistsRegion,
            ast.ForallRegion,
            ast.Fixpoint,
            ast.TC,
            ast.DTC,
            ast.RBit,
        ),
    ):
        return (formula.body,)
    return ()


def _compile_formula(
    formula: ast.RegFormula,
    index: dict[int, PlanNode],
) -> PlanNode:
    node = PlanNode(
        type(formula).__name__,
        _node_label(formula),
        _node_detail(formula),
    )
    index.setdefault(id(formula), node)
    for child in _children_of(formula):
        node.children.append(_compile_formula(child, index))
    return node


def _relations_needed(formula: ast.RegFormula) -> list[str]:
    names: set[str] = set()

    def walk(node: ast.RegFormula) -> None:
        if isinstance(node, ast.RelationAtom):
            names.add(node.name)
        elif isinstance(node, ast.SubsetAtom):
            names.add(node.relation_name)
        for child in _children_of(node):
            walk(child)

    walk(formula)
    return sorted(names)


def _predict_setup(engine: "QueryEngine") -> dict[str, str]:
    """Predicted source of the region extension and its arrangement.

    Resolution mirrors the engine's own lookup order — engine memory,
    engine cache, disk store, fresh build — but uses only non-mutating
    peeks, so running the query afterwards sees exactly the state the
    prediction saw.
    """
    prediction: dict[str, str] = {}
    if engine._extension is not None:
        prediction["extension"] = "memory"
    elif engine.cache.peek_extension(
        engine.database, engine.decomposition, engine.spatial_name
    ):
        prediction["extension"] = "engine-cache"
    else:
        prediction["extension"] = "build"
    try:
        relation = engine.database.relation(engine.spatial_name)
    except Exception:
        prediction["arrangement"] = "n/a"
        return prediction
    if prediction["extension"] != "build":
        prediction["arrangement"] = prediction["extension"]
        return prediction
    if engine.cache.peek_arrangement(relation):
        prediction["arrangement"] = "engine-cache"
        return prediction
    disk = engine._store()
    if disk is not None and engine.decomposition == "arrangement":
        from repro import store as store_pkg
        from repro.arrangement.hyperplanes import hyperplanes_of_relation

        planes = hyperplanes_of_relation(relation)
        key = store_pkg.arrangement_key(planes, relation.arity, relation)
        if disk.entry_path("arrangement", key).exists():
            prediction["arrangement"] = "store"
            return prediction
    prediction["arrangement"] = "build"
    return prediction


def _predict_result(engine: "QueryEngine", key_text: str) -> str:
    """Predicted source of the whole-query answer relation."""
    from repro import store as store_pkg

    disk = engine._store()
    if disk is None:
        return "compute"
    key = store_pkg.query_result_key(
        engine.fingerprint,
        engine.decomposition,
        engine.spatial_name,
        key_text,
    )
    if key in engine._results:
        return "memory"
    if disk.entry_path("relation", key).exists():
        return "store"
    return "compute"


def compile_plan(
    engine: "QueryEngine",
    formula: ast.RegFormula,
    result_key_text: str | None = None,
) -> tuple[PlanNode, dict[int, PlanNode]]:
    """The static plan tree plus the ``id(formula) -> PlanNode`` index.

    The root is a synthetic ``query`` node with two children: a
    ``setup`` node standing for the Theorem-3.1 construction (region
    extension + arrangement, with predicted sources) and the formula's
    own operator tree.  ``result_key_text`` is the store key text the
    engine would use for this query's answer (the original query text,
    mode-marked — see ``QueryEngine.result_key_text``); it defaults to
    ``str(formula)``, which is only correct for unoptimized plans.
    """
    language = classify_language(formula)
    index: dict[int, PlanNode] = {}
    root = PlanNode(
        "query",
        f"Query [{language}]",
        {
            "language": language,
            "relations": _relations_needed(formula),
            "result": _predict_result(
                engine,
                result_key_text
                if result_key_text is not None
                else str(formula),
            ),
        },
    )
    setup = PlanNode(
        "setup",
        "Setup: region extension",
        {
            "decomposition": engine.decomposition,
            "spatial": engine.spatial_name,
            **_predict_setup(engine),
        },
    )
    root.children.append(setup)
    root.children.append(_compile_formula(formula, index))
    return root, index


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
class ExplainResult:
    """Outcome of EXPLAIN (ANALYZE): the plan plus the run's record."""

    def __init__(
        self,
        query: str,
        language: str,
        plan: PlanNode,
        analyzed: bool,
        totals: dict[str, Any] | None = None,
        answer=None,
        trace: Span | None = None,
        events: list[dict] | None = None,
    ) -> None:
        #: Structural rendering of the query (or the datalog program).
        self.query = query
        self.language = language
        self.plan = plan
        self.analyzed = analyzed
        #: Run totals (``wall_ms`` + counter deltas); ``None`` unless
        #: analyzed.  The per-node ``self`` values sum to these exactly
        #: for counters (the ``other`` node absorbs any remainder).
        self.totals = totals
        #: The answer relation (or datalog outcome) of the analyzed run.
        self.answer = answer
        #: The live span tree of the analyzed run.
        self.trace = trace
        #: The journal events of the analyzed run.
        self.events = events

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "query": self.query,
            "language": self.language,
            "analyzed": self.analyzed,
            "plan": self.plan.to_dict(),
        }
        if self.totals is not None:
            payload["totals"] = self.totals
        return payload

    def format(self) -> str:
        header = [f"EXPLAIN{' ANALYZE' if self.analyzed else ''}"]
        header.append(f"query: {self.query}")
        lines = header + [self.plan.format()]
        if self.totals is not None:
            counters = ", ".join(
                f"{name}={value}"
                for name, value in self.totals["counters"].items()
                if value
            )
            lines.append(
                f"totals: wall_ms={self.totals['wall_ms']}"
                + (f" {counters}" if counters else "")
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExplainResult({self.language}, analyzed={self.analyzed})"
        )


def _snapshot(registry) -> dict[str, int]:
    return {name: registry.get(name) for name in PROFILE_COUNTERS}


def _delta(
    before: dict[str, int], after: dict[str, int]
) -> dict[str, int]:
    return {name: after[name] - before[name] for name in before}


def _attach_stage_events(
    index: dict[int, PlanNode], events: list[dict]
) -> None:
    """Attach ``fixpoint.stage`` journal events to their fixpoint nodes."""
    by_operator: dict[str, list[dict]] = {}
    for event in events:
        if event["type"] == "fixpoint.stage":
            by_operator.setdefault(event["operator"], []).append(
                {
                    "stage": event["stage"],
                    "size": event["size"],
                    "delta": event["delta"],
                }
            )
    if not by_operator:
        return
    for node in index.values():
        operator = node.detail.get("operator")
        if operator in by_operator:
            if node.cost is None:
                node.cost = _cost_block(0.0, 0.0, {}, {}, calls=0)
            node.cost["stages"] = by_operator[operator]


def _attach_optimizer_decisions(
    engine: "QueryEngine",
    plan: PlanNode,
    index: dict[int, PlanNode],
    outcome,
) -> None:
    """Surface ``chosen``/``because`` annotations on the plan tree.

    Rewrite decisions land on the plan node of the rewritten formula
    node they produced (the root when that node was itself replaced by
    a later rewrite); the adaptive knob choices become one synthetic
    ``optimizer`` subtree so ``repro explain`` and ``/v1/explain`` show
    the full decision record.
    """
    for decision in outcome.decisions:
        node = index.get(id(decision.node), plan)
        if "chosen" in node.detail:
            node.detail["chosen"] += f"; {decision.chosen}"
            node.detail["because"] += f"; {decision.because}"
        else:
            node.detail["chosen"] = decision.chosen
            node.detail["because"] = decision.because
    knobs = PlanNode(
        "optimizer",
        "Optimizer: adaptive knobs",
        {
            "decisions": len(outcome.decisions),
            "stats_hits": outcome.model.stats_hits,
        },
    )
    for knob in engine.knob_decisions():
        knobs.children.append(
            PlanNode(
                "knob",
                f"knob {knob.name}",
                {"chosen": knob.chosen, "because": knob.because},
            )
        )
    plan.children.append(knobs)


def explain_query(
    engine: "QueryEngine",
    formula: ast.RegFormula,
    analyze: bool = False,
) -> ExplainResult:
    """EXPLAIN (ANALYZE) one region-logic query against an engine.

    The static half never touches engine state; the analyzed half runs
    the query with the tracer and journal recording (starting its own
    collection only when none is active) and a :class:`NodeProfiler`
    installed on the engine's evaluator.
    """
    # The engine's (memoised) cost-based rewrite: EXPLAIN must compile
    # the exact plan objects evaluation will run so profiler frames and
    # plan nodes line up; ``outcome`` carries the recorded decisions.
    planned, outcome = engine.plan(formula)
    language = classify_language(planned)
    plan, index = compile_plan(
        engine,
        planned,
        result_key_text=engine.result_key_text(
            str(formula), outcome is not None
        ),
    )
    plan.detail["optimizer"] = "on" if outcome is not None else "off"
    if outcome is not None:
        _attach_optimizer_decisions(engine, plan, index, outcome)
    if not analyze:
        return ExplainResult(str(formula), language, plan, False)

    registry = get_registry()
    own_journal = not JOURNAL.enabled
    if own_journal:
        JOURNAL.start()
    own_trace = not TRACER.enabled
    if own_trace:
        TRACER.start("explain")
    start = time.perf_counter()
    before = _snapshot(registry)
    profiler = NodeProfiler()
    trace_root: Span | None = None
    try:
        setup_start = time.perf_counter()
        setup_before = _snapshot(registry)
        engine.extension  # force the Theorem-3.1 construction
        setup_wall = time.perf_counter() - setup_start
        setup_delta = _delta(setup_before, _snapshot(registry))

        evaluator = engine.evaluator
        previous = evaluator.profiler
        evaluator.profiler = profiler
        try:
            answer = engine.evaluate(formula)
        finally:
            evaluator.profiler = previous
    finally:
        if own_trace:
            trace_root = TRACER.stop()
        events = JOURNAL.stop() if own_journal else JOURNAL.events()
    wall = time.perf_counter() - start
    total_delta = _delta(before, _snapshot(registry))

    # Attach measured costs: setup, then every evaluated formula node.
    setup_node, formula_node = plan.children[0], plan.children[1]
    setup_node.cost = _cost_block(
        setup_wall, setup_wall, dict(setup_delta), dict(setup_delta)
    )
    attributed = dict(setup_delta)
    attributed_wall = setup_wall
    for node_id, plan_node in index.items():
        cost = None
        stats = profiler.stats.get(node_id)
        if stats is not None:
            cost = _cost_block(
                stats["wall_s"],
                stats["self_wall_s"],
                dict(zip(profiler.counters, stats["counters"])),
                dict(zip(profiler.counters, stats["self_counters"])),
                calls=stats["calls"],
                memo_hits=stats["memo_hits"],
            )
            for name, value in zip(
                profiler.counters, stats["self_counters"]
            ):
                attributed[name] = attributed.get(name, 0) + value
            attributed_wall += stats["self_wall_s"]
        plan_node.cost = cost
    _attach_stage_events(index, events)

    # Whatever the frames did not bracket (parsing, answer caching,
    # result post-processing) lands on a synthetic trailing node, so
    # per-node self values sum to the totals exactly.
    remainder = {
        name: total_delta[name] - attributed.get(name, 0)
        for name in total_delta
    }
    other_wall = max(0.0, wall - attributed_wall)
    other = PlanNode(
        "other", "Other: bookkeeping / answer post-processing"
    )
    other.cost = _cost_block(
        other_wall, other_wall, dict(remainder), dict(remainder)
    )
    plan.children.append(other)
    plan.cost = _cost_block(wall, 0.0, dict(total_delta), {})

    totals = {
        "wall_ms": round(wall * 1000.0, 3),
        "counters": {k: v for k, v in total_delta.items() if v},
    }
    return ExplainResult(
        str(formula),
        language,
        plan,
        True,
        totals=totals,
        answer=answer,
        trace=trace_root,
        events=events,
    )


# ----------------------------------------------------------------------
# Datalog programs
# ----------------------------------------------------------------------
def _ir_plan_node(ir_node, index: dict[int, PlanNode]) -> PlanNode:
    """Mirror one IR subtree as plan nodes, indexed by IR object id.

    The profiler keys its frames by node object identity, so rendering
    the *same* node objects the executor runs lets measured costs attach
    to the exact plan lines the user sees.
    """
    plan = PlanNode(f"ir.{ir_node.op}", ir_node.describe())
    index[id(ir_node)] = plan
    for child in ir_node.children:
        plan.children.append(_ir_plan_node(child, index))
    return plan


def explain_datalog(
    program,
    database,
    analyze: bool = False,
    strategy: str = "seminaive",
    max_stages: int = 25,
    executor: str | None = None,
    optimizer: str | None = None,
) -> ExplainResult:
    """EXPLAIN (ANALYZE) a spatial datalog program.

    Under the interpreted executor the plan is one node per stratum
    with one child per rule.  Under the compiled executor (the
    semi-naive default) each stratum instead shows its relational-
    algebra IR plans — the stage-1 combiner, the delta-bound stage-≥2
    combiner and the accumulate combiner per predicate — rendered from
    :func:`repro.datalog.compile.compile_program`.  ANALYZE runs the
    program under the journal and, when compiled, installs a
    :class:`NodeProfiler` on the IR executor so every plan node carries
    measured wall time and counter deltas whose ``self`` components sum
    to the run totals exactly (the PR-5 invariant); per-stage delta
    disjunct counts (``datalog.stage`` events) attach to the strata.
    """
    from repro.config import resolve_executor, resolve_optimizer

    resolved = (
        resolve_executor(executor)
        if strategy == "seminaive"
        else "interpreted"
    )
    # Reorder rule bodies up front (idempotent — evaluate_program
    # re-applies the same deterministic rewrite) so the compiled plans
    # below mirror exactly what executes.
    optimizer_mode = resolve_optimizer(optimizer)
    if optimizer_mode == "on":
        from repro.optimizer.rewrite import order_program

        program = order_program(program)
    strata = program.strata()
    compiled_strata = None
    ir_index: dict[int, PlanNode] = {}
    root = PlanNode(
        "program",
        f"Program [{strategy}/{resolved}]",
        {
            "strategy": strategy,
            "executor": resolved,
            "optimizer": optimizer_mode,
            "strata": len(strata),
            "rules": len(program.rules),
        },
    )
    if resolved == "compiled":
        from repro.datalog.compile import compile_program

        compiled_strata = compile_program(program, database)
    stratum_nodes: list[PlanNode] = []
    for position, stratum in enumerate(strata):
        node = PlanNode(
            "stratum",
            f"Stratum {position}: {', '.join(stratum)}",
            {"predicates": list(stratum)},
        )
        if compiled_strata is not None:
            compiled = compiled_strata[position]
            for predicate in stratum:
                for role, plan_ir in (
                    ("stage 1", compiled.stage_one[predicate]),
                    ("stage ≥2", compiled.stage_next[predicate]),
                    ("accumulate", compiled.accumulate[predicate]),
                ):
                    wrapper = PlanNode(
                        "plan",
                        f"{predicate} [{role}]",
                        {"predicate": predicate, "role": role},
                    )
                    wrapper.children.append(
                        _ir_plan_node(plan_ir, ir_index)
                    )
                    node.children.append(wrapper)
        else:
            for rule in program.rules:
                if rule.head.predicate in stratum:
                    node.children.append(PlanNode("rule", str(rule)))
        stratum_nodes.append(node)
        root.children.append(node)
    if not analyze:
        return ExplainResult(str(program), "datalog", root, False)

    from repro.datalog.engine import evaluate_program

    registry = get_registry()
    own_journal = not JOURNAL.enabled
    if own_journal:
        JOURNAL.start()
    start = time.perf_counter()
    before = _snapshot(registry)
    profiler = NodeProfiler() if compiled_strata is not None else None
    try:
        if compiled_strata is not None:
            from repro.datalog.compile import evaluate_program_compiled

            outcome = evaluate_program_compiled(
                program,
                database,
                max_stages=max_stages,
                profiler=profiler,
                compiled_strata=compiled_strata,
            )
        else:
            outcome = evaluate_program(
                program,
                database,
                max_stages=max_stages,
                strategy=strategy,
                executor=resolved,
            )
    finally:
        events = JOURNAL.stop() if own_journal else JOURNAL.events()
    wall = time.perf_counter() - start
    total_delta = _delta(before, _snapshot(registry))

    attributed: dict[str, int] = {}
    attributed_wall = 0.0
    if profiler is not None:
        for ir_id, plan_node in ir_index.items():
            stats = profiler.stats.get(ir_id)
            if stats is None:
                continue
            plan_node.cost = _cost_block(
                stats["wall_s"],
                stats["self_wall_s"],
                dict(zip(profiler.counters, stats["counters"])),
                dict(zip(profiler.counters, stats["self_counters"])),
                calls=stats["calls"],
                memo_hits=stats["memo_hits"],
            )
            for name, value in zip(
                profiler.counters, stats["self_counters"]
            ):
                attributed[name] = attributed.get(name, 0) + value
            attributed_wall += stats["self_wall_s"]
        # Whatever the executor frames did not bracket (stratum
        # compilation, delta bookkeeping, convergence checks) lands on
        # a synthetic node, so per-node self values sum to the run
        # totals exactly.
        remainder = {
            name: total_delta.get(name, 0) - attributed.get(name, 0)
            for name in set(total_delta) | set(attributed)
        }
        other = PlanNode(
            "other", "Other: compilation / delta bookkeeping"
        )
        other.cost = _cost_block(
            max(0.0, wall - attributed_wall),
            max(0.0, wall - attributed_wall),
            dict(remainder),
            dict(remainder),
        )
        root.children.append(other)

    stage_events = [e for e in events if e["type"] == "datalog.stage"]
    for node in stratum_nodes:
        predicates = set(node.detail["predicates"])
        stages = [
            {
                "stage": event["stage"],
                "deltas": {
                    predicate: count
                    for predicate, count in event["deltas"].items()
                    if predicate in predicates
                },
            }
            for event in stage_events
            if predicates & set(event["deltas"])
        ]
        if stages:
            node.cost = _cost_block(0.0, 0.0, {}, {}, calls=0)
            node.cost["stages"] = stages
    # With a profiler the children (IR nodes + Other) carry all the
    # self costs; charging the root again would break the sums-to-
    # totals invariant.
    root_self = wall if profiler is None else 0.0
    root.cost = _cost_block(wall, root_self, dict(total_delta), {})
    totals = {
        "wall_ms": round(wall * 1000.0, 3),
        "stages": outcome.stages,
        "converged": outcome.converged,
        "counters": {k: v for k, v in total_delta.items() if v},
    }
    return ExplainResult(
        str(program),
        "datalog",
        root,
        True,
        totals=totals,
        answer=outcome,
        events=events,
    )
