"""Certified floating-point LP filter with exact rational fallback.

The exact two-phase simplex of :mod:`repro.geometry.simplex` is the cost
centre of the whole reproduction: every sign-vector DFS node, region
extension and topology predicate bottoms out in rational feasibility
solves.  This module implements the standard exact-geometry cure — decide
the easy instances in hardware floats and *certify* the answer exactly:

* a float "feasible" verdict is confirmed by rounding the float witness
  to a rational point (a ladder of ``limit_denominator`` bounds) and
  substituting it into the original rows with exact arithmetic;
* a float "infeasible" verdict is confirmed by reading the Farkas dual
  support off the final tableau — the handful of rows whose multipliers
  are positive form a candidate infeasible subsystem — and exactly
  deciding that (much smaller) subsystem with the rational solver;
* anything inconclusive — a pivot or optimum inside the configured
  epsilon band, an iteration cap, a failed certification — falls back to
  the exact solver.

Because every answer that leaves this module is certified by exact
rational arithmetic, ``feasible`` / ``strict_feasible_point`` keep their
exact contracts bit-for-bit in both modes; the float tier only ever
changes *which* valid witness is returned, never a status.

Equality rows are eliminated exactly first (one rational reduction via
:func:`repro.geometry.linalg.affine_parametrization`): systems pinned to
a point are decided with no LP at all, systems reduced to one free
direction use the exact interval solver, and only genuinely
``>= 2``-dimensional inequality systems reach floating point.  The float
tableau is fed from the cached coprime-integer row form
(:meth:`LinearConstraint.integer_form`), row-scaled into ``[-1, 1]``.

The mode switch (``exact`` disables the filter entirely) is resolved
from :func:`set_lp_mode` / the ``REPRO_LP_MODE`` environment variable,
defaulting to ``filtered``; `QueryEngine(lp_mode=...)` and the CLI's
``--lp-mode`` scope it per run via the :func:`lp_mode` context manager.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterator, Sequence

from repro.geometry.fourier_motzkin import LinearConstraint, Rel
from repro.geometry.linalg import Vector, affine_parametrization, vec_dot
from repro.obs.metrics import get_registry
from repro.obs.tracing import TRACER

try:  # pragma: no cover - exercised indirectly on hosts with numpy
    import numpy as _np
except Exception:  # pragma: no cover - numpy is optional
    _np = None

ZERO = Fraction(0)

LP_MODES = ("exact", "filtered")

#: Filter telemetry (process-wide registry, see docs/OBSERVABILITY.md):
#: systems decided by the certified float tier, systems handed to the
#: exact solver, and float verdicts that failed exact certification
#: (always a subset of the fallbacks — a failed certificate never
#: produces an answer).
_FILTER_HITS = get_registry().counter("lp.filter_hits")
_FILTER_FALLBACKS = get_registry().counter("lp.filter_fallbacks")
_CERTIFY_FAILURES = get_registry().counter("lp.certify_failures")


@dataclass
class FilterConfig:
    """Tolerances of the float tier.

    ``pivot_eps`` — tableau entries below this magnitude never pivot;
    ``band_eps`` — the epsilon band: an optimal slack ``|ε*|`` inside it
    is treated as inconclusive (the strict-feasibility boundary cannot be
    trusted to float rounding);
    ``dual_eps`` — Farkas multipliers below this are excluded from the
    infeasible-subsystem support;
    ``max_iterations`` — pivot cap; float simplex has no exact
    anti-cycling rule, so stalling falls back instead of looping;
    ``witness_denominators`` — the rounding ladder for float witnesses
    (small denominators first: they certify just as well and keep the
    rational arithmetic downstream cheap);
    ``numpy_min_cells`` — tableaus with at least this many cells use the
    vectorised numpy pivot loop when numpy is importable.
    """

    pivot_eps: float = 1e-9
    band_eps: float = 1e-7
    dual_eps: float = 1e-7
    max_iterations: int = 500
    witness_denominators: tuple[int, ...] = (2**10, 10**6, 10**13)
    numpy_min_cells: int = 2048


CONFIG = FilterConfig()

_NUMPY_DISABLED = os.environ.get("REPRO_LP_NUMPY", "").strip() == "0"

ExactOracle = Callable[[tuple[LinearConstraint, ...], int], Vector | None]


# --------------------------------------------------------------------------
# Mode resolution


_MODE: str | None = None


def get_lp_mode() -> str:
    """The active LP mode: an explicit override, else ``REPRO_LP_MODE``,
    else ``"filtered"``."""
    if _MODE is not None:
        return _MODE
    env = os.environ.get("REPRO_LP_MODE", "").strip().lower()
    if not env:
        return "filtered"
    if env not in LP_MODES:
        raise ValueError(
            f"REPRO_LP_MODE must be one of {LP_MODES}, got {env!r}"
        )
    return env


def set_lp_mode(mode: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide LP mode override."""
    global _MODE
    if mode is not None and mode not in LP_MODES:
        raise ValueError(f"lp_mode must be one of {LP_MODES}, got {mode!r}")
    _MODE = mode


@contextmanager
def lp_mode(mode: str | None) -> Iterator[None]:
    """Scoped LP mode override; ``None`` is a no-op (inherit)."""
    if mode is None:
        yield
        return
    global _MODE
    previous = _MODE
    set_lp_mode(mode)
    try:
        yield
    finally:
        _MODE = previous


def filter_enabled() -> bool:
    """True iff the certified float tier should be attempted."""
    return get_lp_mode() == "filtered"


# --------------------------------------------------------------------------
# The certified decision procedure


def try_certified(
    constraints: tuple[LinearConstraint, ...],
    dim: int,
    exact_oracle: ExactOracle,
) -> tuple[bool, Vector | None]:
    """Attempt to decide strict feasibility with the certified tiers.

    Returns ``(decided, witness)``.  ``decided`` is True only when the
    answer is backed by exact arithmetic — a substituted rational
    witness, an exactly-refuted dual-support subsystem, or a pure
    rational reduction (inconsistent equalities, pinned points, one free
    direction).  ``(False, None)`` means the caller must run the exact
    solver; the filter counters are maintained here either way.
    """
    if TRACER.enabled:
        with TRACER.span("lp.filter", aggregate=True) as filter_span:
            filter_span.add("rows", len(constraints))
            decided, point = _try_certified(constraints, dim, exact_oracle)
    else:
        decided, point = _try_certified(constraints, dim, exact_oracle)
    if decided:
        _FILTER_HITS.inc()
    else:
        _FILTER_FALLBACKS.inc()
    return decided, point


def _try_certified(
    constraints: tuple[LinearConstraint, ...],
    dim: int,
    exact_oracle: ExactOracle,
) -> tuple[bool, Vector | None]:
    equalities = [c for c in constraints if c.rel is Rel.EQ]
    inequalities = [c for c in constraints if c.rel is not Rel.EQ]

    if equalities:
        param = affine_parametrization(
            [list(c.coeffs) for c in equalities],
            [c.rhs for c in equalities],
        )
        if param is None:
            return True, None  # the equality rows alone are inconsistent
        origin, basis = param
        free_dim = len(basis)
        rows: list[tuple[tuple[Fraction, ...], Fraction, bool, LinearConstraint]] = []
        for c in inequalities:
            shifted = c.rhs - vec_dot(c.coeffs, origin)
            coeffs_t = tuple(vec_dot(c.coeffs, direction) for direction in basis)
            if all(q == 0 for q in coeffs_t):
                holds = shifted > 0 if c.rel is Rel.LT else shifted >= 0
                if not holds:
                    return True, None  # impossible on the equality subspace
                continue
            rows.append((coeffs_t, shifted, c.rel is Rel.LT, c))
        if free_dim == 0:
            return True, tuple(origin)  # equalities pin a unique point
    else:
        origin, basis = None, None
        free_dim = dim
        rows = []
        for c in inequalities:
            if c.is_trivial():
                if c.trivially_false():
                    return True, None
                continue
            rows.append((c.coeffs, c.rhs, c.rel is Rel.LT, c))

    if not rows:
        if origin is not None:
            return True, tuple(origin)
        return True, (ZERO,) * dim

    if free_dim == 1:
        # One free direction left: the exact interval solver is both
        # faster and exact — no float, no certification needed.
        reduced = tuple(
            LinearConstraint(
                (coeffs[0],), Rel.LT if strict else Rel.LE, rhs
            )
            for coeffs, rhs, strict, _ in rows
        )
        step = exact_oracle(reduced, 1)
        if step is None:
            return True, None
        if origin is None:
            return True, step
        assert basis is not None
        witness = tuple(
            x + step[0] * v for x, v in zip(origin, basis[0])
        )
        return True, witness

    verdict, point, duals = _float_feasible(
        rows, free_dim, CONFIG, direct=origin is None
    )

    if verdict == "feasible":
        assert point is not None
        witness = _certify_witness(constraints, origin, basis, point, CONFIG)
        if witness is not None:
            return True, witness
        _CERTIFY_FAILURES.inc()
        return False, None

    if verdict == "infeasible":
        assert duals is not None
        support = [
            row[3]
            for row, multiplier in zip(rows, duals)
            if multiplier > CONFIG.dual_eps
        ]
        subsystem = tuple(equalities) + tuple(support)
        if support and len(subsystem) < len(constraints):
            if exact_oracle(subsystem, dim) is None:
                return True, None
            _CERTIFY_FAILURES.inc()
        return False, None

    return False, None


def _certify_witness(
    constraints: Sequence[LinearConstraint],
    origin: Sequence[Fraction] | None,
    basis: Sequence[Vector] | None,
    point: Sequence[float],
    cfg: FilterConfig,
) -> Vector | None:
    """Round a float point to rationals and verify it exactly, or fail."""
    if not all(math.isfinite(v) for v in point):
        return None
    for bound in cfg.witness_denominators:
        step = [Fraction(v).limit_denominator(bound) for v in point]
        if origin is None:
            candidate = tuple(step)
        else:
            assert basis is not None
            coords = list(origin)
            for weight, direction in zip(step, basis):
                if weight:
                    coords = [
                        x + weight * v for x, v in zip(coords, direction)
                    ]
            candidate = tuple(coords)
        if all(c.satisfied_by(candidate) for c in constraints):
            return candidate
    return None


# --------------------------------------------------------------------------
# The float simplex tier


def _scaled_float_row(
    constraint: LinearConstraint,
) -> tuple[tuple[float, ...], float]:
    """The constraint's coprime-integer row as floats in ``[-1, 1]``, cached.

    Hangs off the (frozen, immutable) constraint like
    :meth:`LinearConstraint.integer_form` does, so the thousands of
    sign-vector systems sharing a hyperplane's rows pay the conversion
    once.
    """
    cached = constraint.__dict__.get("_float_form")
    if cached is not None:
        return cached
    ints, rhs_int = constraint.integer_form()
    scale = max(max(abs(v) for v in ints), abs(rhs_int), 1)
    form = (tuple(v / scale for v in ints), rhs_int / scale)
    object.__setattr__(constraint, "_float_form", form)
    return form


def _float_feasible(
    rows: Sequence[tuple[tuple[Fraction, ...], Fraction, bool, LinearConstraint]],
    f: int,
    cfg: FilterConfig,
    direct: bool,
) -> tuple[str, list[float] | None, list[float] | None]:
    """Float verdict on ``{a.t (<|<=) b}`` over ``f`` free variables.

    Maximises the shared slack ``ε`` of the strict rows (capped at 1,
    mirroring the exact solver's widening) with a two-phase dense float
    simplex.  Returns one of:

    * ``("feasible", t, None)`` — a float point with ``ε*`` above the
      epsilon band (or any feasible point when no row is strict);
    * ``("infeasible", None, λ)`` — with the Farkas multipliers of the
      inequality rows read off the final tableau's slack columns;
    * ``("unknown", None, None)`` — optimum inside the band, iteration
      cap hit, or numerical degeneracy: the caller must fall back.
    """
    has_strict = any(strict for _, _, strict, _ in rows)
    m = len(rows) + (1 if has_strict else 0)
    n_struct = 2 * f + (2 if has_strict else 0)
    n = n_struct + m

    tableau: list[list[float]] = []
    negated: list[bool] = []
    for index, (coeffs, rhs, strict, original) in enumerate(rows):
        if direct:
            scaled_coeffs, scaled_rhs = _scaled_float_row(original)
            scale = 1.0
        else:
            scaled_coeffs = tuple(float(q) for q in coeffs)
            scaled_rhs = float(rhs)
            scale = max(
                max(abs(v) for v in scaled_coeffs), abs(scaled_rhs), 1.0
            )
        row = [0.0] * (n + 1)
        for j, v in enumerate(scaled_coeffs):
            row[j] = v / scale
            row[f + j] = -v / scale
        if strict:
            row[2 * f] = 1.0 / scale
            row[2 * f + 1] = -1.0 / scale
        row[n_struct + index] = 1.0
        row[n] = scaled_rhs / scale
        tableau.append(row)
        negated.append(False)
    if has_strict:
        cap = [0.0] * (n + 1)
        cap[2 * f] = 1.0
        cap[2 * f + 1] = -1.0
        cap[n_struct + len(rows)] = 1.0
        cap[n] = 1.0
        tableau.append(cap)
        negated.append(False)

    for i in range(m):
        if tableau[i][n] < 0.0:
            tableau[i] = [-v for v in tableau[i]]
            negated[i] = True

    artificial_rows = [i for i in range(m) if negated[i]]
    n_art = len(artificial_rows)
    total = n + n_art
    basis = [n_struct + i for i in range(m)]
    if n_art:
        art_col = {row_i: n + k for k, row_i in enumerate(artificial_rows)}
        for i in range(m):
            extra = [0.0] * n_art
            if i in art_col:
                extra[art_col[i] - n] = 1.0
            tableau[i] = tableau[i][:n] + extra + [tableau[i][n]]
        for row_i in artificial_rows:
            basis[row_i] = art_col[row_i]
        # Phase 1: minimise the artificial sum, priced out over the basis.
        cost = [0.0] * total + [0.0]
        for k in range(n_art):
            cost[n + k] = 1.0
        for row_i in artificial_rows:
            cost = [c - t for c, t in zip(cost, tableau[row_i])]
        tableau.append(cost)
        status = _run_float_simplex(tableau, basis, total, (), cfg)
        if status != "optimal":
            return "unknown", None, None
        infeasibility = -tableau[-1][-1]
        if infeasibility > cfg.band_eps:
            duals = _slack_duals(tableau[-1], n_struct, len(rows), cfg)
            return "infeasible", None, duals
        # Drive leftover artificials out of the basis where possible;
        # rows that resist are redundant and their columns stay banned.
        for i in range(m):
            if basis[i] >= n:
                pivot_col = next(
                    (
                        j
                        for j in range(n)
                        if abs(tableau[i][j]) > cfg.pivot_eps
                    ),
                    None,
                )
                if pivot_col is not None:
                    _float_pivot(tableau, i, pivot_col)
                    basis[i] = pivot_col
        tableau.pop()

    banned = tuple(range(n, total))
    if not has_strict:
        point = _basic_point(tableau, basis, f, m)
        return "feasible", point, None

    cost = [0.0] * total + [0.0]
    cost[2 * f] = -1.0
    cost[2 * f + 1] = 1.0
    for i in range(m):
        weight = cost[basis[i]]
        if weight:
            cost = [c - weight * t for c, t in zip(cost, tableau[i])]
    tableau.append(cost)
    status = _run_float_simplex(tableau, basis, total, banned, cfg)
    if status != "optimal":
        return "unknown", None, None
    solution = [0.0] * total
    for i in range(m):
        solution[basis[i]] = tableau[i][-1]
    epsilon = solution[2 * f] - solution[2 * f + 1]
    if epsilon > cfg.band_eps:
        point = _basic_point(tableau, basis, f, m)
        return "feasible", point, None
    if epsilon < -cfg.band_eps:
        duals = _slack_duals(tableau[-1], n_struct, len(rows), cfg)
        return "infeasible", None, duals
    return "unknown", None, None


def _basic_point(
    tableau: list[list[float]], basis: list[int], f: int, m: int
) -> list[float]:
    values: dict[int, float] = {}
    for i in range(m):
        values[basis[i]] = tableau[i][-1]
    return [values.get(j, 0.0) - values.get(f + j, 0.0) for j in range(f)]


def _slack_duals(
    objective: list[float], n_struct: int, n_rows: int, cfg: FilterConfig
) -> list[float]:
    """Farkas multipliers: the reduced costs at the slack columns.

    At a (phase-1 or phase-2) float optimum the reduced cost of row
    ``i``'s slack column equals the multiplier ``λ_i >= 0`` of the
    infeasibility certificate; tiny negatives are float noise, clamp.
    """
    return [max(objective[n_struct + i], 0.0) for i in range(n_rows)]


def _run_float_simplex(
    tableau: list[list[float]],
    basis: list[int],
    n_cols: int,
    banned: tuple[int, ...],
    cfg: FilterConfig,
) -> str:
    """Minimise the priced-out last row in place (Dantzig rule).

    Floats have no exact anti-cycling guarantee, so a pivot cap turns
    potential stalls into an ``"unknown"`` that the caller treats as a
    fallback; nothing downstream ever trusts a stalled tableau.
    """
    if (
        _np is not None
        and not _NUMPY_DISABLED
        and len(tableau) * (n_cols + 1) >= cfg.numpy_min_cells
    ):
        return _run_float_simplex_np(tableau, basis, n_cols, banned, cfg)
    m = len(tableau) - 1
    banned_set = set(banned)
    for _ in range(cfg.max_iterations):
        objective = tableau[-1]
        entering = -1
        most_negative = -cfg.pivot_eps
        for j in range(n_cols):
            if j not in banned_set and objective[j] < most_negative:
                most_negative = objective[j]
                entering = j
        if entering < 0:
            return "optimal"
        leaving = -1
        best_ratio = math.inf
        for i in range(m):
            coeff = tableau[i][entering]
            if coeff > cfg.pivot_eps:
                ratio = tableau[i][-1] / coeff
                if ratio < best_ratio:
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            return "unbounded"
        _float_pivot(tableau, leaving, entering)
        basis[leaving] = entering
    return "stalled"


def _float_pivot(tableau: list[list[float]], row: int, col: int) -> None:
    pivot_value = tableau[row][col]
    pivot_row = [v / pivot_value for v in tableau[row]]
    tableau[row] = pivot_row
    for r, current in enumerate(tableau):
        if r == row:
            continue
        factor = current[col]
        if factor:
            tableau[r] = [
                v - factor * p for v, p in zip(current, pivot_row)
            ]


def _run_float_simplex_np(
    tableau: list[list[float]],
    basis: list[int],
    n_cols: int,
    banned: tuple[int, ...],
    cfg: FilterConfig,
) -> str:  # pragma: no cover - exercised only on hosts with numpy
    """Vectorised twin of :func:`_run_float_simplex` for large tableaus."""
    matrix = _np.array(tableau, dtype=float)
    m = matrix.shape[0] - 1
    allowed = _np.ones(n_cols, dtype=bool)
    for j in banned:
        allowed[j] = False
    status = "stalled"
    for _ in range(cfg.max_iterations):
        objective = matrix[-1, :n_cols]
        candidates = _np.where(allowed & (objective < -cfg.pivot_eps))[0]
        if candidates.size == 0:
            status = "optimal"
            break
        entering = int(candidates[_np.argmin(objective[candidates])])
        column = matrix[:m, entering]
        positive = column > cfg.pivot_eps
        if not positive.any():
            status = "unbounded"
            break
        ratios = _np.full(m, _np.inf)
        ratios[positive] = matrix[:m, -1][positive] / column[positive]
        leaving = int(_np.argmin(ratios))
        pivot_row = matrix[leaving] / matrix[leaving, entering]
        matrix -= _np.outer(matrix[:, entering], pivot_row)
        matrix[leaving] = pivot_row
        basis[leaving] = entering
    tableau[:] = matrix.tolist()
    return status
