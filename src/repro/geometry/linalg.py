"""Exact linear algebra over the rationals.

Vectors are tuples of :class:`fractions.Fraction`; matrices are lists (or
tuples) of such row vectors.  All routines are purely functional — inputs
are never mutated — and exact: there is no floating point anywhere.

The module provides the primitives the rest of the geometry layer builds
on: Gaussian elimination to reduced row echelon form, rank computation,
solving linear systems, kernel bases and affine hulls of point sets.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from repro.errors import DimensionMismatchError, SingularSystemError

Vector = tuple[Fraction, ...]
Matrix = list[list[Fraction]]

ZERO = Fraction(0)
ONE = Fraction(1)


def as_fraction(value: object) -> Fraction:
    """Coerce an int/str/Fraction into an exact :class:`Fraction`.

    Floats are rejected on purpose: silently converting binary floats would
    smuggle rounding error into an exact pipeline.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not valid rational scalars")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    raise TypeError(f"expected an exact rational scalar, got {type(value).__name__}")


def vector(values: Iterable[object]) -> Vector:
    """Build an exact rational vector from any iterable of scalars."""
    return tuple(as_fraction(v) for v in values)


def zero_vector(dimension: int) -> Vector:
    """The origin of ``dimension``-dimensional rational space."""
    return (ZERO,) * dimension


def unit_vector(dimension: int, index: int) -> Vector:
    """The ``index``-th standard basis vector in ``dimension`` dimensions."""
    if not 0 <= index < dimension:
        raise IndexError(f"unit vector index {index} out of range for dim {dimension}")
    return tuple(ONE if i == index else ZERO for i in range(dimension))


def vec_add(u: Sequence[Fraction], v: Sequence[Fraction]) -> Vector:
    """Component-wise sum of two vectors of equal dimension."""
    _check_same_dim(u, v)
    return tuple(a + b for a, b in zip(u, v))


def vec_sub(u: Sequence[Fraction], v: Sequence[Fraction]) -> Vector:
    """Component-wise difference ``u - v``."""
    _check_same_dim(u, v)
    return tuple(a - b for a, b in zip(u, v))


def vec_scale(scalar: Fraction, v: Sequence[Fraction]) -> Vector:
    """Scalar multiple ``scalar * v``."""
    return tuple(scalar * a for a in v)


def vec_dot(u: Sequence[Fraction], v: Sequence[Fraction]) -> Fraction:
    """Standard inner product of two vectors of equal dimension."""
    _check_same_dim(u, v)
    return sum((a * b for a, b in zip(u, v)), ZERO)


def vec_is_zero(v: Sequence[Fraction]) -> bool:
    """True iff every component of ``v`` is zero."""
    return all(a == 0 for a in v)


def vec_midpoint(u: Sequence[Fraction], v: Sequence[Fraction]) -> Vector:
    """The midpoint of the segment between ``u`` and ``v``."""
    _check_same_dim(u, v)
    half = Fraction(1, 2)
    return tuple((a + b) * half for a, b in zip(u, v))


def convex_combination(
    points: Sequence[Sequence[Fraction]], weights: Sequence[Fraction]
) -> Vector:
    """The point ``sum(w_i * p_i)`` for weights summing to one.

    Raises :class:`ValueError` when the weights do not sum to one — the
    caller asked for a convex (affine) combination, so a silent drift would
    hide a logic error.
    """
    if len(points) != len(weights):
        raise DimensionMismatchError("one weight per point is required")
    if sum(weights, ZERO) != 1:
        raise ValueError("convex combination weights must sum to 1")
    if not points:
        raise ValueError("convex combination of an empty point set")
    result = zero_vector(len(points[0]))
    for point, weight in zip(points, weights):
        result = vec_add(result, vec_scale(weight, point))
    return result


def _check_same_dim(u: Sequence[Fraction], v: Sequence[Fraction]) -> None:
    if len(u) != len(v):
        raise DimensionMismatchError(
            f"vector dimensions differ: {len(u)} vs {len(v)}"
        )


def _copy_matrix(rows: Sequence[Sequence[Fraction]]) -> Matrix:
    return [list(row) for row in rows]


def gaussian_elimination(
    rows: Sequence[Sequence[Fraction]],
) -> tuple[Matrix, list[int]]:
    """Reduce a matrix to reduced row echelon form.

    Returns ``(rref, pivot_columns)`` where ``pivot_columns[i]`` is the
    column of the pivot in row ``i``.  Zero rows are moved to the bottom of
    the returned matrix.  The input is not modified.
    """
    matrix = _copy_matrix(rows)
    if not matrix:
        return [], []
    n_rows = len(matrix)
    n_cols = len(matrix[0])
    if any(len(row) != n_cols for row in matrix):
        raise DimensionMismatchError("all matrix rows must have equal length")

    pivot_columns: list[int] = []
    pivot_row = 0
    for col in range(n_cols):
        if pivot_row >= n_rows:
            break
        # Find a row with a non-zero entry in this column at or below pivot_row.
        chosen = next(
            (r for r in range(pivot_row, n_rows) if matrix[r][col] != 0), None
        )
        if chosen is None:
            continue
        matrix[pivot_row], matrix[chosen] = matrix[chosen], matrix[pivot_row]
        pivot_value = matrix[pivot_row][col]
        matrix[pivot_row] = [entry / pivot_value for entry in matrix[pivot_row]]
        for r in range(n_rows):
            if r != pivot_row and matrix[r][col] != 0:
                factor = matrix[r][col]
                matrix[r] = [
                    entry - factor * pivot_entry
                    for entry, pivot_entry in zip(matrix[r], matrix[pivot_row])
                ]
        pivot_columns.append(col)
        pivot_row += 1
    return matrix, pivot_columns


def matrix_rank(rows: Sequence[Sequence[Fraction]]) -> int:
    """Rank of a rational matrix."""
    __, pivots = gaussian_elimination(rows)
    return len(pivots)


def solve_linear_system(
    coefficients: Sequence[Sequence[Fraction]],
    constants: Sequence[Fraction],
) -> Vector | None:
    """Solve ``A x = b`` exactly.

    Returns one solution (with free variables set to zero), or ``None``
    when the system is inconsistent.  Under-determined systems are allowed.
    """
    if len(coefficients) != len(constants):
        raise DimensionMismatchError("need exactly one constant per equation")
    if not coefficients:
        return ()
    n_cols = len(coefficients[0])
    augmented = [list(row) + [b] for row, b in zip(coefficients, constants)]
    rref, pivots = gaussian_elimination(augmented)
    # Inconsistent iff a pivot lands in the constants column.
    if pivots and pivots[-1] == n_cols:
        return None
    solution = [ZERO] * n_cols
    for row_index, col in enumerate(pivots):
        solution[col] = rref[row_index][n_cols]
    return tuple(solution)


def solve_unique(
    coefficients: Sequence[Sequence[Fraction]],
    constants: Sequence[Fraction],
) -> Vector:
    """Solve ``A x = b`` when the solution must be unique.

    Raises :class:`SingularSystemError` when the system is inconsistent or
    under-determined.  Used for vertex computation, where a d-subset of
    hyperplanes is a vertex candidate only if it meets in exactly one point.
    """
    if not coefficients:
        raise SingularSystemError("empty system has no unique solution")
    n_cols = len(coefficients[0])
    if matrix_rank(coefficients) != n_cols:
        raise SingularSystemError("coefficient matrix is rank deficient")
    solution = solve_linear_system(coefficients, constants)
    if solution is None:
        raise SingularSystemError("system is inconsistent")
    return solution


def kernel_basis(rows: Sequence[Sequence[Fraction]]) -> list[Vector]:
    """A basis of the null space of ``A`` (solutions of ``A x = 0``)."""
    if not rows:
        return []
    n_cols = len(rows[0])
    rref, pivots = gaussian_elimination(rows)
    pivot_set = set(pivots)
    free_columns = [c for c in range(n_cols) if c not in pivot_set]
    basis: list[Vector] = []
    for free in free_columns:
        candidate = [ZERO] * n_cols
        candidate[free] = ONE
        for row_index, pivot_col in enumerate(pivots):
            candidate[pivot_col] = -rref[row_index][free]
        basis.append(tuple(candidate))
    return basis


def affine_parametrization(
    coefficients: Sequence[Sequence[Fraction]],
    constants: Sequence[Fraction],
) -> tuple[Vector, list[Vector]] | None:
    """Parametrise the solution set of ``A x = b`` as ``x0 + span(basis)``.

    Returns ``(x0, basis)`` — a particular solution plus a kernel basis —
    or ``None`` when the system is inconsistent.  One reduction serves
    both, unlike calling :func:`solve_linear_system` and
    :func:`kernel_basis` separately; the certified LP filter uses this to
    eliminate equality rows exactly before handing the remaining
    inequalities to floating point.
    """
    if len(coefficients) != len(constants):
        raise DimensionMismatchError("need exactly one constant per equation")
    if not coefficients:
        return (), []
    n_cols = len(coefficients[0])
    augmented = [list(row) + [b] for row, b in zip(coefficients, constants)]
    rref, pivots = gaussian_elimination(augmented)
    if pivots and pivots[-1] == n_cols:
        return None
    solution = [ZERO] * n_cols
    for row_index, col in enumerate(pivots):
        solution[col] = rref[row_index][n_cols]
    pivot_set = set(pivots)
    free_columns = [c for c in range(n_cols) if c not in pivot_set]
    basis: list[Vector] = []
    for free in free_columns:
        direction = [ZERO] * n_cols
        direction[free] = ONE
        for row_index, pivot_col in enumerate(pivots):
            direction[pivot_col] = -rref[row_index][free]
        basis.append(tuple(direction))
    return tuple(solution), basis


def affine_rank(points: Sequence[Sequence[Fraction]]) -> int:
    """Dimension of the affine hull of a point set.

    Empty input has affine rank ``-1`` (the empty affine space); a single
    point has rank 0; two distinct points rank 1, and so on.
    """
    if not points:
        return -1
    base = points[0]
    differences = [list(vec_sub(p, base)) for p in points[1:]]
    return matrix_rank(differences)


def affine_hull_equations(
    points: Sequence[Sequence[Fraction]],
) -> list[tuple[Vector, Fraction]]:
    """Equations ``a . x = b`` cutting out the affine hull of ``points``.

    Returns a list of ``(normal, offset)`` pairs; the hull is exactly the
    set of points satisfying all of them.  A full-dimensional hull yields
    the empty list.
    """
    if not points:
        raise ValueError("affine hull of an empty point set is undefined")
    base = points[0]
    directions = [list(vec_sub(p, base)) for p in points[1:]]
    normals = kernel_basis(directions) if directions else [
        unit_vector(len(base), i) for i in range(len(base))
    ]
    return [(normal, vec_dot(normal, base)) for normal in normals]


def are_affinely_independent(points: Sequence[Sequence[Fraction]]) -> bool:
    """True iff the points are affinely independent."""
    return affine_rank(points) == len(points) - 1


def lex_less(u: Sequence[Fraction], v: Sequence[Fraction]) -> bool:
    """Strict lexicographic comparison of two vectors of equal dimension."""
    _check_same_dim(u, v)
    return tuple(u) < tuple(v)
