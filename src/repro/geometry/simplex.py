"""Exact rational linear programming via two-phase simplex.

The solver works entirely over :class:`fractions.Fraction` and uses
Bland's anti-cycling rule, so it terminates on every input and returns
exact answers.  On top of the raw solver the module offers the two
predicates the rest of the library leans on:

* :func:`solve_lp` — optimise a linear objective over a conjunction of
  (non-strict) linear constraints with free (sign-unrestricted) variables.
* :func:`feasible` — exact feasibility of a mixed strict/non-strict
  system, decided by maximising a slack ``ε`` (bounded by 1) added to every
  strict row; the open system is feasible iff the optimum is positive.
  :func:`strict_feasible_point` additionally returns a rational witness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from time import perf_counter
from typing import Sequence

from repro.deprecation import warn_once
from repro.errors import LPError
from repro.geometry import fastlp
from repro.geometry.fourier_motzkin import LinearConstraint, Rel
from repro.geometry.linalg import Vector, as_fraction
from repro.obs.metrics import get_registry
from repro.obs.telemetry import get_telemetry
from repro.obs.tracing import TRACER

ZERO = Fraction(0)
ONE = Fraction(1)


class LPStatus(enum.Enum):
    """Outcome of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class LPResult:
    """Result of :func:`solve_lp`.

    ``point`` and ``value`` are ``None`` unless the status is OPTIMAL.
    For UNBOUNDED problems ``point`` holds a feasible point witnessing
    feasibility (the objective is unbounded along some ray from it).
    """

    status: LPStatus
    point: Vector | None
    value: Fraction | None


def _pivot(tableau: list[list[Fraction]], row: int, col: int) -> None:
    """In-place pivot of the tableau on ``(row, col)``."""
    pivot_value = tableau[row][col]
    tableau[row] = [entry / pivot_value for entry in tableau[row]]
    pivot_row = tableau[row]
    for r, current in enumerate(tableau):
        if r == row:
            continue
        factor = current[col]
        if factor != 0:
            tableau[r] = [
                entry - factor * pivot_entry
                for entry, pivot_entry in zip(current, pivot_row)
            ]


def _run_simplex(
    tableau: list[list[Fraction]], basis: list[int], n_cols: int
) -> LPStatus:
    """Minimise the objective in the last tableau row (Bland's rule).

    ``tableau`` rows 0..m-1 are constraints (rhs in the last column); the
    final row is the objective with reduced costs.  Returns OPTIMAL or
    UNBOUNDED, leaving the tableau at the final basis.
    """
    m = len(tableau) - 1
    objective = tableau[-1]
    while True:
        entering = next(
            (j for j in range(n_cols) if objective[j] < 0), None
        )
        if entering is None:
            return LPStatus.OPTIMAL
        leaving = None
        best_ratio: Fraction | None = None
        for i in range(m):
            coeff = tableau[i][entering]
            if coeff > 0:
                ratio = tableau[i][-1] / coeff
                better = best_ratio is None or ratio < best_ratio
                tie_break = (
                    best_ratio is not None
                    and ratio == best_ratio
                    and leaving is not None
                    and basis[i] < basis[leaving]
                )
                if better or tie_break:
                    best_ratio = ratio
                    leaving = i
        if leaving is None:
            return LPStatus.UNBOUNDED
        _pivot(tableau, leaving, entering)
        basis[leaving] = entering
        objective = tableau[-1]


def _standard_form_solve(
    matrix: list[list[Fraction]],
    rhs: list[Fraction],
    objective: list[Fraction],
) -> tuple[LPStatus, list[Fraction] | None, Fraction | None]:
    """Solve ``min objective . x`` s.t. ``matrix x = rhs``, ``x >= 0``."""
    m = len(matrix)
    n = len(objective)
    rows = [list(row) for row in matrix]
    b = list(rhs)
    for i in range(m):
        if b[i] < 0:
            rows[i] = [-v for v in rows[i]]
            b[i] = -b[i]

    # Phase 1: artificial variables, minimise their sum.
    total = n + m
    tableau: list[list[Fraction]] = []
    for i in range(m):
        row = rows[i] + [ONE if j == i else ZERO for j in range(m)] + [b[i]]
        tableau.append(row)
    # Reduced costs for phase 1: cost 1 on artificials, then price out.
    cost_row = [ZERO] * n + [ONE] * m + [ZERO]
    for i in range(m):
        cost_row = [c - t for c, t in zip(cost_row, tableau[i])]
    tableau.append(cost_row)
    basis = list(range(n, n + m))
    status = _run_simplex(tableau, basis, total)
    if status is not LPStatus.OPTIMAL:  # pragma: no cover - phase 1 is bounded
        raise LPError("phase 1 cannot be unbounded")
    if -tableau[-1][-1] != 0:
        return LPStatus.INFEASIBLE, None, None

    # Drive artificial variables out of the basis where possible.
    for i in range(m):
        if basis[i] >= n:
            pivot_col = next(
                (j for j in range(n) if tableau[i][j] != 0), None
            )
            if pivot_col is not None:
                _pivot(tableau, i, pivot_col)
                basis[i] = pivot_col
    # Rows still basic in an artificial variable are redundant (all-zero
    # over the original columns); they stay but can never pivot again
    # because we restrict the column range to n in phase 2.

    # Phase 2: rebuild the objective row over original columns only.
    tableau = [row[:n] + [row[-1]] for row in tableau[:-1]]
    obj_row = [as_fraction(c) for c in objective] + [ZERO]
    for i in range(m):
        if basis[i] < n and obj_row[basis[i]] != 0:
            factor = obj_row[basis[i]]
            obj_row = [
                c - factor * t for c, t in zip(obj_row, tableau[i])
            ]
    tableau.append(obj_row)
    status = _run_simplex(tableau, basis, n)
    solution = [ZERO] * n
    for i in range(m):
        if basis[i] < n:
            solution[basis[i]] = tableau[i][-1]
    if status is LPStatus.UNBOUNDED:
        return LPStatus.UNBOUNDED, solution, None
    return LPStatus.OPTIMAL, solution, -tableau[-1][-1]


def solve_lp(
    objective: Sequence[object],
    constraints: Sequence[LinearConstraint],
    maximize: bool = False,
) -> LPResult:
    """Optimise ``objective . x`` over free variables subject to constraints.

    Strict constraints are rejected — use :func:`feasible` /
    :func:`strict_feasible_point` for open systems.  Variables are
    unrestricted in sign (handled by the usual ``x = x⁺ - x⁻`` split).
    """
    obj = [as_fraction(c) for c in objective]
    n = len(obj)
    for constraint in constraints:
        if constraint.rel is Rel.LT:
            raise LPError("solve_lp does not accept strict constraints")
        if constraint.dimension != n:
            raise LPError(
                f"constraint dimension {constraint.dimension} != objective {n}"
            )
    if maximize:
        obj = [-c for c in obj]

    # Columns: x⁺ (n), x⁻ (n), slack (one per inequality).
    n_slack = sum(1 for c in constraints if c.rel is Rel.LE)
    total = 2 * n + n_slack
    matrix: list[list[Fraction]] = []
    rhs: list[Fraction] = []
    slack_index = 0
    for constraint in constraints:
        row = [ZERO] * total
        for j, coeff in enumerate(constraint.coeffs):
            row[j] = coeff
            row[n + j] = -coeff
        if constraint.rel is Rel.LE:
            row[2 * n + slack_index] = ONE
            slack_index += 1
        matrix.append(row)
        rhs.append(constraint.rhs)
    std_objective = obj + [-c for c in obj] + [ZERO] * n_slack
    status, solution, value = _standard_form_solve(matrix, rhs, std_objective)
    if status is LPStatus.INFEASIBLE:
        return LPResult(LPStatus.INFEASIBLE, None, None)
    assert solution is not None
    point = tuple(solution[j] - solution[n + j] for j in range(n))
    if status is LPStatus.UNBOUNDED:
        return LPResult(LPStatus.UNBOUNDED, point, None)
    assert value is not None
    if maximize:
        value = -value
    return LPResult(LPStatus.OPTIMAL, point, value)


def _with_epsilon(constraints: Sequence[LinearConstraint]) -> list[LinearConstraint]:
    """Append an ε column: strict rows become ``a.x + ε <= b``; cap ε <= 1."""
    widened: list[LinearConstraint] = []
    for constraint in constraints:
        extra = ONE if constraint.rel is Rel.LT else ZERO
        rel = Rel.LE if constraint.rel is Rel.LT else constraint.rel
        widened.append(
            LinearConstraint(constraint.coeffs + (extra,), rel, constraint.rhs)
        )
    dimension = constraints[0].dimension if constraints else 0
    cap = LinearConstraint((ZERO,) * dimension + (ONE,), Rel.LE, ONE)
    widened.append(cap)
    return widened


def _solve_interval(
    constraints: tuple[LinearConstraint, ...]
) -> Vector | None:
    """Direct interval feasibility for one-variable systems.

    Every constraint ``a·x REL b`` with a ≠ 0 is a bound or a point; the
    system is an interval intersection — no simplex needed.  This is the
    hot path: component decomposition reduces most sign-vector and DNF
    feasibility checks to single-variable subsystems.
    """
    lower: Fraction | None = None
    lower_strict = False
    upper: Fraction | None = None
    upper_strict = False
    pinned: Fraction | None = None
    for row in constraints:
        a = row.coeffs[0]
        if a == 0:
            if not row.satisfied_by((ZERO,)):
                return None
            continue
        bound = row.rhs / a
        if row.rel is Rel.EQ:
            if pinned is not None and pinned != bound:
                return None
            pinned = bound
        elif a > 0:  # x <=(<) bound
            if upper is None or bound < upper or (
                bound == upper and row.rel is Rel.LT
            ):
                upper = bound
                upper_strict = row.rel is Rel.LT
        else:  # x >=(>) bound
            if lower is None or bound > lower or (
                bound == lower and row.rel is Rel.LT
            ):
                lower = bound
                lower_strict = row.rel is Rel.LT
    if pinned is not None:
        if lower is not None and (
            pinned < lower or (pinned == lower and lower_strict)
        ):
            return None
        if upper is not None and (
            pinned > upper or (pinned == upper and upper_strict)
        ):
            return None
        return (pinned,)
    if lower is None and upper is None:
        return (ZERO,)
    if lower is None:
        assert upper is not None
        return (upper - 1,)
    if upper is None:
        return (lower + 1,)
    if lower > upper:
        return None
    if lower == upper:
        if lower_strict or upper_strict:
            return None
        return (lower,)
    return ((lower + upper) / 2,)


def _solve_component(
    constraints: tuple[LinearConstraint, ...], dim: int
) -> Vector | None:
    """Feasibility core for one variable-connected subsystem (cached)."""
    cached = _FEASIBILITY_CACHE.get(constraints, _MISS)
    if cached is not _MISS:
        _LP_CACHE_HITS.inc()
        return cached
    _LP_SOLVES.inc()
    started = perf_counter()
    try:
        if TRACER.enabled:
            with TRACER.span("lp.feasible", aggregate=True) as lp_span:
                lp_span.add("rows", len(constraints))
                return _solve_component_inner(constraints, dim)
        return _solve_component_inner(constraints, dim)
    finally:
        _LP_SOLVE_SECONDS.observe(perf_counter() - started)


def _solve_component_inner(
    constraints: tuple[LinearConstraint, ...], dim: int
) -> Vector | None:
    if dim >= 2 and fastlp.filter_enabled():
        decided, point = fastlp.try_certified(constraints, dim, _exact_solve)
        if decided:
            _store_feasibility(constraints, point)
            return point
    if TRACER.enabled:
        with TRACER.span("lp.exact", aggregate=True) as exact_span:
            exact_span.add("rows", len(constraints))
            point = _exact_solve(constraints, dim)
    else:
        point = _exact_solve(constraints, dim)
    _store_feasibility(constraints, point)
    return point


def _exact_solve(
    constraints: tuple[LinearConstraint, ...], dim: int
) -> Vector | None:
    """The exact tier: interval solve in one variable, ε-simplex above.

    Also serves as the certification oracle of :mod:`repro.geometry.\
    fastlp` — the float filter hands it reduced one-variable systems and
    candidate infeasible subsystems, so it must not route back through
    the filter.
    """
    if dim == 1:
        return _solve_interval(constraints)
    has_strict = any(c.rel is Rel.LT for c in constraints)
    if not has_strict:
        result = solve_lp([ZERO] * dim, constraints)
        return (
            result.point
            if result.status is not LPStatus.INFEASIBLE
            else None
        )
    widened = _with_epsilon(constraints)
    objective = [ZERO] * dim + [ONE]
    result = solve_lp(objective, widened, maximize=True)
    if result.status is LPStatus.INFEASIBLE:
        return None
    assert result.point is not None
    epsilon = result.point[dim]
    if result.status is LPStatus.OPTIMAL and epsilon <= 0:
        return None
    return result.point[:dim]


def _store_feasibility(
    constraints: tuple[LinearConstraint, ...], point: Vector | None
) -> None:
    if len(_FEASIBILITY_CACHE) > _CACHE_LIMIT:
        _FEASIBILITY_CACHE.clear()
    _FEASIBILITY_CACHE[constraints] = point


_MISS = object()
_FEASIBILITY_CACHE: dict[tuple, Vector | None] = {}
_CACHE_LIMIT = 200_000

#: Instrumentation counters, owned by the process-wide metrics registry
#: (:mod:`repro.obs.metrics`).  Bound once: ``inc`` on the hot path is a
#: plain attribute add.
_LP_SOLVES = get_registry().counter("lp.solves")
_LP_CACHE_HITS = get_registry().counter("lp.cache_hits")

#: Latency distribution of uncached feasibility solves.  Bound once like
#: the counters; ``observe`` is one lock + a short bucket scan, measured
#: against BENCH_E2 in docs/OBSERVABILITY.md's overhead contract.
_LP_SOLVE_SECONDS = get_telemetry().histogram("lp.solve_seconds")


def lp_statistics() -> dict[str, int]:
    """Deprecated: counters of simplex solves and feasibility-cache hits.

    Thin shim over the process-wide :class:`~repro.obs.metrics.\
    MetricsRegistry` counters ``lp.solves`` / ``lp.cache_hits``; prefer
    ``repro.obs.get_registry().snapshot("lp.")``.  Kept because LP calls
    are the dominant cost of arrangement construction and the scaling
    experiments report them alongside wall-clock time.
    """
    warn_once(
        "lp_statistics",
        "lp_statistics() is deprecated; read the 'lp.*' counters via "
        "repro.obs.get_registry().snapshot('lp.') instead",
    )
    return {
        "solves": _LP_SOLVES.value,
        "cache_hits": _LP_CACHE_HITS.value,
    }


def reset_lp_statistics() -> None:
    """Deprecated: zero the LP counters (shim over the metrics registry)."""
    warn_once(
        "reset_lp_statistics",
        "reset_lp_statistics() is deprecated; use "
        "repro.obs.metrics.reset_metrics() instead",
    )
    _LP_SOLVES.reset()
    _LP_CACHE_HITS.reset()


def clear_feasibility_cache() -> None:
    """Empty the feasibility memo.

    Timing experiments call this so measurements are hermetic — without
    it, earlier tests in the same process pre-warm the cache and skew
    log-log slopes.
    """
    _FEASIBILITY_CACHE.clear()


def snapshot_feasibility_keys() -> frozenset:
    """The memo's current key set (for delta export, see below)."""
    return frozenset(_FEASIBILITY_CACHE)


def export_feasibility_entries(
    exclude: "frozenset | set" = frozenset(),
) -> dict[tuple, Vector | None]:
    """Memo entries not in ``exclude`` — a worker's own contribution.

    Parallel arrangement workers snapshot the key set they inherited
    (fork start) or started with (spawn start), enumerate their subtree,
    and export only the entries they added; the parent folds them back
    with :func:`merge_feasibility_entries` so the process ends in the
    same memo state a sequential build would have produced.
    """
    return {
        key: value
        for key, value in _FEASIBILITY_CACHE.items()
        if key not in exclude
    }


def merge_feasibility_entries(
    entries: dict[tuple, Vector | None],
) -> None:
    """Fold exported memo entries in; existing entries win, no counters."""
    for key, value in entries.items():
        if key not in _FEASIBILITY_CACHE:
            _store_feasibility(key, value)


def _variable_components(
    constraints: Sequence[LinearConstraint], dimension: int
) -> list[list[int]]:
    """Partition variable indices into constraint-connected components."""
    parent = list(range(dimension))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for constraint in constraints:
        support = [i for i, c in enumerate(constraint.coeffs) if c != 0]
        for a, b in zip(support, support[1:]):
            parent[find(a)] = find(b)
    groups: dict[int, list[int]] = {}
    for i in range(dimension):
        groups.setdefault(find(i), []).append(i)
    return list(groups.values())


def strict_feasible_point(
    constraints: Sequence[LinearConstraint], dimension: int | None = None
) -> Vector | None:
    """A rational point satisfying a mixed strict/non-strict system.

    Returns ``None`` when the system is infeasible.  Decides exactly:
    maximise the slack ε (capped at 1) added to every strict row; the
    open system has a solution iff the optimum is > 0, and the
    optimiser's point is a witness.

    The system is first split into variable-disjoint components — product
    systems (common when formulas talk about several points at once)
    then cost several small LPs instead of one big one — and component
    results are memoised, which matters enormously during sign-vector
    enumeration where the same subsystems recur.
    """
    if not constraints:
        if dimension is None:
            raise LPError("dimension required for an empty system")
        return (ZERO,) * dimension
    dim = constraints[0].dimension
    trivial_rows = [c for c in constraints if c.is_trivial()]
    for row in trivial_rows:
        if row.trivially_false():
            return None
    live = [c for c in constraints if not c.is_trivial()]
    if not live:
        return (ZERO,) * dim
    components = _variable_components(live, dim)
    point: list[Fraction] = [ZERO] * dim
    for component in components:
        rows = [
            c for c in live
            if any(c.coeffs[i] != 0 for i in component)
        ]
        if not rows:
            continue
        projected = [
            LinearConstraint(
                tuple(c.coeffs[i] for i in component), c.rel, c.rhs
            )
            for c in rows
        ]
        projected.sort(key=lambda c: (c.coeffs, c.rel.value, c.rhs))
        reduced = tuple(projected)
        witness = _solve_component(reduced, len(component))
        if witness is None:
            return None
        for local, global_index in enumerate(component):
            point[global_index] = witness[local]
    return tuple(point)


def feasible(
    constraints: Sequence[LinearConstraint], dimension: int | None = None
) -> bool:
    """Exact feasibility of a mixed strict/non-strict constraint system."""
    return strict_feasible_point(constraints, dimension) is not None
