"""Canonicalised hyperplanes and halfspaces in rational space.

A hyperplane ``a . x = b`` is stored in a *canonical* primitive-integer
form: coefficients and offset are scaled to coprime integers with the
first non-zero coefficient positive.  Canonicalisation makes hyperplane
identity purely syntactic, which is what the arrangement construction of
Section 3 needs — the set 𝕳(S) is a *set*, with duplicates arising from
different atoms collapsed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Iterable, Sequence

from repro.errors import GeometryError
from repro.geometry.linalg import Vector, as_fraction, vec_dot

ZERO = Fraction(0)


class Side(enum.IntEnum):
    """Position of a point relative to a hyperplane (paper: v_i(p))."""

    BELOW = -1
    ON = 0
    ABOVE = 1


def _canonicalise(
    coeffs: Sequence[Fraction], offset: Fraction
) -> tuple[Vector, Fraction]:
    """Scale ``(coeffs, offset)`` to primitive integers, first coeff > 0."""
    if all(c == 0 for c in coeffs):
        raise GeometryError("a hyperplane needs at least one non-zero coefficient")
    denominators = [c.denominator for c in coeffs] + [offset.denominator]
    lcm = 1
    for den in denominators:
        lcm = lcm * den // gcd(lcm, den)
    ints = [int(c * lcm) for c in coeffs]
    off = int(offset * lcm)
    divisor = 0
    for value in ints + [off]:
        divisor = gcd(divisor, abs(value))
    if divisor > 1:
        ints = [v // divisor for v in ints]
        off //= divisor
    leading = next(v for v in ints if v != 0)
    if leading < 0:
        ints = [-v for v in ints]
        off = -off
    return tuple(Fraction(v) for v in ints), Fraction(off)


@dataclass(frozen=True)
class Hyperplane:
    """The hyperplane ``normal . x = offset`` in canonical form.

    Use :meth:`make` to construct; the raw constructor expects already
    canonical data and is used internally.
    """

    normal: Vector
    offset: Fraction

    @staticmethod
    def make(coeffs: Iterable[object], offset: object) -> "Hyperplane":
        """Canonicalising constructor accepting any exact scalars."""
        normal = tuple(as_fraction(c) for c in coeffs)
        canonical_normal, canonical_offset = _canonicalise(
            normal, as_fraction(offset)
        )
        return Hyperplane(canonical_normal, canonical_offset)

    @property
    def dimension(self) -> int:
        """Ambient dimension d of the space the hyperplane lives in."""
        return len(self.normal)

    def side_of(self, point: Sequence[Fraction]) -> Side:
        """The paper's position function: +1 above, 0 on, -1 below."""
        value = vec_dot(self.normal, point)
        if value > self.offset:
            return Side.ABOVE
        if value < self.offset:
            return Side.BELOW
        return Side.ON

    def contains(self, point: Sequence[Fraction]) -> bool:
        """True iff the point lies on the hyperplane."""
        return self.side_of(point) is Side.ON

    def evaluate(self, point: Sequence[Fraction]) -> Fraction:
        """The signed value ``normal . point - offset``."""
        return vec_dot(self.normal, point) - self.offset

    def __str__(self) -> str:
        terms = [
            f"{coeff}*x{i}" for i, coeff in enumerate(self.normal) if coeff != 0
        ]
        return f"{' + '.join(terms)} = {self.offset}"


@dataclass(frozen=True)
class Halfspace:
    """One side of a hyperplane, open or closed.

    ``side`` selects the open side (:data:`Side.ABOVE` means
    ``normal . x > offset``); ``closed`` additionally includes the
    hyperplane itself.
    """

    hyperplane: Hyperplane
    side: Side
    closed: bool

    def __post_init__(self) -> None:
        if self.side is Side.ON:
            raise GeometryError("a halfspace must pick a side, not ON")

    @property
    def dimension(self) -> int:
        return self.hyperplane.dimension

    def contains(self, point: Sequence[Fraction]) -> bool:
        """Exact membership test."""
        position = self.hyperplane.side_of(point)
        if position is self.side:
            return True
        return self.closed and position is Side.ON

    def complement(self) -> "Halfspace":
        """The complementary halfspace (open ↔ closed, side flipped)."""
        flipped = Side.ABOVE if self.side is Side.BELOW else Side.BELOW
        return Halfspace(self.hyperplane, flipped, not self.closed)

    def __str__(self) -> str:
        op = {
            (Side.ABOVE, True): ">=",
            (Side.ABOVE, False): ">",
            (Side.BELOW, True): "<=",
            (Side.BELOW, False): "<",
        }[(self.side, self.closed)]
        terms = [
            f"{coeff}*x{i}"
            for i, coeff in enumerate(self.hyperplane.normal)
            if coeff != 0
        ]
        return f"{' + '.join(terms)} {op} {self.hyperplane.offset}"
