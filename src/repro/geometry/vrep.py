"""V-representation convex bodies: generator points and rays.

Appendix A of the paper builds regions as *open convex hulls* of finitely
many vertices, possibly together with open rays ``{p + a(p-q) : a > 0}``.
The open convex hull of a union of points and open rays is exactly

    { Σ λ_i p_i + Σ μ_j r_j  :  λ_i > 0, Σ λ_i = 1, μ_j > 0 }

which this module represents directly: a :class:`VPolyhedron` is a set of
generator points and ray directions plus an open/closed flag.  All
predicates (membership, closure membership, segment intersection,
closure containment) reduce to exact LP feasibility over the generator
coefficients.

Generators are canonicalised — duplicate points collapse and rays are
scaled to primitive integer directions — so syntactic equality of
canonical generators is meaningful for the decomposition's region
identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Iterable, Sequence

from repro.errors import GeometryError
from repro.geometry.fourier_motzkin import LinearConstraint, Rel
from repro.geometry.linalg import (
    Vector,
    affine_rank,
    vec_add,
    vec_scale,
    vec_sub,
)
from repro.geometry.simplex import strict_feasible_point

ZERO = Fraction(0)
ONE = Fraction(1)


def canonical_ray(direction: Sequence[Fraction]) -> Vector:
    """Scale a ray direction to a primitive integer vector (sign kept)."""
    if all(c == 0 for c in direction):
        raise GeometryError("a ray direction must be non-zero")
    lcm = 1
    for value in direction:
        lcm = lcm * value.denominator // gcd(lcm, value.denominator)
    ints = [int(v * lcm) for v in direction]
    divisor = 0
    for value in ints:
        divisor = gcd(divisor, abs(value))
    return tuple(Fraction(v // divisor) for v in ints)


@dataclass(frozen=True)
class VPolyhedron:
    """Open or closed convex hull of generator points and rays."""

    dimension: int
    points: tuple[Vector, ...]
    rays: tuple[Vector, ...]
    open_hull: bool

    @staticmethod
    def make(
        points: Iterable[Sequence[Fraction]],
        rays: Iterable[Sequence[Fraction]] = (),
        open_hull: bool = True,
    ) -> "VPolyhedron":
        """Canonicalising constructor (dedupes points, normalises rays)."""
        point_list = [tuple(p) for p in points]
        if not point_list:
            raise GeometryError("a V-polyhedron needs at least one point")
        dimension = len(point_list[0])
        if any(len(p) != dimension for p in point_list):
            raise GeometryError("generator points must share one dimension")
        unique_points = tuple(sorted(set(point_list)))
        ray_list = [canonical_ray(r) for r in rays]
        if any(len(r) != dimension for r in ray_list):
            raise GeometryError("ray dimensions must match point dimension")
        unique_rays = tuple(sorted(set(ray_list)))
        return VPolyhedron(dimension, unique_points, unique_rays, open_hull)

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    def is_bounded(self) -> bool:
        """Bounded iff there are no rays."""
        return not self.rays

    def affine_dimension(self) -> int:
        """Dimension of the affine support (paper: dimension of a region)."""
        base = self.points[0]
        spanning = list(self.points) + [vec_add(base, r) for r in self.rays]
        return affine_rank(spanning)

    def sample_point(self) -> Vector:
        """A rational point of the body (barycentre plus ray offsets)."""
        k = len(self.points)
        weight = Fraction(1, k)
        total = (ZERO,) * self.dimension
        for point in self.points:
            total = vec_add(total, vec_scale(weight, point))
        for ray in self.rays:
            total = vec_add(total, ray)
        return total

    def closure(self) -> "VPolyhedron":
        """The closed hull ``conv(points) + cone(rays)``."""
        return VPolyhedron(self.dimension, self.points, self.rays, False)

    # ------------------------------------------------------------------
    # LP-backed predicates
    # ------------------------------------------------------------------
    def _membership_system(
        self, target: Sequence[Fraction], open_hull: bool
    ) -> list[LinearConstraint]:
        """Constraints over (λ, μ) expressing ``target`` ∈ hull."""
        n_points = len(self.points)
        n_rays = len(self.rays)
        total = n_points + n_rays
        system: list[LinearConstraint] = []
        for axis in range(self.dimension):
            coeffs = [p[axis] for p in self.points] + [r[axis] for r in self.rays]
            system.append(
                LinearConstraint(tuple(coeffs), Rel.EQ, target[axis])
            )
        system.append(
            LinearConstraint(
                (ONE,) * n_points + (ZERO,) * n_rays, Rel.EQ, ONE
            )
        )
        bound = Rel.LT if open_hull else Rel.LE
        for j in range(total):
            coeffs = tuple(
                -ONE if i == j else ZERO for i in range(total)
            )
            system.append(LinearConstraint(coeffs, bound, ZERO))
        return system

    def contains(self, point: Sequence[Fraction]) -> bool:
        """Exact membership in the (open or closed) hull."""
        if len(point) != self.dimension:
            raise GeometryError("point dimension mismatch")
        system = self._membership_system(point, self.open_hull)
        return strict_feasible_point(system) is not None

    def closure_contains(self, point: Sequence[Fraction]) -> bool:
        """Membership in the closed hull."""
        system = self._membership_system(point, False)
        return strict_feasible_point(system) is not None

    def ray_in_recession_cone(self, direction: Sequence[Fraction]) -> bool:
        """Is ``direction`` in cone(rays)?  (Recession cone of the closure.)"""
        if not self.rays:
            return all(c == 0 for c in direction)
        n_rays = len(self.rays)
        system: list[LinearConstraint] = []
        for axis in range(self.dimension):
            coeffs = tuple(r[axis] for r in self.rays)
            system.append(LinearConstraint(coeffs, Rel.EQ, direction[axis]))
        for j in range(n_rays):
            coeffs = tuple(-ONE if i == j else ZERO for i in range(n_rays))
            system.append(LinearConstraint(coeffs, Rel.LE, ZERO))
        return strict_feasible_point(system) is not None

    def subset_of_closure(self, other: "VPolyhedron") -> bool:
        """True iff this body lies inside the closure of ``other``.

        By convexity this holds iff every generator point lies in the
        closed hull of ``other`` and every ray direction lies in its
        recession cone.
        """
        if other.dimension != self.dimension:
            raise GeometryError("dimension mismatch")
        if not all(other.closure_contains(p) for p in self.points):
            return False
        return all(other.ray_in_recession_cone(r) for r in self.rays)

    def meets_segment(
        self,
        start: Sequence[Fraction],
        end: Sequence[Fraction],
        include_endpoints: bool = True,
    ) -> bool:
        """Does the segment [start, end] intersect this hull?

        With ``include_endpoints=False`` the open segment is used.  The
        test is one LP over (t, λ, μ): ``start + t (end-start)`` must be a
        hull combination with ``0 (<)= t (<)= 1``.
        """
        n_points = len(self.points)
        n_rays = len(self.rays)
        total = 1 + n_points + n_rays  # t first, then λ, then μ
        direction = vec_sub(end, start)
        system: list[LinearConstraint] = []
        for axis in range(self.dimension):
            coeffs = (
                (-direction[axis],)
                + tuple(p[axis] for p in self.points)
                + tuple(r[axis] for r in self.rays)
            )
            system.append(LinearConstraint(coeffs, Rel.EQ, start[axis]))
        system.append(
            LinearConstraint(
                (ZERO,) + (ONE,) * n_points + (ZERO,) * n_rays, Rel.EQ, ONE
            )
        )
        generator_bound = Rel.LT if self.open_hull else Rel.LE
        for j in range(n_points + n_rays):
            coeffs = tuple(
                -ONE if i == 1 + j else ZERO for i in range(total)
            )
            system.append(LinearConstraint(coeffs, generator_bound, ZERO))
        t_bound = Rel.LE if include_endpoints else Rel.LT
        t_low = tuple(-ONE if i == 0 else ZERO for i in range(total))
        t_high = tuple(ONE if i == 0 else ZERO for i in range(total))
        system.append(LinearConstraint(t_low, t_bound, ZERO))
        system.append(LinearConstraint(t_high, t_bound, ONE))
        return strict_feasible_point(system) is not None

    def meets_constraints(
        self, constraints: "Sequence[LinearConstraint]"
    ) -> bool:
        """Does the hull intersect an H-polyhedron?

        A constraint ``a . x REL b`` applied to the hull point
        ``x = Σ λ_i p_i + Σ μ_j r_j`` is linear in (λ, μ), so intersection
        is one exact LP over the generator coefficients.
        """
        n_points = len(self.points)
        n_rays = len(self.rays)
        total = n_points + n_rays
        system = self._membership_system_free()
        for row in constraints:
            if row.dimension != self.dimension:
                raise GeometryError("constraint dimension mismatch")
            coeffs = tuple(
                sum(
                    (row.coeffs[axis] * gen[axis]
                     for axis in range(self.dimension)),
                    ZERO,
                )
                for gen in (*self.points, *self.rays)
            )
            assert len(coeffs) == total
            system.append(LinearConstraint(coeffs, row.rel, row.rhs))
        return strict_feasible_point(system) is not None

    def _membership_system_free(self) -> list[LinearConstraint]:
        """The (λ, μ) simplex constraints without a target point."""
        n_points = len(self.points)
        n_rays = len(self.rays)
        total = n_points + n_rays
        system: list[LinearConstraint] = [
            LinearConstraint(
                (ONE,) * n_points + (ZERO,) * n_rays, Rel.EQ, ONE
            )
        ]
        bound = Rel.LT if self.open_hull else Rel.LE
        for j in range(total):
            coeffs = tuple(-ONE if i == j else ZERO for i in range(total))
            system.append(LinearConstraint(coeffs, bound, ZERO))
        return system

    def generator_key(self) -> tuple:
        """Canonical identity key (sorted points, sorted primitive rays)."""
        return (self.points, self.rays, self.open_hull)

    def __str__(self) -> str:
        kind = "openconv" if self.open_hull else "conv"
        points = ", ".join(str(tuple(map(str, p))) for p in self.points)
        if self.rays:
            rays = ", ".join(str(tuple(map(str, r))) for r in self.rays)
            return f"{kind}(points=[{points}], rays=[{rays}])"
        return f"{kind}([{points}])"
