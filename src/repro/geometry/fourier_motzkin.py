"""Vector-form linear constraints and Fourier–Motzkin elimination.

This module defines the library's canonical *vector form* of a linear
constraint — coefficients over positional variables, a relation and a right
hand side — together with exact Fourier–Motzkin elimination of a variable
from a conjunction of such constraints.  Fourier–Motzkin is the engine
behind quantifier elimination for first-order logic over (ℝ, <, +)
(Section 2 of the paper relies on this classical fact) and behind several
geometric predicates in Appendix A.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from repro.errors import DimensionMismatchError
from repro.geometry.linalg import Vector, as_fraction, vec_dot
from repro.obs.metrics import get_registry
from repro.obs.tracing import TRACER

ZERO = Fraction(0)

#: Elimination telemetry (Giusti–Heintz-style phase accounting): how many
#: variables were projected away and how many rows the combinations made.
_FM_ELIMINATED = get_registry().counter("fm.eliminated_variables")
_FM_GENERATED = get_registry().counter("fm.generated_constraints")


class Rel(enum.Enum):
    """Relation of a constraint ``a . x REL b``.

    Only ``<=``, ``<`` and ``=`` are stored; ``>=``/``>`` are normalised by
    negating both sides at construction time, mirroring the paper's
    convention of using {<, <=, =, >=, >} without negation.
    """

    LE = "<="
    LT = "<"
    EQ = "="

    @property
    def is_strict(self) -> bool:
        return self is Rel.LT

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class LinearConstraint:
    """An exact linear constraint ``coeffs . x REL rhs`` in vector form."""

    coeffs: Vector
    rel: Rel
    rhs: Fraction

    @staticmethod
    def make(
        coeffs: Iterable[object], rel: Rel | str, rhs: object
    ) -> "LinearConstraint":
        """Build a constraint, accepting ``>=``/``>`` and coercing scalars.

        ``>=`` and ``>`` are normalised to ``<=`` and ``<`` by flipping
        signs, so every stored constraint uses only {<=, <, =}.
        """
        coeff_vec = tuple(as_fraction(c) for c in coeffs)
        rhs_frac = as_fraction(rhs)
        if isinstance(rel, Rel):
            return LinearConstraint(coeff_vec, rel, rhs_frac)
        if rel in ("<=", "=<"):
            return LinearConstraint(coeff_vec, Rel.LE, rhs_frac)
        if rel == "<":
            return LinearConstraint(coeff_vec, Rel.LT, rhs_frac)
        if rel in ("=", "=="):
            return LinearConstraint(coeff_vec, Rel.EQ, rhs_frac)
        if rel in (">=", "=>"):
            return LinearConstraint(
                tuple(-c for c in coeff_vec), Rel.LE, -rhs_frac
            )
        if rel == ">":
            return LinearConstraint(
                tuple(-c for c in coeff_vec), Rel.LT, -rhs_frac
            )
        raise ValueError(f"unknown relation {rel!r}")

    @property
    def dimension(self) -> int:
        return len(self.coeffs)

    def satisfied_by(self, point: Sequence[Fraction]) -> bool:
        """Exact membership test of a rational point."""
        value = vec_dot(self.coeffs, point)
        if self.rel is Rel.LE:
            return value <= self.rhs
        if self.rel is Rel.LT:
            return value < self.rhs
        return value == self.rhs

    def is_trivial(self) -> bool:
        """True iff the constraint has all-zero coefficients."""
        return all(c == 0 for c in self.coeffs)

    def trivially_true(self) -> bool:
        """For all-zero coefficients: does ``0 REL rhs`` hold?"""
        if not self.is_trivial():
            return False
        return self.satisfied_by((ZERO,) * self.dimension)

    def trivially_false(self) -> bool:
        """For all-zero coefficients: does ``0 REL rhs`` fail?"""
        return self.is_trivial() and not self.trivially_true()

    def integer_form(self) -> tuple[tuple[int, ...], int]:
        """The row as coprime integers ``(coeffs, rhs)``, cached.

        Both sides are multiplied by the (positive) lcm of the
        denominators and divided by the gcd of the resulting integers, so
        the relation is preserved and repeated consumers — the certified
        float LP filter above all — pay the normalisation once per
        constraint instead of one gcd per arithmetic operation.
        """
        cached = self.__dict__.get("_integer_form")
        if cached is not None:
            return cached
        scale = math.lcm(
            self.rhs.denominator, *(c.denominator for c in self.coeffs)
        )
        ints = tuple(c.numerator * (scale // c.denominator) for c in self.coeffs)
        rhs_int = self.rhs.numerator * (scale // self.rhs.denominator)
        common = math.gcd(rhs_int, *ints)
        if common > 1:
            ints = tuple(c // common for c in ints)
            rhs_int //= common
        form = (ints, rhs_int)
        object.__setattr__(self, "_integer_form", form)
        return form

    def scaled(self, factor: Fraction) -> "LinearConstraint":
        """Multiply both sides by a *positive* rational factor."""
        if factor <= 0:
            raise ValueError("scaling factor must be positive")
        return LinearConstraint(
            tuple(factor * c for c in self.coeffs), self.rel, factor * self.rhs
        )

    def __str__(self) -> str:
        parts = []
        for index, coeff in enumerate(self.coeffs):
            if coeff == 0:
                continue
            parts.append(f"{coeff}*x{index}")
        lhs = " + ".join(parts) if parts else "0"
        return f"{lhs} {self.rel.value} {self.rhs}"


def constraints_dimension(constraints: Sequence[LinearConstraint]) -> int:
    """Common ambient dimension of a constraint system (must agree)."""
    if not constraints:
        raise ValueError("cannot infer the dimension of an empty system")
    dims = {c.dimension for c in constraints}
    if len(dims) != 1:
        raise DimensionMismatchError(f"mixed constraint dimensions: {sorted(dims)}")
    return dims.pop()


def eliminate_variable(
    constraints: Sequence[LinearConstraint], index: int
) -> list[LinearConstraint]:
    """Project a conjunction of constraints along variable ``index``.

    Returns a system over the *same* ambient dimension whose variable
    ``index`` is unconstrained (all output coefficients at ``index`` are
    zero) and which is satisfiable by ``(x_0, .., x_{index-1}, *,
    x_{index+1}, ..)`` exactly when some value of ``x_index`` satisfies the
    input.  This is classical Fourier–Motzkin extended with equalities
    (used for substitution first) and strict inequalities (a combined bound
    is strict iff either parent is strict).
    """
    if not constraints:
        return []
    dimension = constraints_dimension(constraints)
    if not 0 <= index < dimension:
        raise IndexError(f"variable index {index} out of range for dim {dimension}")

    # If an equality mentions the variable, substitute it away: solve the
    # equality for x_index and add the rewritten forms of every other
    # constraint.  This is both faster and avoids the quadratic blow-up.
    pivot = next(
        (c for c in constraints if c.rel is Rel.EQ and c.coeffs[index] != 0), None
    )
    if pivot is not None:
        _FM_ELIMINATED.inc()
        rewritten = [
            _substitute_equality(c, pivot, index)
            for c in constraints
            if c is not pivot
        ]
        _FM_GENERATED.inc(len(rewritten))
        return rewritten
    _FM_ELIMINATED.inc()

    lower: list[tuple[LinearConstraint, Fraction]] = []  # a.x >= expr forms
    upper: list[tuple[LinearConstraint, Fraction]] = []
    unrelated: list[LinearConstraint] = []
    for constraint in constraints:
        coeff = constraint.coeffs[index]
        if coeff == 0:
            unrelated.append(constraint)
        elif coeff > 0:
            upper.append((constraint, coeff))
        else:
            lower.append((constraint, coeff))

    combined: list[LinearConstraint] = []
    for low, low_coeff in lower:
        for high, high_coeff in upper:
            # low: c_l * x + r_l REL_l b_l with c_l < 0  => x >= (b_l - r_l)/c_l
            # high: c_h * x + r_h REL_h b_h with c_h > 0 => x <= (b_h - r_h)/c_h
            # Combine: c_h * (b_l - r_l(x)) >= c_l * (b_h - r_h(x)) flipped..
            # Implemented by the standard positive combination that cancels
            # the x_index coefficient:
            scale_low = high_coeff
            scale_high = -low_coeff
            coeffs = tuple(
                scale_low * cl + scale_high * ch
                for cl, ch in zip(low.coeffs, high.coeffs)
            )
            rhs = scale_low * low.rhs + scale_high * high.rhs
            rel = Rel.LT if (low.rel is Rel.LT or high.rel is Rel.LT) else Rel.LE
            combined.append(LinearConstraint(coeffs, rel, rhs))

    _FM_GENERATED.inc(len(combined))
    if TRACER.enabled:
        fm_span = TRACER.current()
        fm_span.add("fm.generated", len(combined))
    result = unrelated + combined
    return [_zero_out(c, index) for c in result]


def _zero_out(constraint: LinearConstraint, index: int) -> LinearConstraint:
    """Force the eliminated coefficient to literal zero (it already is)."""
    if constraint.coeffs[index] == 0:
        return constraint
    raise AssertionError("eliminated variable still has a non-zero coefficient")


def _substitute_equality(
    constraint: LinearConstraint, equality: LinearConstraint, index: int
) -> LinearConstraint:
    """Rewrite ``constraint`` using ``equality`` solved for ``x_index``."""
    pivot_coeff = equality.coeffs[index]
    # x_index = (equality.rhs - sum_{j != index} e_j x_j) / pivot_coeff
    factor = constraint.coeffs[index] / pivot_coeff
    coeffs = tuple(
        (c - factor * e) if j != index else ZERO
        for j, (c, e) in enumerate(zip(constraint.coeffs, equality.coeffs))
    )
    rhs = constraint.rhs - factor * equality.rhs
    return LinearConstraint(coeffs, constraint.rel, rhs)


def predicted_blowup(
    constraints: Sequence[LinearConstraint], index: int
) -> int:
    """Predicted row-count change of eliminating one variable.

    An equality row makes elimination a substitution: the system
    shrinks by the equality row and every other mention simplifies, so
    it scores ``-1 - mentions`` (always preferred over an equal-size
    inequality elimination).  Otherwise Fourier–Motzkin replaces the
    ``lower + upper`` rows mentioning the variable by ``lower × upper``
    combinations — the classic quadratic blowup this orderer bounds.
    """
    lower = upper = mentions = 0
    has_equality = False
    for constraint in constraints:
        coeff = constraint.coeffs[index]
        if coeff == 0:
            continue
        mentions += 1
        if constraint.rel is Rel.EQ:
            has_equality = True
        elif coeff > 0:
            upper += 1
        else:
            lower += 1
    if has_equality:
        return -1 - mentions
    return lower * upper - (lower + upper)


def elimination_order(
    constraints: Sequence[LinearConstraint], indices: Iterable[int]
) -> list[int]:
    """Order variables by predicted constraint blowup, smallest first.

    Greedy min-fill on the coefficient occurrence graph: at each step
    pick the variable whose elimination generates the fewest combined
    rows on the *current* system (equalities first — substitution never
    grows the system), simulating only the row bookkeeping, never the
    arithmetic.  Deterministic; ties break on the variable index.
    """
    remaining = list(dict.fromkeys(indices))
    system = list(constraints)
    order: list[int] = []
    while remaining:
        best = min(
            remaining,
            key=lambda i: (predicted_blowup(system, i), i),
        )
        remaining.remove(best)
        order.append(best)
        system = simplify_system(eliminate_variable(system, best)) or []
    return order


def eliminate_variables(
    constraints: Sequence[LinearConstraint],
    indices: Iterable[int],
    order: str = "given",
) -> list[LinearConstraint]:
    """Eliminate several variables in sequence, dropping trivial output.

    ``order="auto"`` lets :func:`elimination_order` pick the sequence
    by predicted blowup (the optimizer's choice); ``"given"`` keeps the
    caller's order.  Both produce equivalent projections — the order
    only changes intermediate system sizes and the (equivalent) output
    representation.
    """
    if order not in ("given", "auto"):
        raise ValueError(
            f"order must be 'given' or 'auto', got {order!r}"
        )
    system = list(constraints)
    if order == "auto":
        indices = elimination_order(system, indices)
    with TRACER.span("fm.eliminate", aggregate=True):
        return _eliminate_variables_inner(system, indices, constraints)


def _eliminate_variables_inner(
    system: list[LinearConstraint],
    indices: Iterable[int],
    constraints: Sequence[LinearConstraint],
) -> list[LinearConstraint]:
    for index in indices:
        system = eliminate_variable(system, index)
        system = simplify_system(system)
        if system is None:
            # Represent an infeasible projection by a canonical false row.
            dimension = constraints[0].dimension if constraints else 0
            return [
                LinearConstraint((ZERO,) * dimension, Rel.LT, ZERO)
            ]
    return system


def simplify_system(
    constraints: Sequence[LinearConstraint],
) -> list[LinearConstraint] | None:
    """Drop trivially-true rows and deduplicate; ``None`` if trivially false."""
    seen: set[tuple] = set()
    output: list[LinearConstraint] = []
    for constraint in constraints:
        if constraint.is_trivial():
            if constraint.trivially_false():
                return None
            continue
        key = (constraint.coeffs, constraint.rel, constraint.rhs)
        if key in seen:
            continue
        seen.add(key)
        output.append(constraint)
    return output
