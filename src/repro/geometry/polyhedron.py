"""H-representation polyhedra with exact predicates.

Following Section 3 of the paper, a *polyhedron* here is the intersection
of finitely many open or closed halfspaces (plus hyperplanes), i.e. a
conjunction of linear constraints with relations in {<=, <, =}.  The class
supports the predicates the arrangement and Appendix-A constructions
need, all decided exactly:

* feasibility and rational witness points (strict rows handled via the
  ε-maximisation LP),
* the affine hull, dimension, and relative interior points,
* boundedness (the closure of a non-empty mixed system is its relaxation,
  so coordinate-wise LPs decide it),
* vertices of the closure (d-subsets of constraint hyperplanes meeting in
  a single point inside the closure — exactly the paper's ``vert(ψ)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from itertools import combinations
from typing import Iterable, Sequence

from repro.errors import GeometryError, SingularSystemError
from repro.geometry.fourier_motzkin import LinearConstraint, Rel
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.linalg import (
    Vector,
    matrix_rank,
    solve_unique,
    vec_dot,
)
from repro.geometry.simplex import LPStatus, solve_lp, strict_feasible_point

ZERO = Fraction(0)
ONE = Fraction(1)


@dataclass(frozen=True)
class Polyhedron:
    """A conjunction of linear constraints over ``dimension`` variables."""

    dimension: int
    constraints: tuple[LinearConstraint, ...]
    _cache: dict = field(
        default_factory=dict, compare=False, repr=False, hash=False
    )

    @staticmethod
    def make(
        dimension: int, constraints: Iterable[LinearConstraint]
    ) -> "Polyhedron":
        """Validating constructor."""
        rows = tuple(constraints)
        for row in rows:
            if row.dimension != dimension:
                raise GeometryError(
                    f"constraint dimension {row.dimension} != {dimension}"
                )
        return Polyhedron(dimension, rows)

    @staticmethod
    def universe(dimension: int) -> "Polyhedron":
        """All of ℝ^dimension."""
        return Polyhedron(dimension, ())

    # ------------------------------------------------------------------
    # Membership and basic predicates
    # ------------------------------------------------------------------
    def contains(self, point: Sequence[Fraction]) -> bool:
        """Exact membership test of a rational point."""
        if len(point) != self.dimension:
            raise GeometryError("point dimension mismatch")
        return all(c.satisfied_by(point) for c in self.constraints)

    def feasible_point(self) -> Vector | None:
        """A rational point of the polyhedron, or ``None`` if empty."""
        if "feasible_point" not in self._cache:
            self._cache["feasible_point"] = strict_feasible_point(
                self.constraints, self.dimension
            )
        return self._cache["feasible_point"]

    def is_empty(self) -> bool:
        """True iff the polyhedron contains no point."""
        return self.feasible_point() is None

    def intersect(self, other: "Polyhedron") -> "Polyhedron":
        """Intersection with another polyhedron of equal dimension."""
        if other.dimension != self.dimension:
            raise GeometryError("cannot intersect polyhedra of different dims")
        return Polyhedron(self.dimension, self.constraints + other.constraints)

    def with_constraints(
        self, extra: Iterable[LinearConstraint]
    ) -> "Polyhedron":
        """A copy with additional constraints."""
        return Polyhedron.make(self.dimension, self.constraints + tuple(extra))

    def closure(self) -> "Polyhedron":
        """Relax every strict row.

        For a *non-empty* mixed system this is exactly the topological
        closure; for an empty one it may be larger, so callers check
        emptiness first where it matters.
        """
        relaxed = tuple(
            LinearConstraint(c.coeffs, Rel.LE, c.rhs) if c.rel is Rel.LT else c
            for c in self.constraints
        )
        return Polyhedron(self.dimension, relaxed)

    # ------------------------------------------------------------------
    # Affine hull, dimension, relative interior
    # ------------------------------------------------------------------
    def implicit_equalities(self) -> tuple[LinearConstraint, ...]:
        """Equality rows plus inequality rows forced to equality.

        An inequality ``a.x <= b`` is an implicit equality when the system
        with that row strengthened to ``a.x < b`` becomes infeasible.
        Strict rows can never be implicit equalities (the system would be
        empty).  Result is cached.
        """
        if "implicit_eq" in self._cache:
            return self._cache["implicit_eq"]
        equalities: list[LinearConstraint] = []
        if not self.is_empty():
            for index, row in enumerate(self.constraints):
                if row.rel is Rel.EQ:
                    equalities.append(row)
                elif row.rel is Rel.LE:
                    strengthened = list(self.constraints)
                    strengthened[index] = LinearConstraint(
                        row.coeffs, Rel.LT, row.rhs
                    )
                    if strict_feasible_point(strengthened, self.dimension) is None:
                        equalities.append(
                            LinearConstraint(row.coeffs, Rel.EQ, row.rhs)
                        )
        result = tuple(equalities)
        self._cache["implicit_eq"] = result
        return result

    def affine_dimension(self) -> int:
        """Dimension of the affine hull; -1 for the empty polyhedron.

        This matches the paper's notion: the dimension of a face/region is
        the dimension of its affine support.
        """
        if self.is_empty():
            return -1
        equalities = self.implicit_equalities()
        if not equalities:
            return self.dimension
        rank = matrix_rank([list(eq.coeffs) for eq in equalities])
        return self.dimension - rank

    def relative_interior_point(self) -> Vector | None:
        """A point in the relative interior (w.r.t. the affine support)."""
        if self.is_empty():
            return None
        equalities = self.implicit_equalities()
        equality_keys = {(eq.coeffs, eq.rhs) for eq in equalities}
        system: list[LinearConstraint] = list(equalities)
        for row in self.constraints:
            if row.rel is Rel.EQ:
                continue
            if (row.coeffs, row.rhs) in equality_keys and row.rel is Rel.LE:
                continue
            system.append(LinearConstraint(row.coeffs, Rel.LT, row.rhs))
        return strict_feasible_point(system, self.dimension)

    # ------------------------------------------------------------------
    # Boundedness and extent
    # ------------------------------------------------------------------
    def extent(self, direction: Sequence[Fraction]) -> tuple[
        Fraction | None, Fraction | None
    ]:
        """(min, max) of ``direction . x`` over the closure; None = infinite.

        Empty polyhedra raise :class:`GeometryError` — extent of nothing is
        meaningless and a silent answer would hide bugs.
        """
        if self.is_empty():
            raise GeometryError("extent of an empty polyhedron")
        closed = self.closure().constraints
        low = solve_lp(list(direction), closed, maximize=False)
        high = solve_lp(list(direction), closed, maximize=True)
        low_value = low.value if low.status is LPStatus.OPTIMAL else None
        high_value = high.value if high.status is LPStatus.OPTIMAL else None
        return low_value, high_value

    def is_bounded(self) -> bool:
        """True iff the polyhedron fits in some hypercube (paper, §3).

        The empty polyhedron is bounded.  Decided by 2d coordinate LPs on
        the closure.
        """
        if "is_bounded" in self._cache:
            return self._cache["is_bounded"]
        bounded = True
        if not self.is_empty():
            for axis in range(self.dimension):
                direction = [ONE if j == axis else ZERO for j in range(self.dimension)]
                low, high = self.extent(direction)
                if low is None or high is None:
                    bounded = False
                    break
        self._cache["is_bounded"] = bounded
        return bounded

    def recession_ray_contains(self, point: Sequence[Fraction],
                               direction: Sequence[Fraction]) -> bool:
        """True iff ``{point + a*direction : a >= 0}`` lies in the closure.

        Used by Appendix A's ``up(ψ)`` construction.  The ray lies in the
        closed polyhedron iff the point does and the direction is in the
        recession cone (every inequality's normal has non-positive inner
        product with it; equalities require zero).
        """
        closed = self.closure()
        if not closed.contains(point):
            return False
        for row in closed.constraints:
            slope = vec_dot(row.coeffs, direction)
            if row.rel is Rel.EQ and slope != 0:
                return False
            if row.rel is Rel.LE and slope > 0:
                return False
        return True

    # ------------------------------------------------------------------
    # Vertices
    # ------------------------------------------------------------------
    def constraint_hyperplanes(self) -> list[Hyperplane]:
        """The paper's 𝕳: boundary hyperplanes of all constraints, deduped."""
        seen: set[Hyperplane] = set()
        planes: list[Hyperplane] = []
        for row in self.constraints:
            if row.is_trivial():
                continue
            plane = Hyperplane.make(row.coeffs, row.rhs)
            if plane not in seen:
                seen.add(plane)
                planes.append(plane)
        return planes

    def vertices(self) -> list[Vector]:
        """Vertices of the closure, via the paper's ``vert(ψ)`` recipe.

        Every d-subset of constraint hyperplanes meeting in exactly one
        point contained in the closure contributes that point.  For a
        conjunction of atoms that all hold on the polyhedron this yields
        exactly the extreme points of the closure (see module docstring of
        :mod:`repro.regions.nc1` for the argument).
        """
        if "vertices" in self._cache:
            return self._cache["vertices"]
        planes = self.constraint_hyperplanes()
        closed = self.closure()
        found: list[Vector] = []
        seen: set[Vector] = set()
        if not self.is_empty():
            for subset in combinations(planes, self.dimension):
                matrix = [list(h.normal) for h in subset]
                rhs = [h.offset for h in subset]
                try:
                    point = solve_unique(matrix, rhs)
                except SingularSystemError:
                    continue
                if point not in seen and closed.contains(point):
                    seen.add(point)
                    found.append(point)
        found.sort()
        self._cache["vertices"] = found
        return found

    def meets_segment(
        self,
        start: Sequence[Fraction],
        end: Sequence[Fraction],
        include_endpoints: bool = True,
    ) -> bool:
        """Does the segment [start, end] intersect this polyhedron?

        Substituting ``x = start + t (end - start)`` turns every constraint
        into a one-variable constraint over ``t``; the segment meets the
        polyhedron iff the resulting 1-D system (with ``0 (<)= t (<)= 1``)
        is feasible.  Strict constraints are handled exactly.
        """
        direction = tuple(e - s for s, e in zip(start, end))
        system: list[LinearConstraint] = []
        for row in self.constraints:
            slope = vec_dot(row.coeffs, direction)
            offset = vec_dot(row.coeffs, start)
            system.append(
                LinearConstraint((slope,), row.rel, row.rhs - offset)
            )
        bound = Rel.LE if include_endpoints else Rel.LT
        system.append(LinearConstraint((-ONE,), bound, ZERO))
        system.append(LinearConstraint((ONE,), bound, ONE))
        return strict_feasible_point(system) is not None

    def relative_interior(self) -> "Polyhedron":
        """The relative interior as a polyhedron.

        Implicit equalities stay equalities; every other inequality is
        strengthened to strict.  Empty input yields an empty polyhedron.
        """
        if self.is_empty():
            return self
        equalities = self.implicit_equalities()
        equality_keys = {(eq.coeffs, eq.rhs) for eq in equalities}
        rows: list[LinearConstraint] = list(equalities)
        for row in self.constraints:
            if row.rel is Rel.EQ:
                continue
            if (row.coeffs, row.rhs) in equality_keys and row.rel is Rel.LE:
                continue
            rows.append(LinearConstraint(row.coeffs, Rel.LT, row.rhs))
        return Polyhedron(self.dimension, tuple(rows))

    def __str__(self) -> str:
        if not self.constraints:
            return f"R^{self.dimension}"
        return " & ".join(str(c) for c in self.constraints)
