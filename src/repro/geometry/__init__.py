"""Exact rational computational geometry substrate.

Everything in this package computes over :class:`fractions.Fraction`; no
floating point enters any semantic path.  The package provides the
geometric machinery the paper's constructions rest on:

* :mod:`repro.geometry.linalg` — Gaussian elimination, rank, kernels and
  affine hulls over the rationals.
* :mod:`repro.geometry.hyperplane` — canonicalised hyperplanes and
  halfspaces.
* :mod:`repro.geometry.simplex` — an exact two-phase simplex LP solver
  (Bland's rule) with strict-inequality feasibility.
* :mod:`repro.geometry.fastlp` — the certified floating-point feasibility
  filter in front of the exact solver (``REPRO_LP_MODE`` / ``--lp-mode``);
  float answers are certified with exact arithmetic, so no float ever
  enters a semantic path here either.
* :mod:`repro.geometry.fourier_motzkin` — Fourier–Motzkin elimination for
  systems of linear constraints.
* :mod:`repro.geometry.polyhedron` — H-representation polyhedra:
  feasibility, relative interior points, dimension, boundedness, vertices.
* :mod:`repro.geometry.vrep` — V-representation convex bodies (points and
  rays, open or closed hulls) used by the Appendix-A decomposition.
"""

from repro.geometry.fastlp import get_lp_mode, lp_mode, set_lp_mode
from repro.geometry.fourier_motzkin import LinearConstraint, Rel, eliminate_variable
from repro.geometry.hyperplane import Halfspace, Hyperplane, Side
from repro.geometry.linalg import (
    affine_hull_equations,
    affine_rank,
    gaussian_elimination,
    matrix_rank,
    solve_linear_system,
)
from repro.geometry.conversion import (
    extreme_rays,
    lineality_basis,
    to_vrep,
)
from repro.geometry.polyhedron import Polyhedron
from repro.geometry.simplex import (
    LPResult,
    LPStatus,
    lp_statistics,
    reset_lp_statistics,
    solve_lp,
)
from repro.geometry.vrep import VPolyhedron

__all__ = [
    "LinearConstraint",
    "Rel",
    "eliminate_variable",
    "Halfspace",
    "Hyperplane",
    "Side",
    "affine_hull_equations",
    "affine_rank",
    "gaussian_elimination",
    "matrix_rank",
    "solve_linear_system",
    "Polyhedron",
    "LPResult",
    "LPStatus",
    "get_lp_mode",
    "lp_mode",
    "set_lp_mode",
    "lp_statistics",
    "reset_lp_statistics",
    "solve_lp",
    "VPolyhedron",
    "extreme_rays",
    "lineality_basis",
    "to_vrep",
]
