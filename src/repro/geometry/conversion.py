"""H-representation → V-representation conversion.

Converts a polyhedron given by constraints into generators: the
vertices of its closure plus the extreme rays of its recession cone
(Minkowski–Weyl).  Used to move between the arrangement world
(H-representations from sign vectors) and the Appendix-A world
(V-representations of open hulls), and by the convex-closure
extensions.

Vertices come from :meth:`repro.geometry.polyhedron.Polyhedron.vertices`
(d-subsets of constraint hyperplanes meeting in a closure point).
Extreme rays are computed analogously one dimension down: a direction r
of the recession cone {x : Ax ≤ 0, Ex = 0} is extreme iff the rows
tight at r have rank d−1; candidates are kernel directions of
(d−1)-subsets of rows, checked for cone membership, canonicalised to
primitive integer vectors and deduplicated (both orientations are
tested independently, so lines contribute two opposite rays).

The conversion requires a *pointed* situation to be meaningful as a
vertex/ray pair; for polyhedra containing lines (no vertices) the
function falls back to a generator pair (point, spanning rays) that
still satisfies closure(P) = conv(points) + cone(rays) — tested by
membership sampling.
"""

from __future__ import annotations

import itertools
from fractions import Fraction

from repro.errors import GeometryError
from repro.geometry.fourier_motzkin import LinearConstraint, Rel
from repro.geometry.linalg import (
    Vector,
    kernel_basis,
    matrix_rank,
    vec_dot,
)
from repro.geometry.polyhedron import Polyhedron
from repro.geometry.vrep import VPolyhedron, canonical_ray

ZERO = Fraction(0)


def recession_cone_rows(poly: Polyhedron) -> list[LinearConstraint]:
    """The homogenised system: Ax ≤ 0 / Ex = 0 over the same dimension."""
    rows = []
    for constraint in poly.closure().constraints:
        rel = Rel.EQ if constraint.rel is Rel.EQ else Rel.LE
        rows.append(LinearConstraint(constraint.coeffs, rel, ZERO))
    return rows


def _in_cone(rows: list[LinearConstraint], direction: Vector) -> bool:
    return all(row.satisfied_by(direction) for row in rows)


def lineality_basis(poly: Polyhedron) -> list[Vector]:
    """A basis of the lineality space (directions whose whole line stays
    inside the closure)."""
    normals = [
        list(row.coeffs)
        for row in poly.closure().constraints
        if not row.is_trivial()
    ]
    if not normals:
        return [
            tuple(
                Fraction(1) if i == j else ZERO
                for j in range(poly.dimension)
            )
            for i in range(poly.dimension)
        ]
    return [tuple(direction) for direction in kernel_basis(normals)]


def extreme_rays(poly: Polyhedron) -> list[Vector]:
    """A generating ray set of the recession cone (primitive vectors).

    For a pointed cone these are exactly the extreme rays; for a cone
    with lineality L the result is the extreme rays of the pointed
    quotient cone ∩ L^⊥ together with ± a basis of L — a complete
    generator set either way (Minkowski–Weyl).
    """
    d = poly.dimension
    rows = recession_cone_rows(poly)
    live = [r for r in rows if not r.is_trivial()]
    lines = lineality_basis(poly)
    # Quotient out the lineality space with explicit equalities.
    for direction in lines:
        live.append(LinearConstraint(direction, Rel.EQ, ZERO))

    candidates: dict[Vector, None] = {}
    if d == 1:
        for direction in ((Fraction(1),), (Fraction(-1),)):
            if _in_cone(live, direction):
                candidates[direction] = None
    else:
        normals = [list(r.coeffs) for r in live]
        for subset in itertools.combinations(range(len(live)), d - 1):
            matrix = [normals[i] for i in subset]
            if matrix_rank(matrix) != d - 1:
                continue
            for direction in kernel_basis(matrix):
                for oriented in (direction, tuple(-c for c in direction)):
                    if all(c == 0 for c in oriented):
                        continue
                    if not _in_cone(live, oriented):
                        continue
                    tight = [
                        normals[i]
                        for i, row in enumerate(live)
                        if vec_dot(row.coeffs, oriented) == 0
                    ]
                    if matrix_rank(tight) >= d - 1:
                        candidates[canonical_ray(oriented)] = None
    for direction in lines:
        candidates[canonical_ray(direction)] = None
        candidates[canonical_ray(tuple(-c for c in direction))] = None
    return list(candidates)


def to_vrep(poly: Polyhedron) -> VPolyhedron:
    """Generators of the closure: conv(vertices) + cone(extreme rays).

    Raises :class:`GeometryError` on the empty polyhedron.  For
    vertex-free polyhedra (those containing lines) a feasible point
    substitutes for the vertex set; the identity
    closure(P) = conv(points) + cone(rays) still holds because the line
    directions appear as ray pairs.
    """
    if poly.is_empty():
        raise GeometryError("cannot convert an empty polyhedron")
    points = list(poly.vertices())
    if not points:
        # No vertices ⟹ the polyhedron contains lines.  Base points come
        # from the pointed restriction to the lineality-orthogonal
        # complement; the line directions are part of the ray set
        # (extreme_rays adds ± the lineality basis).
        restricted = poly.with_constraints(
            [
                LinearConstraint(direction, Rel.EQ, ZERO)
                for direction in lineality_basis(poly)
            ]
        )
        points = list(restricted.vertices())
        if not points:
            witness = restricted.feasible_point()
            assert witness is not None
            points = [witness]
    rays = extreme_rays(poly)
    return VPolyhedron.make(points, rays=rays, open_hull=False)
