"""One-shot reproduction runner: ``python -m repro.experiments``.

Runs a quick variant of every experiment E1–E15 (see EXPERIMENTS.md)
and prints a paper-vs-measured summary table.  Each check returns
(claim, measured, ok); the exit code is non-zero if any check fails.
The pytest benchmarks remain the source of timing data — this runner
is about *correctness shapes* and takes a few minutes, not hours.
"""

from __future__ import annotations

import sys
from fractions import Fraction
from typing import Callable

F = Fraction

Check = tuple[str, str, str, bool]  # id, claim, measured, ok


def _e1() -> Check:
    from repro.arrangement.builder import build_arrangement
    from repro.constraints.parser import parse_formula
    from repro.constraints.relation import ConstraintRelation

    relation = ConstraintRelation.make(
        ("x", "y"), parse_formula("x >= 0 & y >= 0 & x + y <= 1")
    )
    census = build_arrangement(relation).face_count_by_dimension()
    ok = census == {2: 7, 1: 9, 0: 3}
    return ("E1", "A(S) census 7/9/3 (Figs 1-3)",
            f"{census[2]}/{census[1]}/{census[0]}", ok)


def _e2() -> Check:
    from repro.arrangement.builder import build_arrangement
    from repro.geometry.hyperplane import Hyperplane

    n = 5
    planes = [Hyperplane.make([2 * i, -1], i * i) for i in range(1, n + 1)]
    got = len(build_arrangement(hyperplanes=planes, dimension=2))
    pairs = n * (n - 1) // 2
    expected = pairs + n * n + 1 + n + pairs
    return ("E2", f"generic {n}-line face count = {expected}",
            str(got), got == expected)


def _e3() -> Check:
    from repro.engine import QueryEngine
    from repro.logic.parser import parse_query
    from repro.workloads.generators import interval_chain

    answer = QueryEngine(interval_chain(3)).evaluate(
        parse_query("exists y. S(y) & x < y")
    )
    ok = answer.formula.is_quantifier_free() and answer.contains((F(1),))
    return ("E3", "RegFO answers quantifier-free (closure)",
            "quantifier-free" if ok else "NOT closed", ok)


def _e4() -> Check:
    from repro.queries.connectivity import is_connected
    from repro.workloads.generators import interval_chain

    results = [
        is_connected(interval_chain(2), "lfp") is True,
        is_connected(interval_chain(2, gap=True), "lfp") is False,
        is_connected(interval_chain(2), "ground") is True,
    ]
    return ("E4", "Conn (RegLFP) matches ground truth",
            f"{sum(results)}/3 cases", all(results))


def _e5() -> Check:
    from repro.extensions.convex_closure import mult_holds

    cases = [
        mult_holds(F(3), F(4), F(12)),
        not mult_holds(F(3), F(4), F(13)),
        mult_holds(F(1, 2), F(1, 2), F(1, 4)),
    ]
    return ("E5", "mult via convex closure (Fig 5)",
            f"{sum(cases)}/3 exact", all(cases))


def _e6() -> Check:
    from repro.queries.river import river_has_chemical_sequence
    from repro.workloads.generators import river_scenario

    verdicts = [
        river_has_chemical_sequence(river_scenario(6, polluted=True)),
        not river_has_chemical_sequence(river_scenario(6, polluted=False)),
        not river_has_chemical_sequence(
            river_scenario(6, polluted=True, reachable=False)
        ),
    ]
    return ("E6", "river program verdicts (Fig 6)",
            f"{sum(verdicts)}/3 intended", all(verdicts))


def _e7() -> Check:
    from repro.capture.compiler import capture_run
    from repro.capture.machine import (
        machine_first_vertex_in_s,
        machine_parity_of_ones,
    )
    from repro.constraints.database import ConstraintDatabase
    from repro.constraints.parser import parse_formula

    agreements = 0
    total = 0
    for text in ("0 < x0 & x0 < 1", "0 <= x0 & x0 <= 1"):
        database = ConstraintDatabase.from_formula(
            parse_formula(text), 1
        )
        for machine in (machine_parity_of_ones(),
                        machine_first_vertex_in_s()):
            total += 1
            if capture_run(machine, database).agree:
                agreements += 1
    return ("E7", "capture: inductive ≡ direct (Thm 6.4)",
            f"{agreements}/{total} agree", agreements == total)


def _e7_pspace() -> Check:
    from repro.capture.pspace import (
        binary_counter_machine,
        pspace_capture_run,
    )
    from repro.constraints.database import ConstraintDatabase
    from repro.constraints.parser import parse_formula

    database = ConstraintDatabase.from_formula(
        parse_formula("x0 = 32"), 1
    )
    result = pspace_capture_run(binary_counter_machine(), database)
    ok = result.agree and result.run_exceeded_ptime_addressing
    return ("E7b", "PSPACE arm: PFP stages > space cells",
            f"{result.pfp_stages} stages / {result.space_cells} cells",
            ok)


def _e8() -> Check:
    from repro.constraints.parser import parse_formula
    from repro.constraints.relation import ConstraintRelation
    from repro.regions.nc1 import decompose_nc1

    pentagon = ConstraintRelation.make(
        ("x", "y"),
        parse_formula(
            "y >= 0 & 3*x - 2*y <= 12 & 3*x + 4*y <= 30 & "
            "3*x - 4*y >= -18 & 3*x + 2*y >= 0"
        ),
    )
    census: dict[int, int] = {}
    for region in decompose_nc1(pentagon):
        census[region.dimension] = census.get(region.dimension, 0) + 1
    ok = census == {2: 3, 1: 7, 0: 5}
    return ("E8", "NC¹ pentagon census 3/7/5 (Figs 7-8)",
            f"{census.get(2)}/{census.get(1)}/{census.get(0)}", ok)


def _e9() -> Check:
    from repro.queries.connectivity import is_connected
    from repro.workloads.generators import interval_chain

    agree = [
        is_connected(interval_chain(2), "tc")
        == is_connected(interval_chain(2), "lfp"),
        is_connected(interval_chain(2, gap=True), "tc")
        == is_connected(interval_chain(2, gap=True), "lfp"),
    ]
    return ("E9", "RegTC ≡ RegLFP on connectivity",
            f"{sum(agree)}/2 agree", all(agree))


def _e10() -> Check:
    from repro.regions.arrangement_regions import ArrangementDecomposition
    from repro.regions.nc1 import NC1Decomposition
    from repro.workloads.generators import chain_of_boxes

    relation = chain_of_boxes(2).spatial
    arrangement = ArrangementDecomposition(relation)
    nc1 = NC1Decomposition(relation)
    far = (F(50), F(50))
    ok = arrangement.covers(far) and not nc1.covers(far)
    return ("E10", "arrangement partitions; NC¹ under-covers",
            "as described (§7)" if ok else "MISMATCH", ok)


def _e11() -> Check:
    from repro.logic.evaluator import Evaluator
    from repro.logic.parser import parse_query
    from repro.twosorted.structure import RegionExtension
    from repro.workloads.generators import interval_chain

    extension = RegionExtension.build(interval_chain(1))
    evaluator = Evaluator(extension)
    oscillating = not evaluator.truth(
        parse_query("exists X. [pfp M(R). !M(R)](X)")
    )
    inflating = evaluator.truth(
        parse_query("exists X. [ifp M(R). !M(R)](X)")
    )
    ok = oscillating and inflating
    return ("E11", "PFP oscillation → ∅; IFP converges",
            "as defined" if ok else "MISMATCH", ok)


def _e12() -> Check:
    from repro.workloads.generators import interval_chain

    relation = interval_chain(4).spatial
    roundtrip = relation.complement().complement()
    ok = roundtrip.equivalent(relation)
    return ("E12", "¬¬S ≡ S with bounded representations",
            f"size {relation.representation_size()} -> "
            f"{roundtrip.representation_size()}", ok)


def _e13() -> Check:
    from repro.naive.element_fixpoint import (
        define_naturals_body,
        naive_lfp,
    )

    result = naive_lfp(("n",), define_naturals_body, max_stages=8)
    return ("E13", "naive ℕ-induction diverges (§1)",
            f"diverged at cap ({result.stages} stages)",
            result.diverged)


def _e14() -> Check:
    from repro.logic.evaluator import Evaluator
    from repro.logic.parser import parse_query
    from repro.logic.transform import optimize
    from repro.twosorted.structure import RegionExtension
    from repro.workloads.generators import interval_chain

    extension = RegionExtension.build(interval_chain(2))
    evaluator = Evaluator(extension)
    query = parse_query(
        "exists R. sub(R, S) & (forall y. S(y) -> y >= 0)"
    )
    ok = evaluator.truth(query) == evaluator.truth(optimize(query))
    return ("E14", "optimizer preserves answers",
            "preserved" if ok else "CHANGED", ok)


def _e15() -> Check:
    from repro.datalog import evaluate_program
    from repro.datalog.parser import parse_program
    from repro.workloads.generators import interval_chain

    program = parse_program(
        "Reach(x) :- S(x), x = 0.\n"
        "Reach(y) :- Reach(x), S(y), y - x <= 1, x - y <= 1.\n"
    )
    outcome = evaluate_program(program, interval_chain(2))
    return ("E15", "datalog reach terminates on bounded input",
            f"converged in {outcome.stages} stages", outcome.converged)


CHECKS: list[Callable[[], Check]] = [
    _e1, _e2, _e3, _e4, _e5, _e6, _e7, _e7_pspace, _e8, _e9, _e10,
    _e11, _e12, _e13, _e14, _e15,
]


def main() -> int:
    print("repro — reproduction summary (quick variants; timings in "
          "benchmarks/)")
    print(f"{'id':5} {'claim':45} {'measured':32} ok")
    print("-" * 90)
    failures = 0
    for check in CHECKS:
        identifier, claim, measured, ok = check()
        mark = "✓" if ok else "✗"
        if not ok:
            failures += 1
        print(f"{identifier:5} {claim:45} {measured:32} {mark}")
    print("-" * 90)
    print("all checks passed" if failures == 0 else
          f"{failures} check(s) FAILED")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
