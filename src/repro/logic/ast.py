"""AST of the two-sorted region logics.

The hierarchy mirrors Definitions 4.2, 5.1 and 7.2:

* **RegFO**: linear atoms over element variables, database relation atoms
  ``S(t̄)``, element containment ``t̄ ∈ R``, adjacency ``adj(R, R')``,
  region equality, the derived subset atom ``R ⊆ S`` the paper's examples
  use, boolean connectives, and quantifiers of both sorts.
* **RegLFP / RegIFP / RegPFP**: set-variable atoms ``M R̄`` and the
  fixed-point operator ``[FP_{M, X̄} φ](R̄)`` (kind LFP/IFP/PFP), plus the
  rBIT operator.
* **RegTC / RegDTC**: ``[TC_{R̄, R̄'} φ](X̄, Ȳ)`` and its deterministic
  variant.

Every node knows its free element, region and set variables; syntactic
well-formedness (positivity of LFP bodies, rBIT's single free element
variable, TC's variable discipline) is checked at construction time, so
an accepted formula is guaranteed evaluable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from repro.errors import FormulaError
from repro.constraints.atoms import Atom
from repro.constraints.terms import LinearTerm


class RegFormula:
    """Base class of all two-sorted formulas."""

    def free_element_vars(self) -> frozenset[str]:
        raise NotImplementedError

    def free_region_vars(self) -> frozenset[str]:
        raise NotImplementedError

    def free_set_vars(self) -> frozenset[str]:
        raise NotImplementedError

    def __and__(self, other: "RegFormula") -> "RegFormula":
        return RAnd((self, other))

    def __or__(self, other: "RegFormula") -> "RegFormula":
        return ROr((self, other))

    def __invert__(self) -> "RegFormula":
        return RNot(self)


@dataclass(frozen=True)
class RTrue(RegFormula):
    """⊤."""

    def free_element_vars(self) -> frozenset[str]:
        return frozenset()

    def free_region_vars(self) -> frozenset[str]:
        return frozenset()

    def free_set_vars(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class RFalse(RegFormula):
    """⊥."""

    def free_element_vars(self) -> frozenset[str]:
        return frozenset()

    def free_region_vars(self) -> frozenset[str]:
        return frozenset()

    def free_set_vars(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class LinearAtom(RegFormula):
    """A linear constraint over element variables (FO+LIN atom)."""

    atom: Atom

    def free_element_vars(self) -> frozenset[str]:
        return frozenset(self.atom.variables)

    def free_region_vars(self) -> frozenset[str]:
        return frozenset()

    def free_set_vars(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return str(self.atom)


@dataclass(frozen=True)
class RelationAtom(RegFormula):
    """``S(t_1, ..., t_d)`` — the spatial (or any database) relation."""

    name: str
    args: tuple[LinearTerm, ...]

    def free_element_vars(self) -> frozenset[str]:
        return frozenset(v for t in self.args for v in t.variables)

    def free_region_vars(self) -> frozenset[str]:
        return frozenset()

    def free_set_vars(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(t) for t in self.args)})"


@dataclass(frozen=True)
class InRegion(RegFormula):
    """``(t_1, .., t_d) ∈ R`` — element containment in a region."""

    args: tuple[LinearTerm, ...]
    region: str

    def free_element_vars(self) -> frozenset[str]:
        return frozenset(v for t in self.args for v in t.variables)

    def free_region_vars(self) -> frozenset[str]:
        return frozenset({self.region})

    def free_set_vars(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return f"({', '.join(str(t) for t in self.args)}) in {self.region}"


@dataclass(frozen=True)
class Adj(RegFormula):
    """``adj(R, R')`` (Definition 4.1)."""

    left: str
    right: str

    def free_element_vars(self) -> frozenset[str]:
        return frozenset()

    def free_region_vars(self) -> frozenset[str]:
        return frozenset({self.left, self.right})

    def free_set_vars(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return f"adj({self.left}, {self.right})"


@dataclass(frozen=True)
class RegionEq(RegFormula):
    """``R = R'`` on the region sort."""

    left: str
    right: str

    def free_element_vars(self) -> frozenset[str]:
        return frozenset()

    def free_region_vars(self) -> frozenset[str]:
        return frozenset({self.left, self.right})

    def free_set_vars(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class SubsetAtom(RegFormula):
    """``R ⊆ S`` — the region lies inside a database relation.

    RegFO-definable sugar (``∀x̄ (x̄ ∈ R → S x̄)``) that the paper's
    example queries use directly; keeping it atomic lets the evaluator
    use the decomposition's cached containment bits.
    """

    region: str
    relation_name: str

    def free_element_vars(self) -> frozenset[str]:
        return frozenset()

    def free_region_vars(self) -> frozenset[str]:
        return frozenset({self.region})

    def free_set_vars(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return f"sub({self.region}, {self.relation_name})"


@dataclass(frozen=True)
class SetAtom(RegFormula):
    """``M R_1 ... R_k`` — membership in a set variable (Definition 5.1)."""

    set_var: str
    args: tuple[str, ...]

    def free_element_vars(self) -> frozenset[str]:
        return frozenset()

    def free_region_vars(self) -> frozenset[str]:
        return frozenset(self.args)

    def free_set_vars(self) -> frozenset[str]:
        return frozenset({self.set_var})

    def __str__(self) -> str:
        return f"{self.set_var}({', '.join(self.args)})"


def _union(sets: Iterable[frozenset[str]]) -> frozenset[str]:
    result: frozenset[str] = frozenset()
    for s in sets:
        result |= s
    return result


@dataclass(frozen=True)
class RAnd(RegFormula):
    """Conjunction."""

    operands: tuple[RegFormula, ...]

    def free_element_vars(self) -> frozenset[str]:
        return _union(f.free_element_vars() for f in self.operands)

    def free_region_vars(self) -> frozenset[str]:
        return _union(f.free_region_vars() for f in self.operands)

    def free_set_vars(self) -> frozenset[str]:
        return _union(f.free_set_vars() for f in self.operands)

    def __str__(self) -> str:
        return "(" + " & ".join(str(f) for f in self.operands) + ")"


@dataclass(frozen=True)
class ROr(RegFormula):
    """Disjunction."""

    operands: tuple[RegFormula, ...]

    def free_element_vars(self) -> frozenset[str]:
        return _union(f.free_element_vars() for f in self.operands)

    def free_region_vars(self) -> frozenset[str]:
        return _union(f.free_region_vars() for f in self.operands)

    def free_set_vars(self) -> frozenset[str]:
        return _union(f.free_set_vars() for f in self.operands)

    def __str__(self) -> str:
        return "(" + " | ".join(str(f) for f in self.operands) + ")"


@dataclass(frozen=True)
class RNot(RegFormula):
    """Negation."""

    operand: RegFormula

    def free_element_vars(self) -> frozenset[str]:
        return self.operand.free_element_vars()

    def free_region_vars(self) -> frozenset[str]:
        return self.operand.free_region_vars()

    def free_set_vars(self) -> frozenset[str]:
        return self.operand.free_set_vars()

    def __str__(self) -> str:
        return f"!{self.operand}"


@dataclass(frozen=True)
class ExistsElem(RegFormula):
    """∃x over the real sort."""

    variable: str
    body: RegFormula

    def free_element_vars(self) -> frozenset[str]:
        return self.body.free_element_vars() - {self.variable}

    def free_region_vars(self) -> frozenset[str]:
        return self.body.free_region_vars()

    def free_set_vars(self) -> frozenset[str]:
        return self.body.free_set_vars()

    def __str__(self) -> str:
        return f"(exists {self.variable}. {self.body})"


@dataclass(frozen=True)
class ForallElem(RegFormula):
    """∀x over the real sort."""

    variable: str
    body: RegFormula

    def free_element_vars(self) -> frozenset[str]:
        return self.body.free_element_vars() - {self.variable}

    def free_region_vars(self) -> frozenset[str]:
        return self.body.free_region_vars()

    def free_set_vars(self) -> frozenset[str]:
        return self.body.free_set_vars()

    def __str__(self) -> str:
        return f"(forall {self.variable}. {self.body})"


@dataclass(frozen=True)
class ExistsRegion(RegFormula):
    """∃R over the region sort."""

    variable: str
    body: RegFormula

    def free_element_vars(self) -> frozenset[str]:
        return self.body.free_element_vars()

    def free_region_vars(self) -> frozenset[str]:
        return self.body.free_region_vars() - {self.variable}

    def free_set_vars(self) -> frozenset[str]:
        return self.body.free_set_vars()

    def __str__(self) -> str:
        return f"(exists {self.variable}. {self.body})"


@dataclass(frozen=True)
class ForallRegion(RegFormula):
    """∀R over the region sort."""

    variable: str
    body: RegFormula

    def free_element_vars(self) -> frozenset[str]:
        return self.body.free_element_vars()

    def free_region_vars(self) -> frozenset[str]:
        return self.body.free_region_vars() - {self.variable}

    def free_set_vars(self) -> frozenset[str]:
        return self.body.free_set_vars()

    def __str__(self) -> str:
        return f"(forall {self.variable}. {self.body})"


class FixKind(enum.Enum):
    """Flavours of fixed-point induction (Definition 5.1)."""

    LFP = "lfp"
    IFP = "ifp"
    PFP = "pfp"


def polarity_of_set_var(formula: RegFormula, set_var: str,
                        positive: bool = True) -> set[bool]:
    """Polarities (True=positive) at which ``set_var`` occurs."""
    if isinstance(formula, SetAtom):
        return {positive} if formula.set_var == set_var else set()
    if isinstance(formula, RNot):
        return polarity_of_set_var(formula.operand, set_var, not positive)
    if isinstance(formula, (RAnd, ROr)):
        result: set[bool] = set()
        for operand in formula.operands:
            result |= polarity_of_set_var(operand, set_var, positive)
        return result
    if isinstance(
        formula,
        (ExistsElem, ForallElem, ExistsRegion, ForallRegion),
    ):
        return polarity_of_set_var(formula.body, set_var, positive)
    if isinstance(formula, Fixpoint):
        if formula.set_var == set_var:
            return set()  # rebound inside
        return polarity_of_set_var(formula.body, set_var, positive)
    if isinstance(formula, (TC, DTC)):
        return polarity_of_set_var(formula.body, set_var, positive)
    if isinstance(formula, RBit):
        return polarity_of_set_var(formula.body, set_var, positive)
    return set()


@dataclass(frozen=True)
class Fixpoint(RegFormula):
    """``[FP_{M, X̄} φ](R̄)`` with kind LFP, IFP or PFP.

    ``body`` is φ; its free region variables must be exactly ``bound_vars``
    (the X̄) and it must not have free element variables — fixed-point
    induction ranges over the region sort only (Definition 5.1).  For LFP
    the body must be positive in the set variable.
    """

    kind: FixKind
    set_var: str
    bound_vars: tuple[str, ...]
    body: RegFormula
    args: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.args) != len(self.bound_vars):
            raise FormulaError(
                "fixpoint arity mismatch: "
                f"{len(self.bound_vars)} bound vars, {len(self.args)} args"
            )
        if len(set(self.bound_vars)) != len(self.bound_vars):
            raise FormulaError("fixpoint bound variables must be distinct")
        if self.body.free_element_vars():
            raise FormulaError(
                "fixed-point bodies cannot have free element variables: "
                f"{sorted(self.body.free_element_vars())}"
            )
        stray = self.body.free_region_vars() - set(self.bound_vars)
        if stray:
            raise FormulaError(
                f"fixpoint body has stray region variables {sorted(stray)}"
            )
        if self.kind is FixKind.LFP:
            polarities = polarity_of_set_var(self.body, self.set_var)
            if False in polarities:
                raise FormulaError(
                    f"LFP body must be positive in {self.set_var}"
                )

    def free_element_vars(self) -> frozenset[str]:
        return frozenset()

    def free_region_vars(self) -> frozenset[str]:
        return frozenset(self.args)

    def free_set_vars(self) -> frozenset[str]:
        return self.body.free_set_vars() - {self.set_var}

    def __str__(self) -> str:
        head = f"{self.set_var}({', '.join(self.bound_vars)})"
        return (
            f"[{self.kind.value} {head}. {self.body}]"
            f"({', '.join(self.args)})"
        )


class _TransitiveClosureBase(RegFormula):
    """Shared validation for TC and DTC."""

    left_vars: tuple[str, ...]
    right_vars: tuple[str, ...]
    body: RegFormula
    left_args: tuple[str, ...]
    right_args: tuple[str, ...]

    def _validate(self) -> None:
        m = len(self.left_vars)
        if len(self.right_vars) != m:
            raise FormulaError("TC variable tuples must have equal length")
        if len(self.left_args) != m or len(self.right_args) != m:
            raise FormulaError("TC argument tuples must match the arity")
        bound = self.left_vars + self.right_vars
        if len(set(bound)) != len(bound):
            raise FormulaError("TC bound variables must be distinct")
        if self.body.free_element_vars():
            raise FormulaError(
                "TC bodies cannot have free element variables"
            )
        if self.body.free_set_vars():
            raise FormulaError("TC bodies cannot have free set variables")
        stray = self.body.free_region_vars() - set(bound)
        if stray:
            raise FormulaError(
                f"TC body has stray region variables {sorted(stray)}"
            )

    def free_element_vars(self) -> frozenset[str]:
        return frozenset()

    def free_region_vars(self) -> frozenset[str]:
        return frozenset(self.left_args) | frozenset(self.right_args)

    def free_set_vars(self) -> frozenset[str]:
        return frozenset()


@dataclass(frozen=True)
class TC(_TransitiveClosureBase):
    """``[TC_{R̄, R̄'} φ](X̄, Ȳ)`` (Definition 7.2).

    Semantics: a φ-path of at least one step from X̄ to Ȳ (the
    Ebbinghaus–Flum convention the paper cites).
    """

    left_vars: tuple[str, ...]
    right_vars: tuple[str, ...]
    body: RegFormula
    left_args: tuple[str, ...]
    right_args: tuple[str, ...]

    def __post_init__(self) -> None:
        self._validate()

    def __str__(self) -> str:
        return (
            f"[tc ({', '.join(self.left_vars)}) -> "
            f"({', '.join(self.right_vars)}). {self.body}]"
            f"({', '.join(self.left_args)}; {', '.join(self.right_args)})"
        )


@dataclass(frozen=True)
class DTC(_TransitiveClosureBase):
    """Deterministic transitive closure: steps are taken only from tuples
    with a *unique* φ-successor."""

    left_vars: tuple[str, ...]
    right_vars: tuple[str, ...]
    body: RegFormula
    left_args: tuple[str, ...]
    right_args: tuple[str, ...]

    def __post_init__(self) -> None:
        self._validate()

    def __str__(self) -> str:
        return (
            f"[dtc ({', '.join(self.left_vars)}) -> "
            f"({', '.join(self.right_vars)}). {self.body}]"
            f"({', '.join(self.left_args)}; {', '.join(self.right_args)})"
        )


@dataclass(frozen=True)
class RBit(RegFormula):
    """``[rBIT_x φ](R_n, R_d)`` (Definition 5.1).

    ``body`` must have exactly one free element variable, ``element_var``.
    For a given interpretation of its other free region variables, if the
    body is satisfied by exactly one rational a, the operator holds of a
    pair (R_i, R_j) of 0-dimensional regions whose indices i, j (1-based,
    in the lexicographic order of the 0-dimensional regions) pick 1-bits
    of a's numerator and denominator; for a = 0 it holds of pairs (R, R)
    of equal higher-dimensional regions.  Otherwise it denotes ∅.
    """

    element_var: str
    body: RegFormula
    numerator: str
    denominator: str

    def __post_init__(self) -> None:
        free = self.body.free_element_vars()
        if free != {self.element_var}:
            raise FormulaError(
                "rBIT body must have exactly one free element variable "
                f"({self.element_var}), found {sorted(free)}"
            )
        if self.body.free_set_vars():
            raise FormulaError("rBIT bodies cannot have free set variables")

    def free_element_vars(self) -> frozenset[str]:
        return frozenset()

    def free_region_vars(self) -> frozenset[str]:
        return (
            self.body.free_region_vars()
            | {self.numerator, self.denominator}
        )

    def free_set_vars(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return (
            f"[rbit {self.element_var}. {self.body}]"
            f"({self.numerator}, {self.denominator})"
        )


def reg_conjunction(formulas: Iterable[RegFormula]) -> RegFormula:
    """N-ary conjunction with flattening and constant folding."""
    flat: list[RegFormula] = []
    for f in formulas:
        if isinstance(f, RFalse):
            return RFalse()
        if isinstance(f, RTrue):
            continue
        if isinstance(f, RAnd):
            flat.extend(f.operands)
        else:
            flat.append(f)
    if not flat:
        return RTrue()
    if len(flat) == 1:
        return flat[0]
    return RAnd(tuple(flat))


def reg_disjunction(formulas: Iterable[RegFormula]) -> RegFormula:
    """N-ary disjunction with flattening and constant folding."""
    flat: list[RegFormula] = []
    for f in formulas:
        if isinstance(f, RTrue):
            return RTrue()
        if isinstance(f, RFalse):
            continue
        if isinstance(f, ROr):
            flat.extend(f.operands)
        else:
            flat.append(f)
    if not flat:
        return RFalse()
    if len(flat) == 1:
        return flat[0]
    return ROr(tuple(flat))


def classify_language(formula: RegFormula) -> str:
    """The smallest language of the family containing the formula.

    Returns one of "RegFO", "RegLFP", "RegIFP", "RegPFP", "RegTC",
    "RegDTC" (mixed operator use reports the most powerful fixpoint /
    closure operator present, fixpoints dominating closures).
    """
    found: set[str] = set()

    def walk(node: RegFormula) -> None:
        if isinstance(node, Fixpoint):
            found.add({"lfp": "RegLFP", "ifp": "RegIFP",
                       "pfp": "RegPFP"}[node.kind.value])
            walk(node.body)
        elif isinstance(node, TC):
            found.add("RegTC")
            walk(node.body)
        elif isinstance(node, DTC):
            found.add("RegDTC")
            walk(node.body)
        elif isinstance(node, RBit):
            found.add("RegLFP")
            walk(node.body)
        elif isinstance(node, (RAnd, ROr)):
            for operand in node.operands:
                walk(operand)
        elif isinstance(node, RNot):
            walk(node.operand)
        elif isinstance(
            node, (ExistsElem, ForallElem, ExistsRegion, ForallRegion)
        ):
            walk(node.body)

    walk(formula)
    for language in ("RegPFP", "RegIFP", "RegLFP", "RegTC", "RegDTC"):
        if language in found:
            return language
    return "RegFO"
