"""Fixed-point induction engines over the finite region sort.

Definition 5.1's operators iterate an update function

    f : P(Reg^k) → P(Reg^k)

induced by a formula φ(M, X̄).  Because Reg is finite the inductions all
terminate:

* **LFP** — φ positive in M makes f monotone; iterate from ∅; the least
  fixed point is reached after at most |Reg|^k stages (Knaster–Tarski).
* **IFP** — inflationary: M_{i+1} = M_i ∪ f(M_i); always reaches a fixed
  point in at most |Reg|^k stages.
* **PFP** — partial: iterate M_{i+1} = f(M_i) from ∅; if the sequence
  reaches a fixed point, that is the result; if it enters a cycle (it
  must, the power set being finite) without a fixed point, the result is
  the empty set.

Each engine reports the stage count, which the experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

RegionTuple = tuple[int, ...]
RegionSet = frozenset[RegionTuple]
StepFunction = Callable[[RegionSet], RegionSet]


@dataclass(frozen=True)
class FixpointRun:
    """Result of a fixed-point computation, with iteration telemetry."""

    result: RegionSet
    stages: int
    converged: bool


def least_fixpoint(step: StepFunction, max_stages: int) -> FixpointRun:
    """Iterate a monotone update from ∅ until stabilisation.

    ``max_stages`` is a hard cap (|Reg|^k + 1 suffices for monotone
    updates); exceeding it signals a non-monotone step function and
    raises, because silently truncating an induction would corrupt query
    answers.
    """
    current: RegionSet = frozenset()
    for stage in range(max_stages + 1):
        updated = step(current)
        if updated == current:
            return FixpointRun(current, stage, True)
        current = updated
    raise RuntimeError(
        "least_fixpoint did not stabilise within the stage bound; "
        "the update function is not monotone"
    )


def inflationary_fixpoint(step: StepFunction, max_stages: int) -> FixpointRun:
    """Inflationary induction: M ← M ∪ f(M)."""
    current: RegionSet = frozenset()
    for stage in range(max_stages + 1):
        updated = current | step(current)
        if updated == current:
            return FixpointRun(current, stage, True)
        current = updated
    raise RuntimeError(
        "inflationary_fixpoint exceeded its stage bound; "
        "the universe bound is wrong"
    )


def partial_fixpoint(step: StepFunction) -> FixpointRun:
    """Partial fixed point: iterate until a fixed point or a cycle.

    Detects cycles exactly by remembering every set seen; on a cycle
    without a fixed point the PFP semantics yields ∅.
    """
    current: RegionSet = frozenset()
    seen: dict[RegionSet, int] = {current: 0}
    stage = 0
    while True:
        updated = step(current)
        stage += 1
        if updated == current:
            return FixpointRun(current, stage - 1, True)
        if updated in seen:
            return FixpointRun(frozenset(), stage, False)
        seen[updated] = stage
        current = updated


def all_region_tuples(
    region_count: int, arity: int
) -> Iterable[RegionTuple]:
    """Reg^k in lexicographic order."""
    import itertools

    return itertools.product(range(region_count), repeat=arity)
