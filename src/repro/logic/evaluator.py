"""Query evaluation on region extensions.

The evaluator follows the proofs of Theorems 4.3 and 6.1: structural
induction on the query, producing for every subformula (under an
assignment of its free region and set variables) a *quantifier-free*
constraint relation over its free element variables.  Concretely:

* linear atoms and ``S(t̄)`` / ``t̄ ∈ R`` atoms substitute terms into
  quantifier-free defining formulas;
* element quantifiers are existential projection (Fourier–Motzkin) and
  its dual;
* region quantifiers enumerate the finite region sort, taking the
  disjunction / conjunction of the instantiated bodies — exactly the
  PTIME procedure in the proof of Theorem 4.3;
* fixed-point operators iterate over P(Reg^k)
  (:mod:`repro.logic.fixpoint`), transitive closures run BFS over Reg^m
  (:mod:`repro.logic.transitive_closure`), and rBIT extracts bits of the
  unique rational its body defines (:mod:`repro.logic.rbit`).

Results are memoised per (subformula, relevant environment), which is
what makes fixed-point evaluation tractable: the body of an induction is
re-evaluated only for environments not seen before.

Since every step stays quantifier-free over (ℝ, <, +), evaluation
witnesses the closure of the languages: the answer to any query is again
a linear constraint relation.
"""

from __future__ import annotations

from typing import Mapping

from repro.deprecation import warn_once
from repro.errors import EvaluationError, UnboundVariableError
from repro.constraints.formula import FALSE, TRUE
from repro.constraints.relation import ConstraintRelation
from repro.constraints.database import ConstraintDatabase
from repro.obs.journal import JOURNAL
from repro.obs.metrics import MetricsRegistry, MetricsView, get_registry
from repro.obs.tracing import TRACER
from repro.twosorted.structure import RegionExtension
from repro.logic import ast
from repro.logic.fixpoint import (
    FixpointRun,
    all_region_tuples,
    inflationary_fixpoint,
    least_fixpoint,
    partial_fixpoint,
)
from repro.logic.rbit import RBitDenotation, unique_rational
from repro.logic.transitive_closure import (
    deterministic_transitive_closure,
    transitive_closure,
)

RegionEnv = dict[str, int]
SetEnv = dict[str, frozenset[tuple[int, ...]]]


def _true_relation() -> ConstraintRelation:
    return ConstraintRelation.make((), TRUE)


def _false_relation() -> ConstraintRelation:
    return ConstraintRelation.make((), FALSE)


def _bool_relation(value: bool) -> ConstraintRelation:
    return _true_relation() if value else _false_relation()


class _StructuralKey:
    """A memo key wrapping a formula with a precomputed structural hash.

    Earlier revisions keyed the evaluator memos on ``id(formula)``,
    which collides when a formula object is garbage-collected and a new
    one is allocated at the same address — silently returning the stale
    entry.  Keying on the formula itself (structural ``==`` / ``hash``
    of the frozen AST dataclasses) is immune to id reuse, and this
    wrapper caches the — otherwise O(subtree) — hash so memo lookups
    stay cheap.
    """

    __slots__ = ("formula", "_hash")

    def __init__(self, formula: ast.RegFormula) -> None:
        self.formula = formula
        self._hash = hash(formula)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, _StructuralKey):
            return NotImplemented
        return self._hash == other._hash and self.formula == other.formula


def _structural_key(formula: ast.RegFormula) -> _StructuralKey:
    """The cached structural memo key of a formula node."""
    key = formula.__dict__.get("_structural_memo_key")
    if key is None:
        key = _StructuralKey(formula)
        object.__setattr__(formula, "_structural_memo_key", key)
    return key


class Evaluator:
    """Evaluates region-logic queries over one region extension."""

    def __init__(
        self,
        extension: RegionExtension,
        metrics: MetricsRegistry | None = None,
        executor: str | None = None,
        backend: str | None = None,
    ) -> None:
        from repro.config import resolve_backend, resolve_executor

        self.extension = extension
        #: How fixpoint stage bodies are evaluated: ``"compiled"`` runs
        #: each candidate through a compiled boolean skeleton
        #: (:mod:`repro.ir.ground`) when the body fits the fragment,
        #: ``"interpreted"`` always uses :meth:`truth`.  Both produce
        #: identical stage sets; ``None`` defers to ``REPRO_EXECUTOR``.
        self.executor = resolve_executor(executor)
        #: ``"sqlite"`` lowers *linear* ground LFPs to SQL over
        #: base/edge tables (:mod:`repro.ir.sqlite`); ``"memory"`` keeps
        #: everything in Python sets.  Stage sets are identical either
        #: way; ``None`` defers to ``REPRO_BACKEND``.
        self.backend = resolve_backend(backend)
        self._memo: dict[tuple, ConstraintRelation] = {}
        self._tc_memo: dict[_StructuralKey, set] = {}
        self._fixpoint_memo: dict[tuple, FixpointRun] = {}
        self._zero_dim_ranks: dict[int, int] | None = None
        #: Optional per-node cost collector (EXPLAIN ANALYZE).  When set
        #: (see :class:`repro.explain.NodeProfiler`) every non-memoised
        #: dispatch is bracketed by ``enter``/``exit`` and memo hits are
        #: reported, attributing wall time and counter deltas to the
        #: exact subformula being evaluated.
        self.profiler = None
        # Per-evaluator metrics that roll up into the process registry.
        self.metrics = (
            metrics
            if metrics is not None
            else MetricsRegistry(parent=get_registry(), prefix="evaluator.")
        )
        self._c_evaluations = self.metrics.counter("evaluations")
        self._c_memo_hits = self.metrics.counter("memo_hits")
        self._c_fixpoint_stages = self.metrics.counter("fixpoint_stages")
        # Live mapping view over the evaluator's counters; kept for
        # backward compatibility as the deprecated ``stats`` property.
        self._stats_view = MetricsView(self.metrics, {
            "evaluations": "evaluations",
            "memo_hits": "memo_hits",
            "fixpoint_stages": "fixpoint_stages",
        })

    @property
    def stats(self) -> MetricsView:
        """Deprecated: the live counter view with the old bare-dict keys.

        Prefer ``evaluator.metrics.snapshot()`` (or the process registry,
        ``repro.obs.get_registry()``).
        """
        warn_once(
            "Evaluator.stats",
            "Evaluator.stats is deprecated; use Evaluator.metrics.snapshot()"
            " or repro.obs.get_registry() instead",
        )
        return self._stats_view

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(
        self,
        formula: ast.RegFormula,
        region_env: RegionEnv | None = None,
        set_env: SetEnv | None = None,
    ) -> ConstraintRelation:
        """The relation over the formula's free element variables."""
        region_env = region_env or {}
        set_env = set_env or {}
        missing = formula.free_region_vars() - set(region_env)
        if missing:
            raise UnboundVariableError(
                f"unbound region variables {sorted(missing)}"
            )
        missing_sets = formula.free_set_vars() - set(set_env)
        if missing_sets:
            raise UnboundVariableError(
                f"unbound set variables {sorted(missing_sets)}"
            )
        return self._eval(formula, region_env, set_env)

    def truth(
        self,
        formula: ast.RegFormula,
        region_env: RegionEnv | None = None,
        set_env: SetEnv | None = None,
    ) -> bool:
        """Truth value of a formula with no free element variables."""
        if formula.free_element_vars():
            raise EvaluationError(
                "truth() requires a formula without free element variables"
            )
        relation = self.evaluate(formula, region_env, set_env)
        return not relation.is_empty()

    # ------------------------------------------------------------------
    # Core dispatch
    # ------------------------------------------------------------------
    def _eval(
        self,
        formula: ast.RegFormula,
        region_env: RegionEnv,
        set_env: SetEnv,
    ) -> ConstraintRelation:
        key = self._memo_key(formula, region_env, set_env)
        cached = self._memo.get(key)
        if cached is not None:
            self._c_memo_hits.inc()
            if self.profiler is not None:
                self.profiler.memo_hit(formula)
            return cached
        self._c_evaluations.inc()
        if self.profiler is not None:
            self.profiler.enter(formula)
            try:
                result = self._dispatch_traced(formula, region_env, set_env)
            finally:
                self.profiler.exit(formula)
            # Observed cardinalities feed the optimizer's statistics;
            # duck-typed so bare profilers keep working.
            observe = getattr(self.profiler, "observe", None)
            if observe is not None:
                observe(formula, result)
        else:
            result = self._dispatch_traced(formula, region_env, set_env)
        self._memo[key] = result
        return result

    def _dispatch_traced(
        self,
        formula: ast.RegFormula,
        region_env: RegionEnv,
        set_env: SetEnv,
    ) -> ConstraintRelation:
        if TRACER.enabled:
            with TRACER.span(
                "eval." + type(formula).__name__, aggregate=True
            ):
                return self._dispatch(formula, region_env, set_env)
        return self._dispatch(formula, region_env, set_env)

    def _memo_key(
        self,
        formula: ast.RegFormula,
        region_env: RegionEnv,
        set_env: SetEnv,
    ) -> tuple:
        regions = tuple(
            sorted(
                (name, region_env[name])
                for name in formula.free_region_vars()
            )
        )
        sets = tuple(
            sorted(
                (name, set_env[name]) for name in formula.free_set_vars()
            )
        )
        return (_structural_key(formula), regions, sets)

    def _dispatch(
        self,
        formula: ast.RegFormula,
        region_env: RegionEnv,
        set_env: SetEnv,
    ) -> ConstraintRelation:
        if isinstance(formula, ast.RTrue):
            return _true_relation()
        if isinstance(formula, ast.RFalse):
            return _false_relation()
        if isinstance(formula, ast.LinearAtom):
            variables = tuple(sorted(formula.atom.variables))
            from repro.constraints.formula import AtomFormula

            return ConstraintRelation.make(
                variables, AtomFormula(formula.atom)
            )
        if isinstance(formula, ast.RelationAtom):
            return self._relation_atom(formula)
        if isinstance(formula, ast.InRegion):
            return self._in_region(formula, region_env)
        if isinstance(formula, ast.Adj):
            return _bool_relation(
                self.extension.adjacent(
                    region_env[formula.left], region_env[formula.right]
                )
            )
        if isinstance(formula, ast.RegionEq):
            return _bool_relation(
                region_env[formula.left] == region_env[formula.right]
            )
        if isinstance(formula, ast.SubsetAtom):
            return self._subset_atom(formula, region_env)
        if isinstance(formula, ast.SetAtom):
            tup = tuple(region_env[name] for name in formula.args)
            return _bool_relation(tup in set_env[formula.set_var])
        if isinstance(formula, ast.RNot):
            inner = self._eval(formula.operand, region_env, set_env)
            return inner.complement()
        if isinstance(formula, ast.RAnd):
            return self._connective(
                formula.operands, region_env, set_env, conjunctive=True
            )
        if isinstance(formula, ast.ROr):
            return self._connective(
                formula.operands, region_env, set_env, conjunctive=False
            )
        if isinstance(formula, ast.ExistsElem):
            return self._exists_elem(formula, region_env, set_env)
        if isinstance(formula, ast.ForallElem):
            return self._forall_elem(formula, region_env, set_env)
        if isinstance(formula, ast.ExistsRegion):
            return self._region_quantifier(
                formula.variable, formula.body, region_env, set_env,
                existential=True,
            )
        if isinstance(formula, ast.ForallRegion):
            return self._region_quantifier(
                formula.variable, formula.body, region_env, set_env,
                existential=False,
            )
        if isinstance(formula, ast.Fixpoint):
            return self._fixpoint(formula, region_env, set_env)
        if isinstance(formula, (ast.TC, ast.DTC)):
            return self._transitive_closure(formula, region_env, set_env)
        if isinstance(formula, ast.RBit):
            return self._rbit(formula, region_env, set_env)
        raise EvaluationError(
            f"unknown formula node {type(formula).__name__}"
        )

    # ------------------------------------------------------------------
    # Atoms
    # ------------------------------------------------------------------
    def _relation_atom(
        self, formula: ast.RelationAtom
    ) -> ConstraintRelation:
        relation = self.extension.database.relation(formula.name)
        if len(formula.args) != relation.arity:
            raise EvaluationError(
                f"{formula.name} expects {relation.arity} arguments, "
                f"got {len(formula.args)}"
            )
        mapping = dict(zip(relation.variables, formula.args))
        instantiated = relation.substitute(mapping)
        variables = tuple(sorted(instantiated.free_variables()))
        return ConstraintRelation.make(variables, instantiated)

    def _in_region(
        self, formula: ast.InRegion, region_env: RegionEnv
    ) -> ConstraintRelation:
        region = self.extension.decomposition.region(
            region_env[formula.region]
        )
        arity = self.extension.decomposition.ambient_dimension
        if len(formula.args) != arity:
            raise EvaluationError(
                f"∈ expects {arity} coordinates, got {len(formula.args)}"
            )
        schema = tuple(f"__r{i}" for i in range(arity))
        defining = region.defining_formula(schema)
        instantiated = defining.substitute(
            dict(zip(schema, formula.args))
        )
        variables = tuple(sorted(instantiated.free_variables()))
        return ConstraintRelation.make(variables, instantiated)

    def _subset_atom(
        self, formula: ast.SubsetAtom, region_env: RegionEnv
    ) -> ConstraintRelation:
        if formula.relation_name == self.extension.spatial_name:
            return _bool_relation(
                self.extension.region_subset_of_spatial(
                    region_env[formula.region]
                )
            )
        target = self.extension.database.relation(formula.relation_name)
        region = self.extension.decomposition.region(
            region_env[formula.region]
        )
        region_rel = region.as_relation(target.variables)
        return _bool_relation(region_rel.difference(target).is_empty())

    # ------------------------------------------------------------------
    # Connectives and quantifiers
    # ------------------------------------------------------------------
    def _connective(
        self,
        operands: tuple[ast.RegFormula, ...],
        region_env: RegionEnv,
        set_env: SetEnv,
        conjunctive: bool,
    ) -> ConstraintRelation:
        from repro.constraints.relation import (
            intersect_relations,
            union_relations,
        )

        # Boolean short-circuit: when no operand has free element
        # variables the connective is a plain truth-function, and lazy
        # evaluation avoids touching expensive operands (inner fixpoint
        # scans hit this path constantly).
        if all(not op.free_element_vars() for op in operands):
            for op in operands:
                value = not self._eval(op, region_env, set_env).is_empty()
                if conjunctive and not value:
                    return _false_relation()
                if not conjunctive and value:
                    return _true_relation()
            return _bool_relation(conjunctive)

        children = [
            self._eval(op, region_env, set_env) for op in operands
        ]
        if not children:
            return _bool_relation(conjunctive)
        schema = tuple(
            sorted(set().union(*(set(c.variables) for c in children)))
        )
        extended = [self._extend(child, schema) for child in children]
        if conjunctive:
            return intersect_relations(extended)
        return union_relations(extended)

    @staticmethod
    def _extend(
        relation: ConstraintRelation, schema: tuple[str, ...]
    ) -> ConstraintRelation:
        """Cylindrify a relation to a larger schema (formula unchanged)."""
        if relation.variables == schema:
            return relation
        return ConstraintRelation.make(schema, relation.formula)

    def _exists_elem(
        self,
        formula: ast.ExistsElem,
        region_env: RegionEnv,
        set_env: SetEnv,
    ) -> ConstraintRelation:
        body = self._eval(formula.body, region_env, set_env)
        if formula.variable not in body.variables:
            return body
        return body.project_out(formula.variable)

    def _forall_elem(
        self,
        formula: ast.ForallElem,
        region_env: RegionEnv,
        set_env: SetEnv,
    ) -> ConstraintRelation:
        # Collapse a maximal ∀-chain: ∀x̄ φ = ¬∃x̄ ¬φ needs only two
        # complements regardless of how many variables are bound.
        variables = [formula.variable]
        body_formula: ast.RegFormula = formula.body
        while isinstance(body_formula, ast.ForallElem):
            variables.append(body_formula.variable)
            body_formula = body_formula.body
        body = self._eval(body_formula, region_env, set_env)
        negated = body.complement()
        for variable in variables:
            if variable in negated.variables:
                negated = negated.project_out(variable)
        return negated.complement()

    def _region_quantifier(
        self,
        variable: str,
        body: ast.RegFormula,
        region_env: RegionEnv,
        set_env: SetEnv,
        existential: bool,
    ) -> ConstraintRelation:
        pieces: list[ConstraintRelation] = []
        boolean = not body.free_element_vars()
        for index in range(self.extension.region_count()):
            inner_env = dict(region_env)
            inner_env[variable] = index
            piece = self._eval(body, inner_env, set_env)
            if boolean:
                # Short-circuit on the boolean fast path.
                holds = not piece.is_empty()
                if existential and holds:
                    return _true_relation()
                if not existential and not holds:
                    return _false_relation()
            else:
                pieces.append(piece)
        if boolean:
            return _bool_relation(not existential)
        from repro.constraints.relation import (
            intersect_relations,
            union_relations,
        )

        if not pieces:
            # No regions at all: ∃ is false, ∀ is true.
            return _bool_relation(not existential)
        schema = tuple(
            sorted(set().union(*(set(p.variables) for p in pieces)))
        )
        extended = [self._extend(p, schema) for p in pieces]
        if existential:
            return union_relations(extended)
        return intersect_relations(extended)

    # ------------------------------------------------------------------
    # Recursion operators
    # ------------------------------------------------------------------
    def _fixpoint(
        self,
        formula: ast.Fixpoint,
        region_env: RegionEnv,
        set_env: SetEnv,
    ) -> ConstraintRelation:
        run = self.fixpoint_run(formula, set_env)
        tup = tuple(region_env[name] for name in formula.args)
        return _bool_relation(tup in run.result)

    def fixpoint_run(
        self, formula: ast.Fixpoint, set_env: SetEnv | None = None
    ) -> FixpointRun:
        """The full induction behind a fixpoint formula (with telemetry).

        Cached per (formula, outer set environment): re-evaluating the
        operator at different argument tuples reuses one induction.
        """
        set_env = set_env or {}
        outer = tuple(
            sorted(
                (name, set_env[name])
                for name in formula.free_set_vars()
            )
        )
        memo_key = (_structural_key(formula), outer)
        cached = self._fixpoint_memo.get(memo_key)
        if cached is not None:
            return cached
        arity = len(formula.bound_vars)
        count = self.extension.region_count()
        universe = list(all_region_tuples(count, arity))

        # For LFP the body is positive, so the stages increase from ∅ and
        # every tuple of the current stage stays in the next — only the
        # complement needs re-evaluation.  IFP/PFP evaluate everything.
        keep_current = formula.kind is ast.FixKind.LFP

        # Compiled / lowered per-candidate tests.  Either replacement
        # computes exactly the set the interpreted loop below would, so
        # the journal wrapper, the fixpoint drivers and the stage
        # counter — everything observable — stay literally shared.
        compiled_test = None
        lowered = None
        if self.executor == "compiled":
            from repro.ir.ground import compile_fixpoint_step

            compiled_test = compile_fixpoint_step(formula, self, set_env)
            if (
                compiled_test is not None
                and self.backend == "sqlite"
                and formula.kind is ast.FixKind.LFP
            ):
                from repro.ir.ground import linear_decomposition
                from repro.ir.sqlite import SQLiteGroundFixpoint

                decomposed = linear_decomposition(formula, self, set_env)
                if decomposed is not None:
                    base, edge = decomposed
                    lowered = SQLiteGroundFixpoint(base, edge, arity)

        def raw_step(current: frozenset) -> frozenset:
            if lowered is not None:
                return lowered.step(current)
            inner_sets = dict(set_env)
            inner_sets[formula.set_var] = current
            members = list(current) if keep_current else []
            for candidate in universe:
                if keep_current and candidate in current:
                    continue
                env = dict(zip(formula.bound_vars, candidate))
                if compiled_test is not None:
                    verdict = compiled_test(env, current)
                else:
                    verdict = self.truth(formula.body, env, inner_sets)
                if verdict:
                    members.append(candidate)
            return frozenset(members)

        step = raw_step
        if JOURNAL.enabled:
            operator = f"{formula.kind.value} {formula.set_var}"
            stage_box = [0]

            def step(current: frozenset) -> frozenset:
                result = raw_step(current)
                stage_box[0] += 1
                JOURNAL.emit(
                    "fixpoint.stage",
                    operator=operator,
                    stage=stage_box[0],
                    size=len(result),
                    delta=len(result - current),
                )
                return result

        bound = len(universe) + 1
        with TRACER.span("eval.fixpoint", aggregate=True) as fp_span:
            if formula.kind is ast.FixKind.LFP:
                run = least_fixpoint(step, bound)
            elif formula.kind is ast.FixKind.IFP:
                run = inflationary_fixpoint(step, bound)
            else:
                run = partial_fixpoint(step)
            fp_span.add("stages", run.stages)
        if lowered is not None:
            lowered.close()
        self._c_fixpoint_stages.inc(run.stages)
        self._fixpoint_memo[memo_key] = run
        return run

    def _transitive_closure(
        self,
        formula: "ast.TC | ast.DTC",
        region_env: RegionEnv,
        set_env: SetEnv,
    ) -> ConstraintRelation:
        memo_key = _structural_key(formula)
        closure = self._tc_memo.get(memo_key)
        if closure is None:
            with TRACER.span("eval.transitive_closure", aggregate=True):
                closure = self._compute_closure(formula, set_env)
            self._tc_memo[memo_key] = closure
        left = tuple(region_env[name] for name in formula.left_args)
        right = tuple(region_env[name] for name in formula.right_args)
        return _bool_relation((left, right) in closure)

    def _compute_closure(
        self, formula: "ast.TC | ast.DTC", set_env: SetEnv
    ) -> set:
        arity = len(formula.left_vars)
        count = self.extension.region_count()
        nodes = list(all_region_tuples(count, arity))
        edges = set()
        for source in nodes:
            for target in nodes:
                env = dict(zip(formula.left_vars, source))
                env.update(zip(formula.right_vars, target))
                if self.truth(formula.body, env, set_env):
                    edges.add((source, target))
        if isinstance(formula, ast.DTC):
            return deterministic_transitive_closure(nodes, edges)
        return transitive_closure(nodes, edges)

    def _rbit(
        self,
        formula: ast.RBit,
        region_env: RegionEnv,
        set_env: SetEnv,
    ) -> ConstraintRelation:
        body_env = {
            name: region_env[name]
            for name in formula.body.free_region_vars()
        }
        relation = self._eval(formula.body, body_env, set_env)
        # Normalise the schema to exactly the element variable.
        relation = self._extend(relation, (formula.element_var,))
        denotation = RBitDenotation(unique_rational(relation))
        numerator_idx = region_env[formula.numerator]
        denominator_idx = region_env[formula.denominator]
        ranks = self._zero_dimensional_ranks()
        num_region = self.extension.decomposition.region(numerator_idx)
        den_region = self.extension.decomposition.region(denominator_idx)
        return _bool_relation(
            denotation.holds(
                num_region.dimension,
                ranks.get(numerator_idx),
                den_region.dimension,
                ranks.get(denominator_idx),
                numerator_idx == denominator_idx,
            )
        )

    def _zero_dimensional_ranks(self) -> Mapping[int, int]:
        """1-based rank of each 0-dimensional region in the lex order."""
        if self._zero_dim_ranks is None:
            ordered = self.extension.zero_dimensional_regions()
            self._zero_dim_ranks = {
                region.index: rank + 1
                for rank, region in enumerate(ordered)
            }
        return self._zero_dim_ranks


def evaluate_query(
    formula: ast.RegFormula,
    database: ConstraintDatabase,
    decomposition: str = "arrangement",
    spatial_name: str = "S",
) -> ConstraintRelation:
    """Evaluate a closed-region-variable query against a database.

    Deprecated one-line wrapper over :class:`repro.engine.QueryEngine`
    (which caches the Theorem-3.1 construction across calls); the
    formula may have free element variables (the query's output columns)
    but no free region or set variables — the paper's notion of a
    RegFO/RegLFP/RegTC *query*.
    """
    from repro.engine import QueryEngine

    warn_once(
        "evaluate_query",
        "evaluate_query() is deprecated; use "
        "repro.QueryEngine(database).evaluate(query) instead",
    )
    return QueryEngine(database, decomposition, spatial_name).evaluate(formula)


def query_truth(
    formula: ast.RegFormula,
    database: ConstraintDatabase,
    decomposition: str = "arrangement",
    spatial_name: str = "S",
) -> bool:
    """Truth of a boolean query (no free variables of any sort).

    Deprecated one-line wrapper over :class:`repro.engine.QueryEngine`.
    """
    from repro.engine import QueryEngine

    warn_once(
        "query_truth",
        "query_truth() is deprecated; use "
        "repro.QueryEngine(database).truth(query) instead",
    )
    return QueryEngine(database, decomposition, spatial_name).truth(formula)
