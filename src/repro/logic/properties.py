"""Database properties used by the capture theorems.

Definition 6.2: a database has the *small coordinate property* when the
absolute values of the coordinates of all points in 0-dimensional regions
are bounded by 2^O(n), n being the number of regions.  Asymptotic O(·)
only makes sense for families, so the checker takes the constant
explicitly: ``has_small_coordinate_property(ext, constant=c)`` checks
max |coordinate| ≤ 2^(c·n).  Coordinates are rationals; both numerator
magnitude and denominator are checked, matching the bit-representation
reading the rBIT encoding needs.
"""

from __future__ import annotations

from fractions import Fraction

from repro.twosorted.structure import RegionExtension


def coordinate_bound(extension: RegionExtension) -> Fraction:
    """The largest |coordinate| over all 0-dimensional regions (0 if none)."""
    largest = Fraction(0)
    for region in extension.zero_dimensional_regions():
        for coordinate in region.sample_point():
            largest = max(largest, abs(coordinate))
    return largest


def max_bit_length(extension: RegionExtension) -> int:
    """Longest numerator/denominator bit length among vertex coordinates."""
    longest = 0
    for region in extension.zero_dimensional_regions():
        for coordinate in region.sample_point():
            longest = max(
                longest,
                abs(coordinate.numerator).bit_length(),
                coordinate.denominator.bit_length(),
            )
    return longest


def has_small_coordinate_property(
    extension: RegionExtension, constant: int = 1
) -> bool:
    """Check Definition 6.2 with an explicit constant.

    True iff every vertex coordinate's numerator magnitude and
    denominator are at most 2^(constant · n), with n the total number of
    regions.  The rBIT encoding can represent exactly the coordinates
    whose bits fit into indices of 0-dimensional regions, which is what
    this bound guarantees up to the constant.
    """
    if constant < 1:
        raise ValueError("the constant must be a positive integer")
    n = len(extension.decomposition)
    return max_bit_length(extension) <= constant * n
