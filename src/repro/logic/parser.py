"""Text syntax for the region query languages.

The concrete syntax follows the paper's notational convention: element
variables are lower-case identifiers, region (and set) variables start
with an upper-case letter.  Quantifiers bind mixed lists and dispatch on
case::

    forall x, y. S(x, y) -> (exists RX. (x, y) in RX & sub(RX, S))

Operators::

    [lfp M(R, Rp). body](X, Y)        least fixed point  (ifp / pfp alike)
    [tc (R) -> (Rp). body](X; Y)      transitive closure (dtc alike)
    [rbit x. body](Rn, Rd)            the rBIT operator

Atoms::

    x + 2*y <= 3          linear constraints (chains `0 <= x < 1` allowed)
    S(x, y)               database relations (upper-case names, term args)
    M(R, Rp)              set-variable membership (all args regions)
    (x, y) in R           element containment
    adj(R, Rp)            adjacency
    sub(R, S)             region contained in a database relation
    R = Rp, R != Rp       region equality

Connectives ``& | ! -> <->`` with the usual precedences; ``true`` and
``false``.  Keywords are lower-case and reserved.
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import NamedTuple

from repro.errors import ParseError
from repro.constraints.atoms import Atom, Op
from repro.constraints.terms import LinearTerm
from repro.logic.ast import (
    Adj,
    DTC,
    ExistsElem,
    ExistsRegion,
    FixKind,
    Fixpoint,
    ForallElem,
    ForallRegion,
    InRegion,
    LinearAtom,
    RBit,
    RFalse,
    RNot,
    RTrue,
    RegFormula,
    RegionEq,
    RelationAtom,
    SetAtom,
    SubsetAtom,
    TC,
    reg_conjunction,
    reg_disjunction,
)


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(?:/\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><->|->|<=|>=|!=|<|>|=|&|\||!|\(|\)|\[|\]|\.|,|;|\+|-|\*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "exists", "forall", "true", "false", "adj", "sub", "in",
    "lfp", "ifp", "pfp", "tc", "dtc", "rbit",
}
_COMPARISONS = {"<", "<=", "=", "!=", ">=", ">"}
_OP_FOR = {"<": Op.LT, "<=": Op.LE, "=": Op.EQ, ">=": Op.GE, ">": Op.GT}
_FIX_KINDS = {"lfp": FixKind.LFP, "ifp": FixKind.IFP, "pfp": FixKind.PFP}


def _is_region_name(name: str) -> bool:
    return name[0].isupper()


class _QueryParser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = self._tokenize(text)
        self.index = 0

    def _tokenize(self, text: str) -> list[_Token]:
        tokens: list[_Token] = []
        position = 0
        while position < len(text):
            match = _TOKEN_RE.match(text, position)
            if match is None:
                raise ParseError(
                    f"unexpected character {text[position]!r}",
                    position, text,
                )
            position = match.end()
            if match.lastgroup == "ws":
                continue
            tokens.append(
                _Token(match.lastgroup, match.group(), match.start())
            )
        tokens.append(_Token("eof", "", len(text)))
        return tokens

    # -- token plumbing --------------------------------------------------
    def peek(self, offset: int = 0) -> _Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def accept(self, text: str) -> bool:
        if self.peek().kind != "eof" and self.peek().text == text:
            self.advance()
            return True
        return False

    def expect(self, text: str) -> _Token:
        token = self.peek()
        if token.kind == "eof" or token.text != text:
            raise ParseError(
                f"expected {text!r}, found {token.text or 'end of input'!r}",
                token.position, self.text,
            )
        return self.advance()

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(message, token.position, self.text)

    def keyword(self) -> str | None:
        token = self.peek()
        if token.kind == "ident" and token.text in _KEYWORDS:
            return token.text
        return None

    def expect_ident(self, region: bool | None = None) -> str:
        token = self.peek()
        if token.kind != "ident" or token.text in _KEYWORDS:
            raise self.error("expected a variable name")
        if region is True and not _is_region_name(token.text):
            raise self.error(
                f"expected a region variable (upper-case), got {token.text!r}"
            )
        if region is False and _is_region_name(token.text):
            raise self.error(
                f"expected an element variable (lower-case), got {token.text!r}"
            )
        return self.advance().text

    def ident_list(self, region: bool | None = None) -> list[str]:
        names = [self.expect_ident(region)]
        while self.accept(","):
            names.append(self.expect_ident(region))
        return names

    # -- formula levels ----------------------------------------------------
    def parse_formula(self) -> RegFormula:
        left = self.parse_implies()
        while self.accept("<->"):
            right = self.parse_implies()
            left = reg_disjunction(
                [
                    reg_conjunction([left, right]),
                    reg_conjunction([RNot(left), RNot(right)]),
                ]
            )
        return left

    def parse_implies(self) -> RegFormula:
        left = self.parse_or()
        if self.accept("->"):
            right = self.parse_implies()
            return reg_disjunction([RNot(left), right])
        return left

    def parse_or(self) -> RegFormula:
        parts = [self.parse_and()]
        while self.accept("|"):
            parts.append(self.parse_and())
        return reg_disjunction(parts)

    def parse_and(self) -> RegFormula:
        parts = [self.parse_unary()]
        while self.accept("&"):
            parts.append(self.parse_unary())
        return reg_conjunction(parts)

    def parse_unary(self) -> RegFormula:
        if self.accept("!"):
            return RNot(self.parse_unary())
        keyword = self.keyword()
        if keyword in ("exists", "forall"):
            return self.parse_quantifier(keyword)
        if self.peek().text == "[":
            return self.parse_bracket_operator()
        return self.parse_atom()

    def parse_quantifier(self, keyword: str) -> RegFormula:
        self.advance()
        names = self.ident_list()
        self.expect(".")
        body = self.parse_formula()
        for name in reversed(names):
            if _is_region_name(name):
                wrapper = ExistsRegion if keyword == "exists" else ForallRegion
            else:
                wrapper = ExistsElem if keyword == "exists" else ForallElem
            body = wrapper(name, body)
        return body

    # -- bracketed operators -------------------------------------------
    def parse_bracket_operator(self) -> RegFormula:
        self.expect("[")
        keyword = self.keyword()
        if keyword in _FIX_KINDS:
            return self.parse_fixpoint(_FIX_KINDS[keyword])
        if keyword in ("tc", "dtc"):
            return self.parse_tc(deterministic=keyword == "dtc")
        if keyword == "rbit":
            return self.parse_rbit()
        raise self.error("expected lfp, ifp, pfp, tc, dtc or rbit after '['")

    def parse_fixpoint(self, kind: FixKind) -> RegFormula:
        self.advance()
        set_var = self.expect_ident(region=True)
        self.expect("(")
        bound = self.ident_list(region=True)
        self.expect(")")
        self.expect(".")
        body = self.parse_formula()
        self.expect("]")
        self.expect("(")
        args = self.ident_list(region=True)
        self.expect(")")
        return Fixpoint(kind, set_var, tuple(bound), body, tuple(args))

    def _tc_vars(self) -> list[str]:
        if self.accept("("):
            names = self.ident_list(region=True)
            self.expect(")")
            return names
        return [self.expect_ident(region=True)]

    def parse_tc(self, deterministic: bool) -> RegFormula:
        self.advance()
        left_vars = self._tc_vars()
        self.expect("->")
        right_vars = self._tc_vars()
        self.expect(".")
        body = self.parse_formula()
        self.expect("]")
        self.expect("(")
        left_args = self.ident_list(region=True)
        self.expect(";")
        right_args = self.ident_list(region=True)
        self.expect(")")
        cls = DTC if deterministic else TC
        return cls(
            tuple(left_vars), tuple(right_vars), body,
            tuple(left_args), tuple(right_args),
        )

    def parse_rbit(self) -> RegFormula:
        self.advance()
        element_var = self.expect_ident(region=False)
        self.expect(".")
        body = self.parse_formula()
        self.expect("]")
        self.expect("(")
        numerator = self.expect_ident(region=True)
        self.expect(",")
        denominator = self.expect_ident(region=True)
        self.expect(")")
        return RBit(element_var, body, numerator, denominator)

    # -- atoms -----------------------------------------------------------
    def parse_atom(self) -> RegFormula:
        keyword = self.keyword()
        if keyword == "true":
            self.advance()
            return RTrue()
        if keyword == "false":
            self.advance()
            return RFalse()
        if keyword == "adj":
            self.advance()
            self.expect("(")
            left = self.expect_ident(region=True)
            self.expect(",")
            right = self.expect_ident(region=True)
            self.expect(")")
            return Adj(left, right)
        if keyword == "sub":
            self.advance()
            self.expect("(")
            region = self.expect_ident(region=True)
            self.expect(",")
            relation = self.expect_ident(region=True)
            self.expect(")")
            return SubsetAtom(region, relation)

        token = self.peek()
        if (
            token.kind == "ident"
            and token.text not in _KEYWORDS
            and _is_region_name(token.text)
        ):
            return self.parse_uppercase_atom()
        return self.parse_term_atom()

    def parse_uppercase_atom(self) -> RegFormula:
        name = self.advance().text
        if self.accept("("):
            return self.parse_application(name)
        if self.accept("="):
            other = self.expect_ident(region=True)
            return RegionEq(name, other)
        if self.accept("!="):
            other = self.expect_ident(region=True)
            return RNot(RegionEq(name, other))
        raise self.error(
            f"a bare region variable {name!r} is not a formula; "
            "expected '(', '=' or '!='"
        )

    def parse_application(self, name: str) -> RegFormula:
        """``Name(...)``: a set atom if every argument is a bare region
        variable, otherwise a database relation atom over terms."""
        saved = self.index
        all_regions = True
        args_regions: list[str] = []
        while True:
            token = self.peek()
            if (
                token.kind == "ident"
                and token.text not in _KEYWORDS
                and _is_region_name(token.text)
                and self.peek(1).text in (",", ")")
            ):
                args_regions.append(self.advance().text)
            else:
                all_regions = False
                break
            if self.accept(","):
                continue
            break
        if all_regions and self.accept(")"):
            return SetAtom(name, tuple(args_regions))
        # Fall back to term arguments.
        self.index = saved
        terms = [self.parse_term()]
        while self.accept(","):
            terms.append(self.parse_term())
        self.expect(")")
        return RelationAtom(name, tuple(terms))

    def parse_term_atom(self) -> RegFormula:
        """Comparisons, `(t̄) in R`, and parenthesised formulas."""
        if self.peek().text == "(":
            saved = self.index
            # Attempt: tuple of terms followed by `in`.
            try:
                self.advance()
                terms = [self.parse_term()]
                while self.accept(","):
                    terms.append(self.parse_term())
                self.expect(")")
                if self.keyword() == "in":
                    self.advance()
                    region = self.expect_ident(region=True)
                    return InRegion(tuple(terms), region)
                if len(terms) == 1 and self.peek().text in _COMPARISONS:
                    return self.parse_comparison(first=terms[0])
                raise ParseError("not a term atom", self.peek().position,
                                 self.text)
            except ParseError:
                self.index = saved
            # Attempt: parenthesised formula.
            self.advance()
            inner = self.parse_formula()
            self.expect(")")
            return inner
        first = self.parse_term()
        if self.keyword() == "in":
            self.advance()
            region = self.expect_ident(region=True)
            return InRegion((first,), region)
        return self.parse_comparison(first=first)

    def parse_comparison(self, first: LinearTerm) -> RegFormula:
        terms = [first]
        operators: list[str] = []
        while self.peek().text in _COMPARISONS:
            operators.append(self.advance().text)
            terms.append(self.parse_term())
        if not operators:
            raise self.error("expected a comparison operator")
        parts: list[RegFormula] = []
        for left, op_text, right in zip(terms, operators, terms[1:]):
            if op_text == "!=":
                parts.append(
                    reg_disjunction(
                        [
                            LinearAtom(Atom.compare(left, Op.LT, right)),
                            LinearAtom(Atom.compare(left, Op.GT, right)),
                        ]
                    )
                )
            else:
                parts.append(
                    LinearAtom(Atom.compare(left, _OP_FOR[op_text], right))
                )
        return reg_conjunction(parts)

    # -- terms -------------------------------------------------------------
    def parse_term(self) -> LinearTerm:
        term = self.parse_product()
        while self.peek().text in ("+", "-"):
            if self.accept("+"):
                term = term + self.parse_product()
            else:
                self.advance()
                term = term - self.parse_product()
        return term

    def parse_product(self) -> LinearTerm:
        term = self.parse_factor()
        while self.accept("*"):
            term = term * self.parse_factor()
        return term

    def parse_factor(self) -> LinearTerm:
        token = self.peek()
        if token.text == "-":
            self.advance()
            return -self.parse_factor()
        if token.kind == "number":
            self.advance()
            return LinearTerm.const(Fraction(token.text))
        if token.kind == "ident" and token.text not in _KEYWORDS:
            if _is_region_name(token.text):
                raise self.error(
                    f"region variable {token.text!r} cannot appear in a term"
                )
            self.advance()
            return LinearTerm.variable(token.text)
        if token.text == "(":
            self.advance()
            inner = self.parse_term()
            self.expect(")")
            return inner
        raise self.error(
            f"expected a term, found {token.text or 'end of input'!r}"
        )


def parse_query(text: str) -> RegFormula:
    """Parse a region-logic formula from text."""
    parser = _QueryParser(text)
    formula = parser.parse_formula()
    trailing = parser.peek()
    if trailing.kind != "eof":
        raise ParseError(
            f"unexpected trailing input {trailing.text!r}",
            trailing.position, text,
        )
    return formula
