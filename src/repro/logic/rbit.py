"""The rBIT operator (Definition 5.1).

rBIT bridges the continuous and the finite sort: if a formula φ(x, P̄)
pins down exactly one rational a for the current interpretation of its
region parameters, the operator exposes the *bits* of a's numerator and
denominator as a relation on 0-dimensional regions — the i-th and j-th
0-dimensional regions (in the lexicographic order of their points,
1-based) stand in the relation iff bit i of the numerator and bit j of
the denominator are 1.  For a = 0 the operator instead relates every
higher-dimensional region to itself.  In every other case it denotes ∅.

This is the "technical necessity" that lets RegLFP spell out binary
coordinate representations in the capture proof (Theorem 6.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.constraints.relation import ConstraintRelation


@dataclass(frozen=True)
class RBitDenotation:
    """The semantic content of one rBIT application.

    ``value`` is the unique rational the body defined, or ``None`` when
    the body did not define exactly one rational (denotation ∅).
    """

    value: Fraction | None

    def holds(
        self,
        numerator_region_dim: int,
        numerator_rank: int | None,
        denominator_region_dim: int,
        denominator_rank: int | None,
        same_region: bool,
    ) -> bool:
        """Truth of rBIT at a pair of regions.

        ``*_rank`` is the 1-based position among the 0-dimensional
        regions, or ``None`` when the region is higher-dimensional.
        """
        if self.value is None:
            return False
        if self.value == 0:
            return (
                same_region
                and numerator_region_dim > 0
                and denominator_region_dim > 0
            )
        if numerator_rank is None or denominator_rank is None:
            return False
        return bit_is_set(
            abs(self.value.numerator), numerator_rank
        ) and bit_is_set(self.value.denominator, denominator_rank)


def bit_is_set(value: int, position: int) -> bool:
    """Is bit ``position`` (1-based from the least significant) set?"""
    if position < 1:
        raise ValueError("bit positions are 1-based")
    return (value >> (position - 1)) & 1 == 1


def unique_rational(relation: ConstraintRelation) -> Fraction | None:
    """The single rational a relation over one variable defines, if any.

    ``None`` when the relation is empty or contains more than one point.
    Exact: every DNF disjunct must be empty or the same single point.
    """
    if relation.arity != 1:
        raise ValueError("rBIT bodies define unary relations")
    value: Fraction | None = None
    for polyhedron in relation.polyhedra():
        point = polyhedron.feasible_point()
        if point is None:
            continue
        if polyhedron.affine_dimension() != 0:
            return None
        if value is None:
            value = point[0]
        elif value != point[0]:
            return None
    return value
