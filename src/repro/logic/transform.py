"""Formula transformations: negation normal form and miniscoping.

Evaluation cost of the region logics is driven by quantifier scopes —
every region quantifier multiplies work by |Reg| and every element
quantifier costs a Fourier–Motzkin projection over its body's whole
representation.  The passes here shrink scopes without changing
semantics:

* :func:`to_nnf` — push negations to the atoms (¬∃ → ∀¬, De Morgan,
  ¬¬-elimination); fixed-point/TC/rBIT operators are treated as opaque
  atoms (their bodies are normalised recursively);
* :func:`miniscope` — distribute ∃ over ∨ and ∀ over ∧, and drop
  quantifiers out of operands that do not mention the bound variable;
* :func:`optimize` — NNF followed by miniscoping, the combination the
  evaluator benefits from.

All passes preserve the answer relation exactly (property-tested).
"""

from __future__ import annotations

from repro.logic import ast
from repro.logic.ast import (
    reg_conjunction,
    reg_disjunction,
)


def to_nnf(formula: ast.RegFormula, negate: bool = False) -> ast.RegFormula:
    """Negation normal form; negation survives only on atoms."""
    if isinstance(formula, ast.RTrue):
        return ast.RFalse() if negate else formula
    if isinstance(formula, ast.RFalse):
        return ast.RTrue() if negate else formula
    if isinstance(formula, ast.RNot):
        return to_nnf(formula.operand, not negate)
    if isinstance(formula, ast.RAnd):
        parts = tuple(to_nnf(op, negate) for op in formula.operands)
        return reg_disjunction(parts) if negate else reg_conjunction(parts)
    if isinstance(formula, ast.ROr):
        parts = tuple(to_nnf(op, negate) for op in formula.operands)
        return reg_conjunction(parts) if negate else reg_disjunction(parts)
    if isinstance(formula, ast.ExistsElem):
        body = to_nnf(formula.body, negate)
        cls = ast.ForallElem if negate else ast.ExistsElem
        return cls(formula.variable, body)
    if isinstance(formula, ast.ForallElem):
        body = to_nnf(formula.body, negate)
        cls = ast.ExistsElem if negate else ast.ForallElem
        return cls(formula.variable, body)
    if isinstance(formula, ast.ExistsRegion):
        body = to_nnf(formula.body, negate)
        cls = ast.ForallRegion if negate else ast.ExistsRegion
        return cls(formula.variable, body)
    if isinstance(formula, ast.ForallRegion):
        body = to_nnf(formula.body, negate)
        cls = ast.ExistsRegion if negate else ast.ForallRegion
        return cls(formula.variable, body)
    # Operators and atoms: normalise inner bodies, keep outer polarity.
    normalised = _normalise_operator_bodies(formula)
    return ast.RNot(normalised) if negate else normalised


def _normalise_operator_bodies(formula: ast.RegFormula) -> ast.RegFormula:
    if isinstance(formula, ast.Fixpoint):
        return ast.Fixpoint(
            formula.kind,
            formula.set_var,
            formula.bound_vars,
            to_nnf(formula.body),
            formula.args,
        )
    if isinstance(formula, ast.TC):
        return ast.TC(
            formula.left_vars, formula.right_vars,
            to_nnf(formula.body),
            formula.left_args, formula.right_args,
        )
    if isinstance(formula, ast.DTC):
        return ast.DTC(
            formula.left_vars, formula.right_vars,
            to_nnf(formula.body),
            formula.left_args, formula.right_args,
        )
    if isinstance(formula, ast.RBit):
        return ast.RBit(
            formula.element_var,
            to_nnf(formula.body),
            formula.numerator,
            formula.denominator,
        )
    return formula


def _free_of(formula: ast.RegFormula, variable: str, element: bool) -> bool:
    if element:
        return variable not in formula.free_element_vars()
    return variable not in formula.free_region_vars()


def _miniscope_quantifier(
    variable: str,
    body: ast.RegFormula,
    existential: bool,
    element: bool,
) -> ast.RegFormula:
    """Minimise the scope of one quantifier over an already-scoped body."""
    if element:
        cls = ast.ExistsElem if existential else ast.ForallElem
    else:
        cls = ast.ExistsRegion if existential else ast.ForallRegion

    if _free_of(body, variable, element):
        return body
    distributive = ast.ROr if existential else ast.RAnd
    if isinstance(body, distributive):
        return (reg_disjunction if existential else reg_conjunction)(
            _miniscope_quantifier(variable, op, existential, element)
            for op in body.operands
        )
    other = ast.RAnd if existential else ast.ROr
    if isinstance(body, other):
        inside = [
            op for op in body.operands
            if not _free_of(op, variable, element)
        ]
        outside = [
            op for op in body.operands
            if _free_of(op, variable, element)
        ]
        if outside:
            rebuilt = (reg_conjunction if existential else reg_disjunction)(
                inside
            )
            scoped = _miniscope_quantifier(
                variable, rebuilt, existential, element
            )
            return (reg_conjunction if existential else reg_disjunction)(
                [scoped, *outside]
            )
    return cls(variable, body)


def miniscope(formula: ast.RegFormula) -> ast.RegFormula:
    """Push quantifiers to the smallest scopes (expects NNF input)."""
    if isinstance(formula, (ast.RAnd, ast.ROr)):
        cls = reg_conjunction if isinstance(formula, ast.RAnd) else \
            reg_disjunction
        return cls(miniscope(op) for op in formula.operands)
    if isinstance(formula, ast.RNot):
        return ast.RNot(miniscope(formula.operand))
    if isinstance(
        formula,
        (ast.ExistsElem, ast.ForallElem, ast.ExistsRegion,
         ast.ForallRegion),
    ):
        body = miniscope(formula.body)
        existential = isinstance(
            formula, (ast.ExistsElem, ast.ExistsRegion)
        )
        element = isinstance(formula, (ast.ExistsElem, ast.ForallElem))
        return _miniscope_quantifier(
            formula.variable, body, existential, element
        )
    if isinstance(formula, ast.Fixpoint):
        return ast.Fixpoint(
            formula.kind, formula.set_var, formula.bound_vars,
            miniscope(formula.body), formula.args,
        )
    if isinstance(formula, ast.TC):
        return ast.TC(
            formula.left_vars, formula.right_vars,
            miniscope(formula.body),
            formula.left_args, formula.right_args,
        )
    if isinstance(formula, ast.DTC):
        return ast.DTC(
            formula.left_vars, formula.right_vars,
            miniscope(formula.body),
            formula.left_args, formula.right_args,
        )
    if isinstance(formula, ast.RBit):
        return ast.RBit(
            formula.element_var, miniscope(formula.body),
            formula.numerator, formula.denominator,
        )
    return formula


def optimize(formula: ast.RegFormula) -> ast.RegFormula:
    """NNF + miniscoping; the answer relation is unchanged."""
    return miniscope(to_nnf(formula))
