"""Transitive closure over tuples of regions (Definition 7.2).

The TC operator's edge relation lives on Reg^m; its transitive closure is
computed by breadth-first search from every node.  The deterministic
variant (DTC) first restricts the edge relation to nodes with exactly one
successor — the classical logspace-flavoured operator.

Paths have at least one step (the Ebbinghaus–Flum convention the paper
cites for [3]); pass ``reflexive=True`` for the reflexive-transitive
variant.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

RegionTuple = tuple[int, ...]
Edge = tuple[RegionTuple, RegionTuple]


def transitive_closure(
    nodes: Iterable[RegionTuple],
    edges: set[Edge],
    reflexive: bool = False,
) -> set[Edge]:
    """All pairs (ū, v̄) connected by a path of ≥ 1 edge (≥ 0 if reflexive)."""
    node_list = list(nodes)
    successors: dict[RegionTuple, list[RegionTuple]] = {}
    for source, target in edges:
        successors.setdefault(source, []).append(target)

    closure: set[Edge] = set()
    for start in node_list:
        reached: set[RegionTuple] = set()
        frontier = deque(successors.get(start, ()))
        while frontier:
            current = frontier.popleft()
            if current in reached:
                continue
            reached.add(current)
            frontier.extend(successors.get(current, ()))
        closure.update((start, target) for target in reached)
        if reflexive:
            closure.add((start, start))
    return closure


def deterministic_edges(
    nodes: Iterable[RegionTuple], edges: set[Edge]
) -> set[Edge]:
    """The deterministic restriction: keep edges from unique-successor nodes."""
    successors: dict[RegionTuple, list[RegionTuple]] = {}
    for source, target in edges:
        successors.setdefault(source, []).append(target)
    return {
        (source, targets[0])
        for source, targets in successors.items()
        if len(targets) == 1
    }


def deterministic_transitive_closure(
    nodes: Iterable[RegionTuple],
    edges: set[Edge],
    reflexive: bool = False,
) -> set[Edge]:
    """DTC: transitive closure of the deterministic edge restriction."""
    node_list = list(nodes)
    return transitive_closure(
        node_list, deterministic_edges(node_list, edges), reflexive
    )
