"""The paper's query languages: RegFO and its recursive extensions.

* :mod:`repro.logic.ast` — the two-sorted formula AST: element variables
  over ℝ, region variables over the finite region sort, set variables for
  fixed-point induction, and the operators LFP/IFP/PFP (Definition 5.1),
  TC/DTC (Definition 7.2) and rBIT.
* :mod:`repro.logic.parser` — a readable text syntax (lower-case
  identifiers are element variables, upper-case are region/set variables,
  matching the paper's notational convention).
* :mod:`repro.logic.evaluator` — query evaluation on region extensions by
  structural induction, following the proofs of Theorems 4.3 and 6.1;
  answers are quantifier-free constraint relations (closure).
* :mod:`repro.logic.fixpoint` / :mod:`repro.logic.transitive_closure` —
  the finite induction engines over the region sort.
* :mod:`repro.logic.rbit` — the rBIT operator.
* :mod:`repro.logic.properties` — the small coordinate property
  (Definition 6.2) and related checks.
"""

from repro.logic.ast import (
    Adj,
    DTC,
    ExistsElem,
    ExistsRegion,
    FixKind,
    Fixpoint,
    ForallElem,
    ForallRegion,
    InRegion,
    LinearAtom,
    RAnd,
    RBit,
    RFalse,
    RNot,
    ROr,
    RTrue,
    RegionEq,
    RegFormula,
    RelationAtom,
    SetAtom,
    SubsetAtom,
    TC,
)
from repro.logic.evaluator import Evaluator, evaluate_query
from repro.logic.parser import parse_query
from repro.logic.properties import (
    coordinate_bound,
    has_small_coordinate_property,
)
from repro.logic.transform import miniscope, optimize, to_nnf as reg_to_nnf

__all__ = [
    "Adj",
    "DTC",
    "ExistsElem",
    "ExistsRegion",
    "FixKind",
    "Fixpoint",
    "ForallElem",
    "ForallRegion",
    "InRegion",
    "LinearAtom",
    "RAnd",
    "RBit",
    "RFalse",
    "RNot",
    "ROr",
    "RTrue",
    "RegionEq",
    "RegFormula",
    "RelationAtom",
    "SetAtom",
    "SubsetAtom",
    "TC",
    "Evaluator",
    "evaluate_query",
    "parse_query",
    "coordinate_bound",
    "has_small_coordinate_property",
    "miniscope",
    "optimize",
    "reg_to_nnf",
]
