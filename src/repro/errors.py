"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses are organised by the
subsystem that raises them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeometryError(ReproError):
    """Raised for invalid geometric input (dimension mismatches, etc.)."""


class DimensionMismatchError(GeometryError):
    """Raised when vectors/points of incompatible dimensions are combined."""


class SingularSystemError(GeometryError):
    """Raised when a linear system expected to be regular is singular."""


class LPError(GeometryError):
    """Raised when the LP solver receives malformed input."""


class FormulaError(ReproError):
    """Raised for ill-formed constraint formulas."""


class NonLinearTermError(FormulaError):
    """Raised when a term that must stay linear would become non-linear."""


class FreeVariableError(FormulaError):
    """Raised when a formula has unexpected free variables."""


class ParseError(ReproError):
    """Raised by the constraint and query parsers on malformed input."""

    def __init__(self, message: str, position: int | None = None,
                 text: str | None = None) -> None:
        self.position = position
        self.text = text
        if position is not None and text is not None:
            context = text[max(0, position - 20):position + 20]
            message = f"{message} (at position {position}, near {context!r})"
        super().__init__(message)


class EvaluationError(ReproError):
    """Raised when a query cannot be evaluated on a given database."""


class UnboundVariableError(EvaluationError):
    """Raised when evaluation encounters a variable missing from the scope."""


class ClosureError(EvaluationError):
    """Raised when an operation would leave the linear-constraint class."""


class RBitError(EvaluationError):
    """Raised when the rBIT operator's precondition fails.

    The operator requires its sub-formula to define exactly one rational
    number for a given interpretation of the free region variables; per the
    paper the result is the empty set in that case, so this exception is
    internal and converted to an empty answer by the evaluator.
    """


class CaptureError(ReproError):
    """Raised by the Turing-machine capture toolkit."""


class WorkloadError(ReproError):
    """Raised by workload generators for invalid parameters."""


class DeltaError(ReproError):
    """Raised for invalid incremental updates (unknown relation, schema
    mismatch, retracting a disjunct the relation does not contain)."""
