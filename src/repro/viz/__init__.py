"""Pure-stdlib SVG rendering of 2-D relations and decompositions."""

from repro.viz.svg import (
    render_arrangement,
    render_nc1_decomposition,
    render_relation,
)

__all__ = [
    "render_arrangement",
    "render_nc1_decomposition",
    "render_relation",
]
