"""A small SVG writer for 2-dimensional constraint data.

Regenerates the paper's illustrations (Figures 1-3 and 7-10) from live
objects: relations are shaded by point sampling, arrangements draw their
hyperplanes and face sample points (coloured by membership in S), and
NC¹ decompositions draw their simplex regions and rays.  No third-party
plotting library is used — output is a standalone SVG string.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.errors import GeometryError
from repro.arrangement.builder import Arrangement
from repro.constraints.relation import ConstraintRelation
from repro.regions.nc1 import NC1Decomposition

Viewport = tuple[float, float, float, float]  # xmin, xmax, ymin, ymax

_IN_COLOUR = "#4878a8"
_OUT_COLOUR = "#c8c8c8"
_LINE_COLOUR = "#303030"
_REGION_COLOURS = ["#88b04b", "#d65f5f", "#6f5fd6", "#d6a65f", "#5fd6c8"]


class _Canvas:
    """Collects SVG elements and maps data coordinates to pixels."""

    def __init__(self, viewport: Viewport, size: int) -> None:
        self.xmin, self.xmax, self.ymin, self.ymax = viewport
        if self.xmin >= self.xmax or self.ymin >= self.ymax:
            raise GeometryError("degenerate viewport")
        self.size = size
        self.elements: list[str] = []

    def tx(self, x: float) -> float:
        return (x - self.xmin) / (self.xmax - self.xmin) * self.size

    def ty(self, y: float) -> float:
        # SVG's y axis points down.
        return (self.ymax - y) / (self.ymax - self.ymin) * self.size

    def line(self, x1: float, y1: float, x2: float, y2: float,
             colour: str = _LINE_COLOUR, width: float = 1.5) -> None:
        self.elements.append(
            f'<line x1="{self.tx(x1):.2f}" y1="{self.ty(y1):.2f}" '
            f'x2="{self.tx(x2):.2f}" y2="{self.ty(y2):.2f}" '
            f'stroke="{colour}" stroke-width="{width}"/>'
        )

    def circle(self, x: float, y: float, radius: float,
               colour: str) -> None:
        self.elements.append(
            f'<circle cx="{self.tx(x):.2f}" cy="{self.ty(y):.2f}" '
            f'r="{radius}" fill="{colour}"/>'
        )

    def rect(self, x: float, y: float, w: float, h: float,
             colour: str, opacity: float = 1.0) -> None:
        self.elements.append(
            f'<rect x="{self.tx(x):.2f}" y="{self.ty(y + h):.2f}" '
            f'width="{w / (self.xmax - self.xmin) * self.size:.2f}" '
            f'height="{h / (self.ymax - self.ymin) * self.size:.2f}" '
            f'fill="{colour}" opacity="{opacity}"/>'
        )

    def polygon(self, points: Sequence[tuple[float, float]], colour: str,
                opacity: float = 0.5) -> None:
        path = " ".join(
            f"{self.tx(x):.2f},{self.ty(y):.2f}" for x, y in points
        )
        self.elements.append(
            f'<polygon points="{path}" fill="{colour}" '
            f'opacity="{opacity}" stroke="{colour}"/>'
        )

    def to_svg(self) -> str:
        body = "\n".join(self.elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.size}" height="{self.size}" '
            f'viewBox="0 0 {self.size} {self.size}">\n'
            f'<rect width="100%" height="100%" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )


def _require_planar(arity: int) -> None:
    if arity != 2:
        raise GeometryError("SVG rendering supports 2-D data only")


def render_relation(
    relation: ConstraintRelation,
    viewport: Viewport = (-1.0, 4.0, -1.0, 4.0),
    size: int = 400,
    samples: int = 60,
) -> str:
    """Shade a 2-D relation by membership of a sample grid (Figure 1)."""
    _require_planar(relation.arity)
    canvas = _Canvas(viewport, size)
    step_x = (canvas.xmax - canvas.xmin) / samples
    step_y = (canvas.ymax - canvas.ymin) / samples
    for i in range(samples):
        for j in range(samples):
            x = Fraction(canvas.xmin + (i + 0.5) * step_x).limit_denominator(
                10**6
            )
            y = Fraction(canvas.ymin + (j + 0.5) * step_y).limit_denominator(
                10**6
            )
            if relation.contains((x, y)):
                canvas.rect(
                    float(x) - step_x / 2,
                    float(y) - step_y / 2,
                    step_x,
                    step_y,
                    _IN_COLOUR,
                    opacity=0.6,
                )
    return canvas.to_svg()


def _draw_hyperplane(canvas: _Canvas, normal, offset) -> None:
    a, b = float(normal[0]), float(normal[1])
    c = float(offset)
    if abs(b) > 1e-12:
        x1, x2 = canvas.xmin, canvas.xmax
        y1 = (c - a * x1) / b
        y2 = (c - a * x2) / b
        canvas.line(x1, y1, x2, y2)
    else:
        x = c / a
        canvas.line(x, canvas.ymin, x, canvas.ymax)


def render_arrangement(
    arrangement: Arrangement,
    viewport: Viewport = (-1.0, 4.0, -1.0, 4.0),
    size: int = 400,
) -> str:
    """Hyperplanes, face witnesses and vertices of A(S) (Figures 2-3)."""
    if arrangement.dimension != 2:
        raise GeometryError("SVG rendering supports 2-D arrangements only")
    canvas = _Canvas(viewport, size)
    for plane in arrangement.hyperplanes:
        _draw_hyperplane(canvas, plane.normal, plane.offset)
    for face in arrangement.faces:
        colour = _IN_COLOUR if face.in_relation else _OUT_COLOUR
        radius = 5.0 if face.dimension == 0 else 3.0
        canvas.circle(
            float(face.sample[0]), float(face.sample[1]), radius, colour
        )
    return canvas.to_svg()


def render_nc1_decomposition(
    decomposition: NC1Decomposition,
    viewport: Viewport = (-1.0, 8.0, -2.0, 8.0),
    size: int = 400,
    ray_length: float = 3.0,
) -> str:
    """Simplex regions of the Appendix-A decomposition (Figures 8, 10)."""
    if decomposition.ambient_dimension != 2:
        raise GeometryError("SVG rendering supports 2-D data only")
    canvas = _Canvas(viewport, size)
    for index, region in enumerate(decomposition.regions):
        colour = _REGION_COLOURS[index % len(_REGION_COLOURS)]
        body = region.body
        points = [(float(p[0]), float(p[1])) for p in body.points]
        if body.rays:
            for ray in body.rays:
                direction = (float(ray[0]), float(ray[1]))
                norm = max(abs(direction[0]), abs(direction[1]), 1e-9)
                scale = ray_length / norm
                for px, py in points:
                    canvas.line(
                        px, py,
                        px + direction[0] * scale,
                        py + direction[1] * scale,
                        colour=colour, width=2.0,
                    )
        if len(points) >= 3:
            canvas.polygon(points, colour, opacity=0.35)
        elif len(points) == 2:
            canvas.line(
                points[0][0], points[0][1],
                points[1][0], points[1][1],
                colour=colour, width=2.5,
            )
        else:
            canvas.circle(points[0][0], points[0][1], 4.5, colour)
    return canvas.to_svg()
