"""Once-per-process deprecation warnings for the legacy shims.

The deprecated entry points (``evaluate_query``, ``query_truth``,
``lp_statistics``, ``Evaluator.stats``) sit on hot paths of downstream
scripts, so they warn exactly once per process per shim — enough for the
message to surface, cheap enough to keep calling.  Tests that assert the
warning call :func:`reset_deprecation_warnings` first; the tier-1 suite
itself runs warning-clean (``filterwarnings`` in ``pyproject.toml``
escalates these messages to errors).
"""

from __future__ import annotations

import threading
import warnings

_SEEN: set[str] = set()
# Guards the check-then-add below.  ``EnginePool`` checks engines out
# across worker threads, and two threads hitting the same legacy kwarg
# simultaneously could both pass the membership test and double-warn.
_SEEN_LOCK = threading.Lock()


def warn_once(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` for ``key`` once per process.

    Thread-safe: the membership test and the registration are one
    atomic step, so concurrent callers produce exactly one warning.
    """
    with _SEEN_LOCK:
        if key in _SEEN:
            return
        _SEEN.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_warnings() -> None:
    """Forget which shims have warned (for tests asserting the warning)."""
    with _SEEN_LOCK:
        _SEEN.clear()
