"""Content-addressed on-disk persistence for engine artifacts.

A :class:`DiskStore` maps ``(kind, key)`` pairs — keys are the SHA-256
content digests of :mod:`repro.store.codec` — to verified envelope
files::

    <root>/v1/arrangement/ab/abcdef….json
    <root>/v1/relation/c0/c0ffee….json
    <root>/quarantine/…                    # corrupted entries, kept

Design rules (the same trust model as the LP filter: fast when right,
never wrong):

* **atomic writes** — entries are written to a temporary file in the
  same directory and ``os.replace``-d into place, so readers never see
  a half-written entry, even across concurrent processes;
* **verified reads** — every load re-checks the envelope checksum and
  schema version; any mismatch (truncation, bit flip, version bump)
  *quarantines* the entry — it is moved aside into ``quarantine/`` for
  post-mortems, ``store.corrupt_entries`` is incremented, and the load
  reports a miss so the caller rebuilds from scratch.  A corrupted
  entry can cost time, never correctness;
* **bounded size** — with a ``size_budget`` (bytes), every save evicts
  least-recently-used entries (loads refresh an entry's mtime) until
  the store fits the budget again, counting ``store.evictions``;
* **observable** — ``store.hits`` / ``store.misses`` / ``store.writes``
  / ``store.corrupt_entries`` / ``store.evictions`` counters in the
  process registry, plus aggregate ``store.load`` / ``store.save``
  spans visible in ``repro profile`` and ``--trace`` output.

The store layout is versioned by the codec schema, so a codec bump
simply starts a fresh subtree instead of misreading old entries.
"""

from __future__ import annotations

import itertools
import os
import pathlib
import threading

from repro.obs.journal import JOURNAL
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.telemetry import get_telemetry
from repro.obs.tracing import TRACER
from repro.store import codec

#: Latency distributions of store round trips, bound once like the
#: counters (one histogram observe per load/save — disk I/O dwarfs it).
_H_LOAD_SECONDS = get_telemetry().histogram("store.load_seconds")
_H_SAVE_SECONDS = get_telemetry().histogram("store.save_seconds")


class DiskStore:
    """A verified, content-addressed artifact cache on local disk."""

    def __init__(
        self,
        root: "str | os.PathLike[str]",
        size_budget: int | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.root = pathlib.Path(root).expanduser()
        if size_budget is not None and size_budget <= 0:
            raise ValueError("size_budget must be positive (bytes)")
        self.size_budget = size_budget
        self.root.mkdir(parents=True, exist_ok=True)
        # One store may be shared by many engines across threads (the
        # server pool): writes stay atomic per-file via os.replace, but
        # temp-name allocation, quarantine moves and LRU eviction are
        # serialised so interleaved save/load from two engines can never
        # collide on a temp file or double-evict.
        self._mutate_lock = threading.Lock()
        self._temp_seq = itertools.count()
        registry = metrics if metrics is not None else get_registry()
        self._c_hits = registry.counter("store.hits")
        self._c_misses = registry.counter("store.misses")
        self._c_writes = registry.counter("store.writes")
        self._c_corrupt = registry.counter("store.corrupt_entries")
        self._c_evictions = registry.counter("store.evictions")

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def entries_root(self) -> pathlib.Path:
        """The schema-versioned subtree holding all current entries."""
        return self.root / f"v{codec.SCHEMA_VERSION}"

    @property
    def quarantine_root(self) -> pathlib.Path:
        return self.root / "quarantine"

    def entry_path(self, kind: str, key: str) -> pathlib.Path:
        if kind not in codec.KINDS:
            raise ValueError(f"unknown artifact kind {kind!r}")
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"keys must be hex digests, got {key!r}")
        return self.entries_root / kind / key[:2] / f"{key}.json"

    def _entry_files(self) -> list[pathlib.Path]:
        if not self.entries_root.exists():
            return []
        return [
            path
            for path in self.entries_root.glob("*/*/*.json")
            if path.is_file()
        ]

    # ------------------------------------------------------------------
    # Load / save
    # ------------------------------------------------------------------
    def load(self, kind: str, key: str) -> object | None:
        """The decoded artifact, or ``None`` on miss *or* corruption.

        Corruption (unreadable file, checksum mismatch, foreign schema
        version) quarantines the entry and reports a miss, so callers
        always rebuild instead of trusting damaged bytes.
        """
        path = self.entry_path(kind, key)
        with _H_LOAD_SECONDS.time(), \
                TRACER.span("store.load", aggregate=True) as span:
            span.set("kind", kind)
            try:
                data = path.read_bytes()
            except FileNotFoundError:
                self._c_misses.inc()
                span.add("misses", 1)
                self._journal(kind, key, "miss")
                return None
            except OSError:
                self._c_misses.inc()
                span.add("misses", 1)
                self._journal(kind, key, "miss")
                return None
            try:
                artifact = codec.loads(kind, data)
            except codec.CodecError:
                self._quarantine(path, kind)
                self._c_corrupt.inc()
                self._c_misses.inc()
                span.add("corrupt", 1)
                self._journal(kind, key, "corrupt")
                return None
            self._c_hits.inc()
            span.add("hits", 1)
            span.add("bytes", len(data))
            self._journal(kind, key, "hit")
            self._touch(path)
            return artifact

    def save(self, kind: str, key: str, obj: object) -> pathlib.Path:
        """Write one artifact atomically; returns the entry path."""
        path = self.entry_path(kind, key)
        with _H_SAVE_SECONDS.time(), \
                TRACER.span("store.save", aggregate=True) as span:
            span.set("kind", kind)
            data = codec.dumps(kind, obj)
            path.parent.mkdir(parents=True, exist_ok=True)
            temp = path.parent / (
                f".{key}.{os.getpid()}.{next(self._temp_seq)}.tmp"
            )
            try:
                temp.write_bytes(data)
                os.replace(temp, path)
            finally:
                if temp.exists():  # pragma: no cover - crash-path cleanup
                    try:
                        temp.unlink()
                    except OSError:
                        pass
            self._c_writes.inc()
            span.add("bytes", len(data))
            self._journal(kind, key, "write")
            if self.size_budget is not None:
                with self._mutate_lock:
                    self._evict()
        return path

    @staticmethod
    def _journal(kind: str, key: str, outcome: str) -> None:
        """One ``cache`` journal event per load/save decision."""
        if JOURNAL.enabled:
            JOURNAL.emit(
                "cache", layer="store", kind=kind,
                outcome=outcome, key=key[:12],
            )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _touch(self, path: pathlib.Path) -> None:
        """Refresh an entry's recency stamp (the LRU ordering key)."""
        try:
            os.utime(path, None)
        except OSError:  # pragma: no cover - read-only stores still work
            pass

    def _quarantine(self, path: pathlib.Path, kind: str) -> None:
        """Move a damaged entry aside (kept for inspection, never reused)."""
        with self._mutate_lock:
            self.quarantine_root.mkdir(parents=True, exist_ok=True)
            base = f"{kind}-{path.name}"
            target = self.quarantine_root / base
            suffix = 0
            while target.exists():
                suffix += 1
                target = self.quarantine_root / f"{base}.{suffix}"
            try:
                os.replace(path, target)
            except OSError:  # pragma: no cover - concurrent quarantine
                try:
                    path.unlink()
                except OSError:
                    pass

    def _evict(self) -> int:
        """Drop least-recently-used entries until the budget fits."""
        assert self.size_budget is not None
        files = self._entry_files()
        sized = []
        total = 0
        for path in files:
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - racing process
                continue
            sized.append((stat.st_mtime, str(path), path, stat.st_size))
            total += stat.st_size
        if total <= self.size_budget:
            return 0
        evicted = 0
        # Oldest first; the newest entry is never evicted, so a budget
        # smaller than one entry degrades to "keep only the latest".
        sized.sort()
        for __, __, path, size in sized[:-1]:
            if total <= self.size_budget:
                break
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing process
                continue
            total -= size
            evicted += 1
        if evicted:
            self._c_evictions.inc(evicted)
        return evicted

    def stats(self) -> dict[str, int]:
        """Counter values plus the current entry census."""
        files = self._entry_files()
        total = 0
        for path in files:
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - racing process
                continue
        return {
            "hits": self._c_hits.value,
            "misses": self._c_misses.value,
            "writes": self._c_writes.value,
            "corrupt_entries": self._c_corrupt.value,
            "evictions": self._c_evictions.value,
            "entries": len(files),
            "bytes": total,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        budget = (
            f", budget={self.size_budget}" if self.size_budget else ""
        )
        return f"DiskStore({str(self.root)!r}{budget})"
