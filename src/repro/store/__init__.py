"""Persistent, content-addressed artifact store (disk warm-start).

The package has two halves:

* :mod:`repro.store.codec` — versioned, checksummed, deterministic
  serialisation of arrangements and constraint relations;
* :mod:`repro.store.disk` — :class:`DiskStore`, the atomic/verified/
  LRU-bounded on-disk cache those envelopes live in.

Process-wide resolution mirrors the LP-mode and jobs knobs: an explicit
argument (``QueryEngine(cache_dir=…)``, ``--cache-dir``) wins, then the
``REPRO_CACHE_DIR`` environment variable (with ``REPRO_CACHE_BUDGET``
bytes for the LRU limit), then no persistence at all.  Parallel
arrangement workers inherit ``REPRO_CACHE_DIR`` through the
environment, so a warm parent store also warms its children.

    >>> from repro.store import store_scope
    >>> with store_scope("/tmp/repro-cache"):
    ...     engine.evaluate(query)   # hits disk on the second process
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro.store import codec
from repro.store.codec import (
    CodecError,
    SCHEMA_VERSION,
    arrangement_key,
    lineage_key,
    query_result_key,
    statistics_key,
)
from repro.store.disk import DiskStore
from repro.store.lineage import LineageRecord

__all__ = [
    "CodecError",
    "DiskStore",
    "LineageRecord",
    "SCHEMA_VERSION",
    "active_store",
    "arrangement_key",
    "codec",
    "configure_store",
    "lineage_key",
    "query_result_key",
    "resolve_store",
    "statistics_key",
    "store_at",
    "store_scope",
]

#: Environment variable naming the cache directory (inherited by
#: parallel workers and subprocesses).
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Environment variable giving the LRU size budget in bytes.
ENV_CACHE_BUDGET = "REPRO_CACHE_BUDGET"

# Explicit override (set by the CLI); None means "no override — fall
# through to the environment".  Context-local so concurrent engines
# (server worker threads) can each pin their own store without racing
# on a shared global; ``asyncio.to_thread`` copies the context, so a
# scope entered on the event loop is visible inside request threads.
_configured: ContextVar["DiskStore | None"] = ContextVar(
    "repro_store_configured", default=None
)

# One DiskStore per (resolved path, budget) so counters and eviction
# state are shared by every engine in the process.
_instances: dict[tuple[str, int | None], DiskStore] = {}


def _env_budget() -> int | None:
    raw = os.environ.get(ENV_CACHE_BUDGET, "").strip()
    if not raw:
        return None
    try:
        budget = int(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_CACHE_BUDGET} must be an integer byte count, got {raw!r}"
        ) from None
    return budget if budget > 0 else None


def store_at(path: "str | os.PathLike[str]",
             size_budget: int | None = None) -> DiskStore:
    """The shared :class:`DiskStore` for a directory (one per process)."""
    resolved = os.path.abspath(os.path.expanduser(os.fspath(path)))
    key = (resolved, size_budget)
    store = _instances.get(key)
    if store is None:
        store = DiskStore(resolved, size_budget=size_budget)
        _instances[key] = store
    return store


def resolve_store(
    target: "DiskStore | str | os.PathLike[str] | None",
    size_budget: int | None = None,
) -> DiskStore | None:
    """Normalise a ``cache_dir``-style argument to a store (or None).

    ``size_budget`` pins the LRU byte budget explicitly (the
    :class:`~repro.config.EngineConfig` path); ``None`` keeps the
    legacy behaviour of consulting ``REPRO_CACHE_BUDGET``.
    """
    if target is None:
        return None
    if isinstance(target, DiskStore):
        return target
    budget = size_budget if size_budget is not None else _env_budget()
    return store_at(target, size_budget=budget)


def active_store() -> DiskStore | None:
    """The store the engine should use right now.

    Resolution order: :func:`configure_store` override, then the
    ``REPRO_CACHE_DIR`` environment variable, then ``None`` (no
    persistence).
    """
    configured = _configured.get()
    if configured is not None:
        return configured
    path = os.environ.get(ENV_CACHE_DIR, "").strip()
    if not path:
        return None
    return store_at(path, size_budget=_env_budget())


def configure_store(
    target: "DiskStore | str | os.PathLike[str] | None",
) -> DiskStore | None:
    """Set the store override for this context; returns the previous one.

    Passing ``None`` clears the override, so ``REPRO_CACHE_DIR``
    resolution applies again.
    """
    previous = _configured.get()
    _configured.set(resolve_store(target))
    return previous


@contextmanager
def store_scope(
    target: "DiskStore | str | os.PathLike[str] | None",
) -> Iterator[DiskStore | None]:
    """Temporarily pin the store for the current context (the CLI's
    entry point).

    ``None`` is a no-op scope: the environment fallback stays live, so
    wrapping every CLI dispatch in ``store_scope(args.cache_dir)`` is
    safe whether or not ``--cache-dir`` was given.  The pin is
    context-local: engines scoping their own pinned stores on worker
    threads never clobber each other (or the main thread).
    """
    token = _configured.set(resolve_store(target))
    try:
        yield active_store()
    finally:
        _configured.reset(token)
