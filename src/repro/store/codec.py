"""Versioned, deterministic serialisation of the engine's artifacts.

Everything the persistence layer writes goes through this module, and
everything it reads comes back through it.  The format is canonical
JSON (sorted keys, no whitespace, ASCII) wrapped in an *envelope*::

    {"schema": 1, "kind": "arrangement", "checksum": "…", "payload": …}

* **deterministic** — two structurally equal objects always produce the
  same bytes, regardless of interpreter, ``PYTHONHASHSEED`` or process
  history (``tests/test_store_determinism.py`` guards this with
  subprocesses);
* **exact** — rationals are stored as ``[numerator, denominator]``
  integer pairs, so arbitrarily large :class:`~fractions.Fraction`
  coefficients round-trip bit-identically (JSON integers are unbounded
  in Python);
* **verified** — the envelope carries a SHA-256 checksum over the
  schema version, the kind tag and the canonical payload; any
  truncation, bit flip or version bump is detected at read time and
  surfaces as :class:`CodecError`, never as a wrong answer;
* **versioned** — :data:`SCHEMA_VERSION` is part of both the checksum
  and the on-disk directory layout (see :mod:`repro.store.disk`), so a
  codec change can never misinterpret old entries.

Supported kinds: ``"arrangement"`` (:class:`~repro.arrangement.builder.
Arrangement` — hyperplanes, faces with exact witness points, the
defining relation), ``"relation"`` (:class:`~repro.constraints.
relation.ConstraintRelation` — schema plus the full formula AST) and
``"statistics"`` (:class:`~repro.optimizer.statistics.Statistics` —
the optimizer's persisted per-plan-node measurements, all numbers
exact rationals).  Formulas are encoded structurally (tagged nodes),
not as source text, so the round-trip does not depend on parser
conventions.
"""

from __future__ import annotations

import hashlib
import json
from fractions import Fraction
from typing import Any, Sequence

from repro.errors import ReproError
from repro.arrangement.builder import Arrangement
from repro.arrangement.faces import Face
from repro.geometry.hyperplane import Hyperplane
from repro.constraints.atoms import Atom, Op
from repro.constraints.formula import (
    And,
    AtomFormula,
    Exists,
    FALSE,
    FalseFormula,
    Forall,
    Formula,
    Not,
    Or,
    TRUE,
    TrueFormula,
)
from repro.constraints.relation import ConstraintRelation
from repro.constraints.terms import LinearTerm
from repro.optimizer.statistics import (
    STATS_VERSION,
    NodeStats,
    Statistics,
)
from repro.store.lineage import LineageRecord

#: Bump on any change to the payload structure below.  Entries written
#: under a different version are rejected (and quarantined by the disk
#: store) instead of being decoded with the wrong reader.  Adding the
#: ``lineage`` kind did not bump it: existing kinds' payloads are
#: untouched, and unknown-kind entries were already rejected by name.
SCHEMA_VERSION = 1

#: The artifact kinds the codec understands.
KINDS = ("arrangement", "relation", "statistics", "lineage")


class CodecError(ReproError):
    """A stored entry is malformed, corrupted or version-incompatible."""


# ---------------------------------------------------------------------------
# Scalars
# ---------------------------------------------------------------------------
def _enc_fraction(value: Fraction) -> list[int]:
    return [value.numerator, value.denominator]


def _dec_fraction(value: Any) -> Fraction:
    if (
        not isinstance(value, list)
        or len(value) != 2
        or not all(isinstance(part, int) for part in value)
        or isinstance(value[0], bool)
        or isinstance(value[1], bool)
        or value[1] <= 0
    ):
        raise CodecError(f"malformed rational {value!r}")
    return Fraction(value[0], value[1])


def _enc_vector(vector: Sequence[Fraction]) -> list[list[int]]:
    return [_enc_fraction(part) for part in vector]


def _dec_vector(value: Any) -> tuple[Fraction, ...]:
    if not isinstance(value, list):
        raise CodecError(f"malformed vector {value!r}")
    return tuple(_dec_fraction(part) for part in value)


def _string(value: Any) -> str:
    if not isinstance(value, str):
        raise CodecError(f"expected a string, got {value!r}")
    return value


# ---------------------------------------------------------------------------
# Geometry
# ---------------------------------------------------------------------------
def _enc_hyperplane(plane: Hyperplane) -> dict:
    return {"n": _enc_vector(plane.normal), "o": _enc_fraction(plane.offset)}


def _dec_hyperplane(value: Any) -> Hyperplane:
    if not isinstance(value, dict):
        raise CodecError(f"malformed hyperplane {value!r}")
    normal = _dec_vector(value.get("n"))
    if not normal or all(part == 0 for part in normal):
        raise CodecError("hyperplane needs a non-zero normal")
    # Stored planes are canonical already; the raw constructor keeps the
    # bytes bit-identical on re-encode.
    return Hyperplane(normal, _dec_fraction(value.get("o")))


def _enc_face(face: Face) -> dict:
    return {
        "i": face.index,
        "s": list(face.signs),
        "d": face.dimension,
        "p": _enc_vector(face.sample),
        "in": face.in_relation,
    }


def _dec_face(value: Any) -> Face:
    if not isinstance(value, dict):
        raise CodecError(f"malformed face {value!r}")
    signs = value.get("s")
    if not isinstance(signs, list) or any(
        sign not in (-1, 0, 1) for sign in signs
    ):
        raise CodecError(f"malformed sign vector {signs!r}")
    index = value.get("i")
    dimension = value.get("d")
    if not isinstance(index, int) or not isinstance(dimension, int):
        raise CodecError("face index/dimension must be integers")
    in_relation = value.get("in")
    if not isinstance(in_relation, bool):
        raise CodecError("face in-relation bit must be a boolean")
    return Face(
        index,
        tuple(int(sign) for sign in signs),
        dimension,
        _dec_vector(value.get("p")),
        in_relation,
    )


# ---------------------------------------------------------------------------
# Terms, atoms and formulas (structural, parser-independent)
# ---------------------------------------------------------------------------
def _enc_term(term: LinearTerm) -> dict:
    return {
        "c": [
            [name, _enc_fraction(coeff)]
            for name, coeff in term.coefficients
        ],
        "k": _enc_fraction(term.constant),
    }


def _dec_term(value: Any) -> LinearTerm:
    if not isinstance(value, dict) or not isinstance(value.get("c"), list):
        raise CodecError(f"malformed linear term {value!r}")
    pairs = []
    for entry in value["c"]:
        if not isinstance(entry, list) or len(entry) != 2:
            raise CodecError(f"malformed coefficient {entry!r}")
        pairs.append((_string(entry[0]), _dec_fraction(entry[1])))
    # Coefficients are stored in the term's canonical (sorted, non-zero)
    # order; the raw constructor preserves it exactly.
    return LinearTerm(tuple(pairs), _dec_fraction(value.get("k")))


_OPS = {op.value: op for op in Op}


def _enc_atom(atom: Atom) -> dict:
    return {"t": _enc_term(atom.term), "op": atom.op.value}


def _dec_atom(value: Any) -> Atom:
    if not isinstance(value, dict):
        raise CodecError(f"malformed atom {value!r}")
    op = _OPS.get(value.get("op"))
    if op is None:
        raise CodecError(f"unknown operator {value.get('op')!r}")
    return Atom(_dec_term(value.get("t")), op)


def _enc_formula(formula: Formula) -> dict:
    if isinstance(formula, TrueFormula):
        return {"f": "true"}
    if isinstance(formula, FalseFormula):
        return {"f": "false"}
    if isinstance(formula, AtomFormula):
        return {"f": "atom", "a": _enc_atom(formula.atom)}
    if isinstance(formula, And):
        return {"f": "and", "ops": [_enc_formula(f) for f in formula.operands]}
    if isinstance(formula, Or):
        return {"f": "or", "ops": [_enc_formula(f) for f in formula.operands]}
    if isinstance(formula, Not):
        return {"f": "not", "op": _enc_formula(formula.operand)}
    if isinstance(formula, Exists):
        return {"f": "exists", "v": formula.variable,
                "b": _enc_formula(formula.body)}
    if isinstance(formula, Forall):
        return {"f": "forall", "v": formula.variable,
                "b": _enc_formula(formula.body)}
    raise CodecError(
        f"cannot encode formula node {type(formula).__name__}"
    )


def _dec_formula(value: Any) -> Formula:
    if not isinstance(value, dict):
        raise CodecError(f"malformed formula node {value!r}")
    tag = value.get("f")
    if tag == "true":
        return TRUE
    if tag == "false":
        return FALSE
    if tag == "atom":
        return AtomFormula(_dec_atom(value.get("a")))
    if tag in ("and", "or"):
        operands = value.get("ops")
        if not isinstance(operands, list):
            raise CodecError(f"malformed connective {value!r}")
        parts = tuple(_dec_formula(part) for part in operands)
        return And(parts) if tag == "and" else Or(parts)
    if tag == "not":
        return Not(_dec_formula(value.get("op")))
    if tag in ("exists", "forall"):
        variable = _string(value.get("v"))
        body = _dec_formula(value.get("b"))
        return Exists(variable, body) if tag == "exists" \
            else Forall(variable, body)
    raise CodecError(f"unknown formula tag {tag!r}")


# ---------------------------------------------------------------------------
# Relations and arrangements
# ---------------------------------------------------------------------------
def _enc_relation(relation: ConstraintRelation) -> dict:
    return {
        "vars": list(relation.variables),
        "formula": _enc_formula(relation.formula),
    }


def _dec_relation(value: Any) -> ConstraintRelation:
    if not isinstance(value, dict):
        raise CodecError(f"malformed relation {value!r}")
    variables = value.get("vars")
    if not isinstance(variables, list):
        raise CodecError(f"malformed schema {variables!r}")
    schema = tuple(_string(name) for name in variables)
    formula = _dec_formula(value.get("formula"))
    if len(set(schema)) != len(schema):
        raise CodecError(f"duplicate variables in schema {schema}")
    stray = formula.free_variables() - set(schema)
    if stray:
        raise CodecError(
            f"formula mentions variables outside the schema: {sorted(stray)}"
        )
    # The raw constructor keeps the stored AST bit-identical (``make``
    # would be a no-op here but re-validates quantifier-freeness, which
    # stored relations satisfy by construction).
    return ConstraintRelation(schema, formula)


def _enc_arrangement(arrangement: Arrangement) -> dict:
    return {
        "dim": arrangement.dimension,
        "planes": [_enc_hyperplane(p) for p in arrangement.hyperplanes],
        "faces": [_enc_face(f) for f in arrangement.faces],
        "relation": (
            _enc_relation(arrangement.relation)
            if arrangement.relation is not None
            else None
        ),
    }


def _dec_arrangement(value: Any) -> Arrangement:
    if not isinstance(value, dict):
        raise CodecError(f"malformed arrangement {value!r}")
    dimension = value.get("dim")
    if not isinstance(dimension, int) or dimension < 0:
        raise CodecError(f"malformed ambient dimension {dimension!r}")
    planes_raw = value.get("planes")
    faces_raw = value.get("faces")
    if not isinstance(planes_raw, list) or not isinstance(faces_raw, list):
        raise CodecError("arrangement needs plane and face lists")
    planes = tuple(_dec_hyperplane(p) for p in planes_raw)
    faces = tuple(_dec_face(f) for f in faces_raw)
    for face in faces:
        if len(face.signs) != len(planes) or len(face.sample) != dimension:
            raise CodecError(f"face {face.index} is inconsistent")
    relation_raw = value.get("relation")
    relation = (
        _dec_relation(relation_raw) if relation_raw is not None else None
    )
    return Arrangement(dimension, planes, faces, relation)


# ---------------------------------------------------------------------------
# Optimizer statistics
# ---------------------------------------------------------------------------
def _enc_node_stats(stats: NodeStats) -> dict:
    return {
        "calls": _enc_fraction(stats.calls),
        "wall": _enc_fraction(stats.wall),
        "size": _enc_fraction(stats.size),
        "obs": _enc_fraction(stats.observations),
        "counters": {
            name: _enc_fraction(value)
            for name, value in sorted(stats.counters.items())
        },
    }


def _dec_nonneg(value: Any, what: str) -> Fraction:
    decoded = _dec_fraction(value)
    if decoded < 0:
        raise CodecError(f"negative {what} {decoded!r}")
    return decoded


def _dec_node_stats(value: Any) -> NodeStats:
    if not isinstance(value, dict):
        raise CodecError(f"malformed node statistics {value!r}")
    counters_raw = value.get("counters")
    if not isinstance(counters_raw, dict):
        raise CodecError(f"malformed counters {counters_raw!r}")
    counters = {}
    for name, raw in counters_raw.items():
        counters[_string(name)] = _dec_nonneg(raw, f"counter {name!r}")
    return NodeStats(
        calls=_dec_nonneg(value.get("calls"), "call count"),
        wall=_dec_nonneg(value.get("wall"), "wall time"),
        size=_dec_nonneg(value.get("size"), "size total"),
        observations=_dec_nonneg(value.get("obs"), "observation count"),
        counters=counters,
    )


def _enc_statistics(stats: Statistics) -> dict:
    return {
        "version": stats.version,
        "runs": _enc_fraction(stats.runs),
        "nodes": {
            fingerprint: _enc_node_stats(node)
            for fingerprint, node in sorted(stats.nodes.items())
        },
    }


def _dec_statistics(value: Any) -> Statistics:
    if not isinstance(value, dict):
        raise CodecError(f"malformed statistics {value!r}")
    version = value.get("version")
    if not isinstance(version, int) or isinstance(version, bool):
        raise CodecError(f"malformed statistics version {version!r}")
    if version != STATS_VERSION:
        raise CodecError(
            f"statistics version {version} != supported {STATS_VERSION}"
        )
    nodes_raw = value.get("nodes")
    if not isinstance(nodes_raw, dict):
        raise CodecError(f"malformed statistics nodes {nodes_raw!r}")
    nodes = {}
    for fingerprint, raw in nodes_raw.items():
        if not _string(fingerprint):
            raise CodecError("empty node fingerprint")
        nodes[fingerprint] = _dec_node_stats(raw)
    return Statistics(
        nodes=nodes,
        runs=_dec_nonneg(value.get("runs"), "run count"),
        version=version,
    )


def _enc_lineage(record: LineageRecord) -> dict:
    payload: dict = {
        "parent": _string(record.parent),
        "child": _string(record.child),
        "seq": int(record.seq),
        "ops": [
            {
                "action": _string(action),
                "relation": _string(name),
                "formula": _enc_formula(formula),
            }
            for action, name, formula in record.ops
        ],
        "snapshot": None,
    }
    if record.snapshot is not None:
        payload["snapshot"] = [
            [_string(name), _enc_relation(relation)]
            for name, relation in record.snapshot
        ]
    return payload


def _dec_lineage(value: Any) -> LineageRecord:
    seq = value["seq"]
    if not isinstance(seq, int) or seq < 0:
        raise CodecError(f"lineage seq must be a non-negative int: {seq!r}")
    ops = tuple(
        (
            _string(op["action"]),
            _string(op["relation"]),
            _dec_formula(op["formula"]),
        )
        for op in value["ops"]
    )
    snapshot = value.get("snapshot")
    decoded_snapshot = None
    if snapshot is not None:
        decoded_snapshot = tuple(
            (_string(name), _dec_relation(relation))
            for name, relation in snapshot
        )
    return LineageRecord(
        parent=_string(value["parent"]),
        child=_string(value["child"]),
        seq=seq,
        ops=ops,
        snapshot=decoded_snapshot,
    )


_ENCODERS = {
    "arrangement": (_enc_arrangement, Arrangement),
    "relation": (_enc_relation, ConstraintRelation),
    "statistics": (_enc_statistics, Statistics),
    "lineage": (_enc_lineage, LineageRecord),
}
_DECODERS = {
    "arrangement": _dec_arrangement,
    "relation": _dec_relation,
    "statistics": _dec_statistics,
    "lineage": _dec_lineage,
}


def encode(kind: str, obj: object) -> dict:
    """The JSON-ready payload of one artifact."""
    try:
        encoder, expected = _ENCODERS[kind]
    except KeyError:
        raise CodecError(f"unknown artifact kind {kind!r}") from None
    if not isinstance(obj, expected):
        raise CodecError(
            f"kind {kind!r} expects {expected.__name__}, "
            f"got {type(obj).__name__}"
        )
    return encoder(obj)


def decode(kind: str, payload: Any) -> object:
    """The artifact back from its payload; raises :class:`CodecError`."""
    try:
        decoder = _DECODERS[kind]
    except KeyError:
        raise CodecError(f"unknown artifact kind {kind!r}") from None
    try:
        return decoder(payload)
    except CodecError:
        raise
    except (TypeError, ValueError, KeyError, AttributeError) as error:
        raise CodecError(f"malformed {kind} payload: {error}") from error


# ---------------------------------------------------------------------------
# Envelope: canonical bytes + checksum
# ---------------------------------------------------------------------------
def canonical_json(value: Any) -> bytes:
    """Canonical JSON bytes: sorted keys, no whitespace, ASCII only."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def checksum(schema: int, kind: str, payload: Any) -> str:
    """The envelope checksum: SHA-256 over version, kind and payload."""
    digest = hashlib.sha256()
    digest.update(f"{schema}:{kind}:".encode("ascii"))
    digest.update(canonical_json(payload))
    return digest.hexdigest()


def dumps(kind: str, obj: object) -> bytes:
    """Serialise one artifact to its canonical envelope bytes."""
    payload = encode(kind, obj)
    envelope = {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "checksum": checksum(SCHEMA_VERSION, kind, payload),
        "payload": payload,
    }
    return canonical_json(envelope)


def loads(kind: str, data: bytes) -> object:
    """Deserialise envelope bytes, verifying version, kind and checksum."""
    try:
        envelope = json.loads(data.decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CodecError(f"unreadable envelope: {error}") from error
    if not isinstance(envelope, dict):
        raise CodecError("envelope must be a JSON object")
    schema = envelope.get("schema")
    if schema != SCHEMA_VERSION:
        raise CodecError(
            f"schema version {schema!r} != supported {SCHEMA_VERSION}"
        )
    stored_kind = envelope.get("kind")
    if stored_kind != kind:
        raise CodecError(f"expected kind {kind!r}, found {stored_kind!r}")
    payload = envelope.get("payload")
    expected = checksum(SCHEMA_VERSION, kind, payload)
    if envelope.get("checksum") != expected:
        raise CodecError("payload checksum mismatch")
    return decode(kind, payload)


# ---------------------------------------------------------------------------
# Content-addressed keys
# ---------------------------------------------------------------------------
def digest_key(*parts: str) -> str:
    """A stable SHA-256 key over string parts (schema-version-stamped)."""
    digest = hashlib.sha256()
    digest.update(f"v{SCHEMA_VERSION}".encode("ascii"))
    for part in parts:
        digest.update(b"\x00")
        digest.update(part.encode("utf-8"))
    return digest.hexdigest()


def arrangement_key(
    hyperplanes: Sequence[Hyperplane],
    dimension: int,
    relation: ConstraintRelation | None = None,
) -> str:
    """The disk key of A(S): planes, ambient dimension, relation print.

    Hyperplanes are canonical (primitive integers, positive leading
    coefficient) and arrive in the builder's sorted order, so the key is
    a pure function of the arrangement's mathematical content.
    """
    parts = ["arrangement", str(dimension)]
    parts.extend(
        ",".join(str(c) for c in plane.normal) + "|" + str(plane.offset)
        for plane in hyperplanes
    )
    parts.append(relation.fingerprint() if relation is not None else "-")
    return digest_key(*parts)


def query_result_key(
    database_fingerprint: str,
    decomposition: str,
    spatial_name: str,
    query: object,
) -> str:
    """The disk key of one query's answer relation."""
    return digest_key(
        "relation",
        database_fingerprint,
        decomposition,
        spatial_name,
        str(query),
    )


def statistics_key(scope: str = "global") -> str:
    """The disk key of the optimizer's persisted statistics.

    Plan-node fingerprints are structural (database-independent), so
    one ``"global"`` entry serves every database in the store and
    measurements transfer between workloads.
    """
    return digest_key("statistics", scope)


def lineage_key(child_fingerprint: str) -> str:
    """The disk key of a version's lineage record.

    Keyed by the *child* database fingerprint: every version answers
    "where did I come from" with one lookup, and replay walks parent
    fingerprints back to the nearest snapshot.
    """
    return digest_key("lineage", child_fingerprint)
