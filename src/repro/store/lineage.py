"""The persisted lineage record: how one database version came to be.

A :class:`LineageRecord` is the disk-store artifact behind incremental
writes (:mod:`repro.incremental.lineage`): content-addressed by the
*child* database fingerprint, it names the parent fingerprint and the
delta ops that produced the child — or, for a **snapshot** record, the
child's full relation set (``parent == ""``, ``seq == 0``).  Walking
``parent`` links back to the nearest snapshot and replaying the ops
forward reconstructs any version exactly (same formula structure, same
fingerprint); compaction simply writes a fresh snapshot record so the
walk stays short.

The record lives here (not in :mod:`repro.incremental`) so the codec
can encode it without importing the maintenance machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.database import ConstraintDatabase
from repro.constraints.formula import Formula
from repro.constraints.relation import ConstraintRelation


@dataclass(frozen=True)
class LineageRecord:
    """One edge (or root) of a database's version history."""

    #: Fingerprint of the parent version; ``""`` for a snapshot record.
    parent: str
    #: Fingerprint of the version this record produces.
    child: str
    #: Deltas applied since the last snapshot (0 = this IS a snapshot).
    seq: int
    #: The delta ops, as ``(action, relation, formula)`` triples.
    ops: tuple[tuple[str, str, Formula], ...]
    #: Full relation set of ``child``; only on snapshot records.
    snapshot: "tuple[tuple[str, ConstraintRelation], ...] | None" = None

    @property
    def is_snapshot(self) -> bool:
        return self.snapshot is not None

    def snapshot_database(self) -> ConstraintDatabase:
        """The database a snapshot record stores."""
        if self.snapshot is None:
            raise ValueError("not a snapshot record")
        return ConstraintDatabase(tuple(self.snapshot))
