"""Delta maintenance of cached arrangements.

Writing to a relation changes its hyperplane set by a handful of
planes; rebuilding A(S) from scratch re-pays the whole O(n^d)
construction.  :class:`MaintainedArrangements` keeps an
:class:`~repro.arrangement.incremental.IncrementalArrangement` per
relation lineage and applies the plane *difference* — inserting new
planes (O(|F|) LP calls each, Edelsbrunner's incremental bound) and
retracting removed ones (face re-merge, no LPs on the happy path) —
then reorders the sign columns to the canonical plane order, so the
frozen result is combinatorially identical to a batch rebuild (same
hyperplanes, sign vectors, dimensions and in/out classification;
witness points are path-dependent, see the module docstring of
:mod:`repro.arrangement.incremental`).
"""

from __future__ import annotations

from repro.arrangement.builder import Arrangement
from repro.arrangement.hyperplanes import hyperplanes_of_relation
from repro.arrangement.incremental import IncrementalArrangement
from repro.constraints.relation import ConstraintRelation
from repro.obs.metrics import get_registry

_MAINTAINED = get_registry().counter("incremental.arrangements_maintained")
_PLANES_INSERTED = get_registry().counter("incremental.planes_inserted")
_PLANES_RETRACTED = get_registry().counter("incremental.planes_retracted")


class MaintainedArrangements:
    """Per-lineage incremental arrangements, updated by plane diffs."""

    def __init__(self) -> None:
        #: Live incremental state, keyed by the fingerprint of the
        #: relation version it currently represents.
        self._state: dict[str, IncrementalArrangement] = {}

    def adopt(
        self, relation: ConstraintRelation, arrangement: Arrangement
    ) -> None:
        """Seed maintenance from an already-built arrangement."""
        self._state[relation.fingerprint()] = (
            IncrementalArrangement.from_arrangement(arrangement)
        )

    def has(self, relation: ConstraintRelation) -> bool:
        return relation.fingerprint() in self._state

    def update(
        self,
        old_relation: ConstraintRelation,
        new_relation: ConstraintRelation,
        build_old,
    ) -> Arrangement:
        """The new relation's arrangement, by delta from the old one.

        ``build_old`` supplies the old arrangement on a cold start (a
        cache/store lookup or batch build); once maintenance is warm the
        incremental state carries over from version to version and only
        the plane difference is paid.
        """
        incremental = self._state.pop(old_relation.fingerprint(), None)
        if incremental is None:
            incremental = IncrementalArrangement.from_arrangement(
                build_old()
            )
        old_planes = set(incremental.hyperplanes)
        new_planes = hyperplanes_of_relation(new_relation)
        wanted = set(new_planes)
        for plane in [p for p in incremental.hyperplanes if p not in wanted]:
            incremental.retract(plane)
            _PLANES_RETRACTED.inc()
        for plane in new_planes:
            if plane not in old_planes:
                incremental.insert(plane)
                _PLANES_INSERTED.inc()
        incremental.reorder(new_planes)
        self._state[new_relation.fingerprint()] = incremental
        _MAINTAINED.inc()
        return incremental.to_arrangement(new_relation)
