"""Versioned lineage: persisted delta chains with snapshot compaction.

Every applied write records a :class:`~repro.store.lineage.
LineageRecord` in the :class:`~repro.store.disk.DiskStore`, keyed by
the resulting (child) database fingerprint: parent fingerprint plus the
delta ops.  The chain is always rooted — recording a delta for a
version with no record first writes a **snapshot** record for the
parent — and after :attr:`LineageLog.compact_every` chained deltas the
child is compacted back to a full snapshot, so :meth:`replay` never
walks more than ``compact_every`` records.

Replay reconstructs a version's exact formula structure (deltas are
disjunct-granular and structural, see :mod:`repro.incremental.delta`),
so the replayed database's fingerprint *is* the record key; replay
verifies that and raises on any mismatch — a corrupted or hand-edited
chain surfaces as :class:`~repro.errors.DeltaError`, never as a wrong
database.
"""

from __future__ import annotations

from repro.errors import DeltaError
from repro.constraints.database import ConstraintDatabase
from repro.obs.journal import JOURNAL
from repro.obs.metrics import get_registry
from repro.store import lineage_key
from repro.store.disk import DiskStore
from repro.store.lineage import LineageRecord

from repro.incremental.delta import Delta, DeltaOp, apply_delta

_RECORDS = get_registry().counter("incremental.lineage_records")
_COMPACTIONS = get_registry().counter("incremental.lineage_compactions")

#: Default chain length before compacting back to a snapshot.
DEFAULT_COMPACT_EVERY = 8


def _fingerprint(database: ConstraintDatabase) -> str:
    from repro.engine import database_fingerprint

    return database_fingerprint(database)


class LineageLog:
    """Reads and writes one store's lineage records."""

    def __init__(
        self,
        store: DiskStore,
        compact_every: int = DEFAULT_COMPACT_EVERY,
    ) -> None:
        if compact_every < 1:
            raise ValueError("compact_every must be positive")
        self.store = store
        self.compact_every = compact_every

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _save(self, record: LineageRecord) -> None:
        self.store.save("lineage", lineage_key(record.child), record)
        _RECORDS.inc()
        if JOURNAL.enabled:
            JOURNAL.emit(
                "lineage.record",
                child=record.child[:12],
                parent=record.parent[:12],
                seq=record.seq,
                snapshot=record.is_snapshot,
            )

    def _snapshot(self, database: ConstraintDatabase) -> LineageRecord:
        return LineageRecord(
            parent="",
            child=_fingerprint(database),
            seq=0,
            ops=(),
            snapshot=tuple(database.relations),
        )

    def record(
        self,
        parent: ConstraintDatabase,
        child: ConstraintDatabase,
        delta: Delta,
    ) -> LineageRecord:
        """Persist the edge ``parent → child``; returns the record.

        Roots the chain (snapshotting an unrecorded parent) and
        compacts the child to a snapshot once the chain since the last
        snapshot reaches :attr:`compact_every`.
        """
        child_print = _fingerprint(child)
        existing = self.load(child_print)
        if existing is not None:
            # Records are content-addressed by the child fingerprint: an
            # existing record already reconstructs this exact database.
            # Keeping it preserves root snapshots across write/undo
            # round trips and keeps the chain acyclic — recording a
            # delta edge back to an ancestor would otherwise make
            # replay loop.
            return existing
        parent_print = _fingerprint(parent)
        parent_record = self.load(parent_print)
        if parent_record is None:
            self._save(self._snapshot(parent))
            parent_seq = 0
        else:
            parent_seq = parent_record.seq
        seq = parent_seq + 1
        if seq >= self.compact_every:
            record = self._snapshot(child)
            _COMPACTIONS.inc()
        else:
            record = LineageRecord(
                parent=parent_print,
                child=child_print,
                seq=seq,
                ops=tuple(
                    (op.action, op.relation, op.formula)
                    for op in delta.ops
                ),
            )
        self._save(record)
        return record

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self, fingerprint: str) -> "LineageRecord | None":
        loaded = self.store.load("lineage", lineage_key(fingerprint))
        return loaded if isinstance(loaded, LineageRecord) else None

    def replay(self, fingerprint: str) -> ConstraintDatabase:
        """Reconstruct a version from its chain; verified by fingerprint."""
        chain: list[LineageRecord] = []
        seen: set[str] = set()
        cursor = fingerprint
        while True:
            if cursor in seen:
                raise DeltaError(
                    f"lineage chain cycles at {cursor[:12]}… "
                    "(chain corrupted?)"
                )
            seen.add(cursor)
            record = self.load(cursor)
            if record is None:
                raise DeltaError(
                    f"no lineage record for fingerprint {cursor[:12]}…"
                )
            chain.append(record)
            if record.is_snapshot:
                break
            cursor = record.parent
        database = chain[-1].snapshot_database()
        for record in reversed(chain[:-1]):
            delta = Delta(tuple(
                DeltaOp(action, relation, formula)
                for action, relation, formula in record.ops
            ))
            database = apply_delta(database, delta)
            if _fingerprint(database) != record.child:
                raise DeltaError(
                    "lineage replay diverged at "
                    f"{record.child[:12]}… (chain corrupted?)"
                )
        if _fingerprint(database) != fingerprint:
            raise DeltaError(
                f"lineage replay of {fingerprint[:12]}… produced "
                f"{_fingerprint(database)[:12]}…"
            )
        return database
