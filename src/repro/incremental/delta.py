"""Database deltas at disjunct granularity.

A :class:`Delta` is a sequence of :class:`DeltaOp` values, each
inserting or retracting whole *disjuncts* of one relation's defining
formula.  Working at the top-level-``Or`` structural level (rather than
re-normalising through set algebra) buys the metamorphic property the
IVM test harness is built on: an insert followed by a retract of the
same disjuncts restores the **exact** original formula object
structure, hence the original relation fingerprint, hence the original
content-addressed store keys — nothing downstream can tell the write
pair ever happened.

Unchanged relations keep their identical objects, and a changed
relation's carried-over disjuncts keep *their* identical sub-formula
objects, so the maintenance tier's identity-keyed decision memos
(:class:`repro.ir.kernels.KernelCache`) survive across database
versions for everything the delta did not touch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeltaError
from repro.constraints.database import ConstraintDatabase
from repro.constraints.formula import FALSE, FalseFormula, Formula, Or
from repro.constraints.relation import ConstraintRelation

#: The two delta actions.
ACTIONS = ("insert", "retract")


@dataclass(frozen=True)
class DeltaOp:
    """One write: add or remove disjuncts of one named relation."""

    action: str
    relation: str
    formula: Formula

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise DeltaError(
                f"unknown delta action {self.action!r}; "
                f"expected one of {ACTIONS}"
            )


@dataclass(frozen=True)
class Delta:
    """An ordered batch of write operations, applied atomically."""

    ops: tuple[DeltaOp, ...]

    def __len__(self) -> int:
        return len(self.ops)

    def relations(self) -> tuple[str, ...]:
        """The distinct relation names this delta touches, in order."""
        seen: list[str] = []
        for op in self.ops:
            if op.relation not in seen:
                seen.append(op.relation)
        return tuple(seen)


def delta_op(
    action: str, relation: str, formula: "Formula | str"
) -> DeltaOp:
    """Build one op, parsing the formula when given as source text."""
    if isinstance(formula, str):
        from repro.constraints.parser import parse_formula

        formula = parse_formula(formula)
    return DeltaOp(action, relation, formula)


def make_delta(*ops: "DeltaOp | tuple[str, str, Formula | str]") -> Delta:
    """A :class:`Delta` from ops or ``(action, relation, formula)`` triples."""
    return Delta(tuple(
        op if isinstance(op, DeltaOp) else delta_op(*op) for op in ops
    ))


def disjunct_list(formula: Formula) -> tuple[Formula, ...]:
    """The top-level disjunct structure of a defining formula.

    ``Or`` yields its operands, the false formula yields nothing, and
    any other formula is a single disjunct.  This is purely structural —
    no DNF conversion — so rebuilding from the list round-trips exactly.
    """
    if isinstance(formula, Or):
        return tuple(formula.operands)
    if isinstance(formula, FalseFormula):
        return ()
    return (formula,)


def formula_from_disjuncts(disjuncts: tuple[Formula, ...]) -> Formula:
    """Inverse of :func:`disjunct_list` (exact for its outputs)."""
    if not disjuncts:
        return FALSE
    if len(disjuncts) == 1:
        return disjuncts[0]
    return Or(tuple(disjuncts))


def _apply_op(
    relation: ConstraintRelation, op: DeltaOp
) -> ConstraintRelation:
    incoming = disjunct_list(op.formula)
    extra = set()
    for piece in incoming:
        extra |= piece.free_variables()
    unknown = extra - set(relation.variables)
    if unknown:
        raise DeltaError(
            f"delta formula for {op.relation!r} uses variables "
            f"{sorted(unknown)} outside the schema {relation.variables}"
        )
    current = list(disjunct_list(relation.formula))
    if op.action == "insert":
        current.extend(incoming)
    else:
        for piece in incoming:
            try:
                current.remove(piece)
            except ValueError:
                raise DeltaError(
                    f"cannot retract from {op.relation!r}: no disjunct "
                    f"structurally equal to {piece}"
                ) from None
    return ConstraintRelation.make(
        relation.variables, formula_from_disjuncts(tuple(current))
    )


def apply_delta(
    database: ConstraintDatabase, delta: Delta
) -> ConstraintDatabase:
    """The database after all of the delta's ops, in order.

    Untouched relations are carried over as the *same objects*; touched
    relations are rebuilt from their existing disjunct objects plus or
    minus the delta's.  Invalid ops raise :class:`DeltaError` before
    anything is built, so application is all-or-nothing.
    """
    relations = dict(database.relations)
    for op in delta.ops:
        current = relations.get(op.relation)
        if current is None:
            raise DeltaError(
                f"unknown relation {op.relation!r}; "
                f"have {sorted(relations)}"
            )
        relations[op.relation] = _apply_op(current, op)
    return ConstraintDatabase.make(relations)


def invert(delta: Delta) -> Delta:
    """The delta that undoes this one (retract↔insert, reverse order).

    ``apply_delta(apply_delta(db, d), invert(d))`` restores ``db``'s
    disjunct multiset per relation; it restores the **exact** formula
    structure (hence the fingerprint, hence the content-addressed
    store keys) whenever every retraction in ``d`` removes a disjunct
    appended by an earlier op — in particular for insert-only deltas,
    the metamorphic identity the fuzz harness leans on.  Retracting a
    *pre-existing* disjunct loses its position: the inverse insert
    re-appends it at the end, a logically equivalent relation with a
    possibly different fingerprint.
    """
    flipped = {"insert": "retract", "retract": "insert"}
    return Delta(tuple(
        DeltaOp(flipped[op.action], op.relation, op.formula)
        for op in reversed(delta.ops)
    ))
