"""Counting/DRed view maintenance on the finite region sort.

The region sort of the two-sorted structure is *finite* (Theorem 3.1
bounds the arrangement), so fixpoints that ground out there — region
reachability, connected components, any linear recursion over the
adjacency graph — are ordinary finite-model datalog views, and the
classical incremental maintenance algorithms apply exactly:

* **counting** (insertions): every derived region carries the number of
  its current derivations, ``count(v) = [v ∈ base] + #{u → v : u
  derived}``.  A new base fact or edge increments counts and propagates
  only where a count rises from zero, so insertion work is proportional
  to the newly derived set.
* **DRed** (deletions): counting alone is unsound under recursion —
  regions in a support cycle keep positive counts with no derivation
  from base — so deletions over-delete the whole cone reachable from
  the lost support and then re-derive the survivors semi-naively from
  the intact remainder (Gupta–Mumick–Subrahmanian).

Both maintain the *set* of derived region indices, so "byte-identical
to a cold rebuild" is literal set equality; the differential tests
check every op against :meth:`CountingFixpoint.recompute`.
"""

from __future__ import annotations

from repro.errors import DeltaError
from repro.obs.metrics import get_registry

_INSERT_PROPAGATIONS = get_registry().counter(
    "incremental.ground_insert_propagations"
)
_DRED_OVERDELETES = get_registry().counter(
    "incremental.ground_dred_overdeletes"
)
_DRED_REDERIVED = get_registry().counter(
    "incremental.ground_dred_rederived"
)


class CountingFixpoint:
    """lfp of ``X ↦ base ∪ {v : u → v, u ∈ X}`` over finite nodes."""

    def __init__(self, base=(), edges=()) -> None:
        self._base: set[int] = set(base)
        self._succ: dict[int, set[int]] = {}
        self._pred: dict[int, set[int]] = {}
        for u, v in edges:
            self._succ.setdefault(u, set()).add(v)
            self._pred.setdefault(v, set()).add(u)
        self._derived: set[int] = set()
        self._count: dict[int, int] = {}
        self._initialise()

    # ------------------------------------------------------------------
    # Construction / oracle
    # ------------------------------------------------------------------
    def _initialise(self) -> None:
        self._derived = set()
        self._count = {}
        frontier = set(self._base)
        for v in frontier:
            self._count[v] = 1
        while frontier:
            self._derived |= frontier
            next_frontier: set[int] = set()
            for u in frontier:
                for v in self._succ.get(u, ()):
                    self._count[v] = self._count.get(v, 0) + 1
                    if v not in self._derived:
                        next_frontier.add(v)
            frontier = next_frontier - self._derived

    def recompute(self) -> frozenset[int]:
        """The from-scratch fixpoint (the honest oracle for tests)."""
        derived: set[int] = set()
        frontier = set(self._base)
        while frontier:
            derived |= frontier
            frontier = {
                v
                for u in frontier
                for v in self._succ.get(u, ())
            } - derived
        return frozenset(derived)

    @property
    def derived(self) -> frozenset[int]:
        return frozenset(self._derived)

    def count(self, node: int) -> int:
        """The node's current derivation count (0 when underivable)."""
        return self._count.get(node, 0)

    # ------------------------------------------------------------------
    # Counting insertions
    # ------------------------------------------------------------------
    def _propagate_from(self, seeds: set[int]) -> None:
        frontier = {v for v in seeds if v not in self._derived}
        while frontier:
            _INSERT_PROPAGATIONS.inc(len(frontier))
            self._derived |= frontier
            next_frontier: set[int] = set()
            for u in frontier:
                for v in self._succ.get(u, ()):
                    self._count[v] = self._count.get(v, 0) + 1
                    if v not in self._derived:
                        next_frontier.add(v)
            frontier = next_frontier - self._derived

    def insert_base(self, node: int) -> None:
        if node in self._base:
            raise DeltaError(f"base already contains {node}")
        self._base.add(node)
        self._count[node] = self._count.get(node, 0) + 1
        self._propagate_from({node})

    def insert_edge(self, source: int, target: int) -> None:
        if target in self._succ.get(source, ()):
            raise DeltaError(f"edge {source}→{target} already present")
        self._succ.setdefault(source, set()).add(target)
        self._pred.setdefault(target, set()).add(source)
        if source in self._derived:
            self._count[target] = self._count.get(target, 0) + 1
            self._propagate_from({target})

    # ------------------------------------------------------------------
    # DRed deletions
    # ------------------------------------------------------------------
    def _dred(self, seeds: set[int]) -> None:
        """Over-delete the support cone of ``seeds``, then re-derive."""
        overdeleted: set[int] = set()
        stack = [v for v in seeds if v in self._derived]
        while stack:
            v = stack.pop()
            if v in overdeleted:
                continue
            overdeleted.add(v)
            stack.extend(
                w for w in self._succ.get(v, ()) if w in self._derived
            )
        if not overdeleted:
            return
        _DRED_OVERDELETES.inc(len(overdeleted))
        self._derived -= overdeleted
        # Re-derivation: alternative support from the intact remainder.
        frontier = {
            v
            for v in overdeleted
            if v in self._base
            or any(u in self._derived for u in self._pred.get(v, ()))
        }
        rederived = 0
        while frontier:
            rederived += len(frontier)
            self._derived |= frontier
            next_frontier: set[int] = set()
            for u in frontier:
                for v in self._succ.get(u, ()):
                    if v in overdeleted and v not in self._derived:
                        next_frontier.add(v)
            frontier = next_frontier - self._derived
        _DRED_REDERIVED.inc(rederived)
        # Counts are local, so refresh them for the touched cone only.
        for v in overdeleted:
            self._count[v] = (1 if v in self._base else 0) + sum(
                1 for u in self._pred.get(v, ()) if u in self._derived
            )
        for v in overdeleted:
            if v not in self._derived:
                for w in self._succ.get(v, ()):
                    if w not in overdeleted:
                        self._count[w] = (
                            1 if w in self._base else 0
                        ) + sum(
                            1
                            for u in self._pred.get(w, ())
                            if u in self._derived
                        )

    def retract_base(self, node: int) -> None:
        if node not in self._base:
            raise DeltaError(f"base does not contain {node}")
        self._base.discard(node)
        self._count[node] = self._count.get(node, 1) - 1
        self._dred({node})

    def retract_edge(self, source: int, target: int) -> None:
        if target not in self._succ.get(source, ()):
            raise DeltaError(f"edge {source}→{target} not present")
        self._succ[source].discard(target)
        self._pred[target].discard(source)
        if source in self._derived:
            self._count[target] = self._count.get(target, 1) - 1
            self._dred({target})


def reachable_regions(extension, start_index: int) -> frozenset[int]:
    """Region indices reachable from one region through adjacency.

    A convenience bridge from a built
    :class:`~repro.twosorted.structure.RegionExtension` to the ground
    tier: base = the start region, edges = the symmetric adjacency
    pairs.  Used by the differential tests to pin the maintained ground
    fixpoint against the extension the engine actually queries.
    """
    count = extension.region_count()
    edges = [
        (i, j)
        for i in range(count)
        for j in range(count)
        if i != j and extension.adjacent(i, j)
    ]
    return CountingFixpoint([start_index], edges).derived
