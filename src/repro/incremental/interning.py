"""Structural interning of formulas, relations and compiled plans.

The IR kernels (:class:`repro.ir.kernels.KernelCache`) memoise pure
decision procedures — feasibility, disjunct reduction, subsumption —
under *identity* keys: tuples of ``id(atom)``.  Within one evaluation
that is exact and cheap.  Across database versions it would be useless:
plan compilation rebuilds every hoisted constant through
``rename_to``, which allocates fresh (structurally equal) atom objects,
so every memo would miss.

An :class:`Interner` fixes that by mapping each structurally-equal atom
and formula to one canonical representative object.  Maintenance
re-compiles plans for every database version, then interns them through
the *same* interner, so unchanged constants present the identical atom
objects run after run and the kernel memos keep hitting.  Interning
replaces objects with structurally equal objects only — renderings,
fingerprints and every computed relation are unchanged — so the
byte-identity argument of the compiled executor (PR 7) carries over
verbatim to maintained re-evaluation.
"""

from __future__ import annotations

from repro.constraints.formula import (
    And,
    AtomFormula,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
)
from repro.constraints.relation import ConstraintRelation
from repro.ir import nodes as ir


class Interner:
    """Canonical representatives for atoms, formulas and relations."""

    def __init__(self) -> None:
        self._atoms: dict = {}
        self._formulas: dict = {}
        self._relations: dict = {}

    def __len__(self) -> int:
        return len(self._atoms) + len(self._formulas)

    def atom(self, atom):
        """The canonical object for a structurally-equal atom."""
        return self._atoms.setdefault(atom, atom)

    def formula(self, formula: Formula) -> Formula:
        """The canonical formula, rebuilt over canonical atoms."""
        cached = self._formulas.get(formula)
        if cached is not None:
            return cached
        if isinstance(formula, AtomFormula):
            interned: Formula = AtomFormula(self.atom(formula.atom))
        elif isinstance(formula, And):
            interned = And(tuple(
                self.formula(operand) for operand in formula.operands
            ))
        elif isinstance(formula, Or):
            interned = Or(tuple(
                self.formula(operand) for operand in formula.operands
            ))
        elif isinstance(formula, Not):
            interned = Not(self.formula(formula.operand))
        elif isinstance(formula, Exists):
            interned = Exists(
                formula.variable, self.formula(formula.body)
            )
        elif isinstance(formula, Forall):
            interned = Forall(
                formula.variable, self.formula(formula.body)
            )
        else:
            interned = formula
        self._formulas[formula] = interned
        # The canonical object resolves to itself on the next lookup.
        self._formulas.setdefault(interned, interned)
        return interned

    def relation(self, relation: ConstraintRelation) -> ConstraintRelation:
        """A relation over the canonical formula (schema untouched)."""
        key = (relation.variables, relation.formula)
        cached = self._relations.get(key)
        if cached is not None:
            return cached
        interned = ConstraintRelation.make(
            relation.variables, self.formula(relation.formula)
        )
        self._relations[key] = interned
        return interned

    def plan(self, node: ir.IRNode) -> ir.IRNode:
        """Intern every hoisted constant of a compiled plan, in place.

        Plans arrive freshly compiled (never shared), so rewriting the
        ``Const`` payloads in place is safe and keeps the node objects —
        which profilers key on — stable.
        """
        for sub in ir.walk(node):
            if isinstance(sub, ir.Const):
                sub.relation = self.relation(sub.relation)
        return node
