"""Incremental view maintenance under writes.

The paper's queries are defined over a static database; this package
makes the stack serve *writes* without giving up the static story's
guarantees.  A write is a :class:`~repro.incremental.delta.Delta` —
disjunct-granular inserts/retracts against named relations — and every
maintained artifact is **byte-identical to a cold rebuild**:

* arrangements are maintained plane-by-plane
  (:class:`~repro.incremental.arrangements.MaintainedArrangements`,
  over :class:`~repro.arrangement.incremental.IncrementalArrangement`
  insertion *and* retraction) — combinatorially identical to a batch
  build;
* materialised datalog answers re-run the compiled semi-naive delta
  plans with persistent, interned kernels
  (:class:`~repro.incremental.fixpoint.MaintainedProgram`) — identical
  control flow, memoised decisions, byte-identical answers;
* ground fixpoints on the finite region sort use classical
  counting/DRed maintenance
  (:class:`~repro.incremental.ground.CountingFixpoint`);
* every version's provenance is persisted and replayable
  (:class:`~repro.incremental.lineage.LineageLog`, with snapshot
  compaction).

The interpreted full-rebuild path remains the honest oracle; the
differential fuzz suite (`tests/test_ivm_differential.py`) and the E16
benchmark hold maintenance to it byte-for-byte.

Entry points: :meth:`repro.engine.QueryEngine.apply_delta` for
embedded use, ``POST /v1/update`` on the server.
"""

from repro.incremental.arrangements import MaintainedArrangements
from repro.incremental.delta import (
    Delta,
    DeltaOp,
    apply_delta,
    delta_op,
    disjunct_list,
    formula_from_disjuncts,
    invert,
    make_delta,
)
from repro.incremental.fixpoint import MaintainedProgram
from repro.incremental.ground import CountingFixpoint, reachable_regions
from repro.incremental.interning import Interner
from repro.incremental.lineage import (
    DEFAULT_COMPACT_EVERY,
    LineageLog,
)

__all__ = [
    "CountingFixpoint",
    "DEFAULT_COMPACT_EVERY",
    "Delta",
    "DeltaOp",
    "Interner",
    "LineageLog",
    "MaintainedArrangements",
    "MaintainedProgram",
    "apply_delta",
    "delta_op",
    "disjunct_list",
    "formula_from_disjuncts",
    "invert",
    "make_delta",
    "reachable_regions",
]
