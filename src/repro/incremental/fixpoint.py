"""Maintained datalog fixpoint answers.

A :class:`MaintainedProgram` keeps one program's materialised
:class:`~repro.datalog.engine.EvaluationOutcome` up to date across
database versions.  The maintenance plan IS the compiled executor's
semi-naive delta plan (the :class:`~repro.ir.nodes.Guard`-wrapped
stage-≥2 firings of :mod:`repro.datalog.compile`): on every write the
program re-runs through those plans with

* one **persistent** :class:`~repro.ir.kernels.KernelCache`, so every
  feasibility/reduction/subsumption decision already taken for an
  earlier version is a dictionary hit, and
* one cross-version :class:`~repro.incremental.interning.Interner`, so
  recompiled constants present identical atom objects and those
  identity-keyed memos actually fire.

Because the control flow is byte-for-byte the cold compiled run — only
pure, memoised decisions are skipped — the maintained answer is
**byte-identical to a cold rebuild by construction**, under either
executor (PR 7 pinned compiled ≡ interpreted).  The differential fuzz
suite (`tests/test_ivm_differential.py`) enforces this against the
interpreted full-rebuild oracle; deltas only make maintenance *faster*
(decision work proportional to what changed), never different.

For fixpoints that ground out on the finite region sort, the classical
counting/DRed tier in :mod:`repro.incremental.ground` applies instead.
"""

from __future__ import annotations

from repro.constraints.database import ConstraintDatabase
from repro.datalog.compile import evaluate_program_compiled
from repro.datalog.engine import EvaluationOutcome, Program
from repro.ir.kernels import KernelCache
from repro.obs.metrics import get_registry

from repro.incremental.interning import Interner

_REFRESHES = get_registry().counter("incremental.fixpoint_refreshes")


class MaintainedProgram:
    """One program's materialised answers, maintained under writes."""

    def __init__(
        self,
        program: "Program | str",
        database: ConstraintDatabase,
        max_stages: int = 25,
    ) -> None:
        if isinstance(program, str):
            from repro.datalog.parser import parse_program

            program = parse_program(program)
        self.program = program
        self.max_stages = max_stages
        #: Cross-version decision memos: the whole point of maintenance.
        self.kernels = KernelCache()
        self._interner = Interner()
        self.database = database
        self.outcome = self._evaluate(database)

    def _intern_stratum(self, compiled):
        for plans in (
            compiled.stage_one, compiled.stage_next, compiled.accumulate
        ):
            for predicate in plans:
                plans[predicate] = self._interner.plan(plans[predicate])
        return compiled

    def _evaluate(self, database: ConstraintDatabase) -> EvaluationOutcome:
        _REFRESHES.inc()
        return evaluate_program_compiled(
            self.program,
            database,
            max_stages=self.max_stages,
            kernels=self.kernels,
            stratum_hook=self._intern_stratum,
        )

    def apply(self, database: ConstraintDatabase) -> EvaluationOutcome:
        """Maintain the materialised answers for a new database version.

        Returns the outcome for ``database``; ``self.outcome`` is
        updated in place.  The answer is byte-identical to evaluating
        the program cold on ``database`` (either executor).
        """
        self.database = database
        self.outcome = self._evaluate(database)
        return self.outcome

    def __getitem__(self, predicate: str):
        return self.outcome[predicate]
