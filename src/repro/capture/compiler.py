"""The inductive definition behind φ_M (Theorem 6.4).

The capture proof builds a RegLFP sentence φ_M = START ∧ COMPUTE ∧ END
whose fixed point simulates a polynomial-time machine M on the encoded
database.  Time stamps and tape positions range over k-tuples of
0-indexed regions — n regions give n^k addresses, enough for a run of
length n^k under the small coordinate property.

This module executes that construction semantically: the simultaneous
induction over the stage relations

    Tape_a(t̄, c̄)   — cell c̄ holds symbol a at time t̄
    State_q(t̄)     — M is in state q at time t̄
    Head(t̄, c̄)    — the head is at c̄ at time t̄

is run as a least fixed point over tuples of region indices, with the
successor on tuples (definable from the region order, as the paper
notes) provided as the base-n increment.  START seeds time 0̄ from the
encoding word; COMPUTE applies the transition function; END checks that
an accepting state is reached.  Agreement of this inductive run with the
direct simulation, machine by machine and database by database, is the
executable content of the theorem (experiment E7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CaptureError
from repro.constraints.database import ConstraintDatabase
from repro.capture.encoding import encode_database
from repro.capture.machine import BLANK, TuringMachine
from repro.twosorted.structure import RegionExtension

Tuple = tuple[int, ...]


def tuple_of_index(value: int, base: int, arity: int) -> Tuple:
    """The value as a big-endian base-``base`` k-tuple of region indices."""
    if base < 1:
        raise CaptureError("need at least one region")
    digits = [0] * arity
    for position in range(arity - 1, -1, -1):
        digits[position] = value % base
        value //= base
    if value:
        raise CaptureError(f"value does not fit into {arity} digits")
    return tuple(digits)


def index_of_tuple(digits: Tuple, base: int) -> int:
    """Inverse of :func:`tuple_of_index`."""
    value = 0
    for digit in digits:
        if not 0 <= digit < base:
            raise CaptureError("digit out of range")
        value = value * base + digit
    return value


def successor(digits: Tuple, base: int) -> Tuple | None:
    """The next tuple in lexicographic order, or None at the maximum.

    This is the relation the paper defines from the region order; the
    induction steps time with it.
    """
    rolled = list(digits)
    for position in range(len(rolled) - 1, -1, -1):
        if rolled[position] + 1 < base:
            rolled[position] += 1
            return tuple(rolled)
        rolled[position] = 0
    return None


@dataclass(frozen=True)
class CaptureResult:
    """Outcome of one capture experiment."""

    word: str
    region_count: int
    arity: int
    time_bound: int
    direct_accepts: bool
    inductive_accepts: bool
    inductive_steps: int

    @property
    def agree(self) -> bool:
        """The theorem's check: both simulations give the same answer."""
        return self.direct_accepts == self.inductive_accepts


def _choose_arity(word_length: int, region_count: int) -> int:
    """The smallest k with n^k ≥ word length + 2 (space for the run)."""
    if region_count < 2:
        raise CaptureError(
            "the capture construction needs at least two regions"
        )
    arity = 1
    capacity = region_count
    while capacity < word_length + 2:
        arity += 1
        capacity *= region_count
    return arity


def capture_run(
    machine: TuringMachine,
    database: ConstraintDatabase,
    decomposition: str = "arrangement",
    arity: int | None = None,
    time_bound: int | None = None,
) -> CaptureResult:
    """Run M directly on the encoding and via the inductive definition.

    ``arity`` is the k of the construction (tuples of k regions address
    time and space); by default the smallest k whose address space holds
    the input.  ``time_bound`` defaults to the full address space n^k —
    the polynomial bound of the theorem.
    """
    extension = RegionExtension.build(database, decomposition)
    word = encode_database(extension)
    n = len(extension.decomposition)
    k = arity if arity is not None else _choose_arity(len(word), n)
    capacity = n**k
    bound = time_bound if time_bound is not None else capacity - 1
    if bound >= capacity:
        raise CaptureError("time bound exceeds the tuple address space")

    direct = machine.accepts(word, bound)
    inductive, steps = _inductive_simulation(
        machine, word, n, k, bound
    )
    return CaptureResult(
        word=word,
        region_count=n,
        arity=k,
        time_bound=bound,
        direct_accepts=direct,
        inductive_accepts=inductive,
        inductive_steps=steps,
    )


def _inductive_simulation(
    machine: TuringMachine,
    word: str,
    base: int,
    arity: int,
    bound: int,
) -> tuple[bool, int]:
    """The START ∧ COMPUTE ∧ END induction over region tuples.

    Stage relations are materialised per time stamp; each COMPUTE step
    derives the time-t+1 facts from the time-t facts exactly as the LFP
    formula would (the update is positive: facts are only added).  The
    induction stops at acceptance/rejection or at the address-space
    bound.
    """
    # START: seed time 0̄.
    tape: dict[Tuple, str] = {}
    for position, symbol in enumerate(word):
        tape[tuple_of_index(position, base, arity)] = symbol
    state = machine.start_state
    head = tuple_of_index(0, base, arity)

    time = tuple_of_index(0, base, arity)
    steps = 0
    while True:
        # END: check the halting predicate at the current stage.
        if state == machine.accept_state:
            return True, steps
        if state == machine.reject_state:
            return False, steps
        symbol = tape.get(head, BLANK)
        action = machine.transitions.get((state, symbol))
        if action is None:
            return state == machine.accept_state, steps
        next_time = successor(time, base)
        if next_time is None or steps >= bound:
            raise CaptureError(
                "inductive simulation exhausted the tuple address space; "
                "increase the arity k"
            )
        # COMPUTE: one application of the transition function, expressed
        # over the tuple-addressed stage relations.
        state, written, move = action
        tape[head] = written
        head_index = index_of_tuple(head, base)
        head_index = max(0, head_index + move)
        if head_index >= base**arity:
            raise CaptureError("head ran off the address space")
        head = tuple_of_index(head_index, base, arity)
        time = next_time
        steps += 1
