"""A deterministic single-tape Turing machine.

The capture proof (Theorem 6.4) encodes runs of polynomial-time Turing
machines in RegLFP.  This module provides the machine model those
encodings simulate: one tape, a finite alphabet containing the blank
``□``, a deterministic transition function, explicit accepting and
rejecting states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.errors import CaptureError

BLANK = "□"

Move = int  # -1, 0, +1


@dataclass(frozen=True)
class Step:
    """One configuration of a run."""

    time: int
    state: str
    head: int
    tape: tuple[str, ...]

    def symbol_under_head(self) -> str:
        if 0 <= self.head < len(self.tape):
            return self.tape[self.head]
        return BLANK


@dataclass(frozen=True)
class TuringMachine:
    """A deterministic single-tape machine.

    ``transitions`` maps (state, symbol) to (state', symbol', move) with
    move in {-1, 0, +1}.  Missing entries halt the machine in place; a
    run accepts iff it halts in ``accept_state``.
    """

    states: frozenset[str]
    alphabet: frozenset[str]
    transitions: Mapping[tuple[str, str], tuple[str, str, Move]]
    start_state: str
    accept_state: str
    reject_state: str

    @staticmethod
    def make(
        transitions: Mapping[tuple[str, str], tuple[str, str, Move]],
        start_state: str,
        accept_state: str = "accept",
        reject_state: str = "reject",
    ) -> "TuringMachine":
        """Infer states and alphabet from the transition table."""
        states = {start_state, accept_state, reject_state}
        alphabet = {BLANK}
        for (state, symbol), (next_state, written, move) in transitions.items():
            if move not in (-1, 0, 1):
                raise CaptureError(f"invalid head move {move}")
            states.update((state, next_state))
            alphabet.update((symbol, written))
        return TuringMachine(
            frozenset(states),
            frozenset(alphabet),
            dict(transitions),
            start_state,
            accept_state,
            reject_state,
        )

    # ------------------------------------------------------------------
    def run(
        self, tape_input: str, max_steps: int
    ) -> tuple[bool, int]:
        """Run to halting; returns (accepted, steps).

        Raises :class:`CaptureError` when the machine does not halt
        within ``max_steps`` — the capture construction requires an a
        priori polynomial bound, so exceeding it is a caller error.
        """
        final = None
        steps = 0
        for step in self.trace(tape_input, max_steps):
            final = step
            steps = step.time
        assert final is not None
        if final.state not in (self.accept_state, self.reject_state) and \
                (final.state, final.symbol_under_head()) in self.transitions:
            raise CaptureError(
                f"machine did not halt within {max_steps} steps"
            )
        return final.state == self.accept_state, steps

    def accepts(self, tape_input: str, max_steps: int) -> bool:
        """Convenience wrapper around :meth:`run`."""
        accepted, __ = self.run(tape_input, max_steps)
        return accepted

    def trace(
        self, tape_input: str, max_steps: int
    ) -> Iterator[Step]:
        """Yield every configuration of the run, starting at time 0.

        The tape is kept as a finite window that grows on demand; the
        head never moves left of cell 0 (moves off the left edge stay in
        place, the standard convention).
        """
        for symbol in tape_input:
            if symbol not in self.alphabet:
                raise CaptureError(
                    f"input symbol {symbol!r} outside the tape alphabet"
                )
        tape = list(tape_input) if tape_input else [BLANK]
        state = self.start_state
        head = 0
        yield Step(0, state, head, tuple(tape))
        for time in range(1, max_steps + 1):
            if state in (self.accept_state, self.reject_state):
                return
            symbol = tape[head] if head < len(tape) else BLANK
            action = self.transitions.get((state, symbol))
            if action is None:
                return
            state, written, move = action
            while head >= len(tape):
                tape.append(BLANK)
            tape[head] = written
            head = max(0, head + move)
            while head >= len(tape):
                tape.append(BLANK)
            yield Step(time, state, head, tuple(tape))


# ----------------------------------------------------------------------
# A small library of machines used by tests and experiments
# ----------------------------------------------------------------------

#: The alphabet of database encoding words (see repro.capture.encoding).
WORD_ALPHABET = ("0", "1", "#", "|", "/", "-", BLANK)

#: Word symbols that the library machines skip over as separators.
_SEPARATORS = ("#", "|", "/", "-")


def machine_first_symbol_is(symbol: str) -> TuringMachine:
    """Accepts iff the first tape cell holds ``symbol``."""
    transitions = {}
    for other in WORD_ALPHABET:
        target = "accept" if other == symbol else "reject"
        transitions[("start", other)] = (target, other, 0)
    return TuringMachine.make(transitions, "start")


def machine_parity_of_ones() -> TuringMachine:
    """Accepts iff the number of ``1`` symbols before the first blank is
    even.  Separator symbols are skipped."""
    transitions = {
        ("even", "1"): ("odd", "1", 1),
        ("odd", "1"): ("even", "1", 1),
        ("even", "0"): ("even", "0", 1),
        ("odd", "0"): ("odd", "0", 1),
        ("even", BLANK): ("accept", BLANK, 0),
        ("odd", BLANK): ("reject", BLANK, 0),
    }
    for separator in _SEPARATORS:
        transitions[("even", separator)] = ("even", separator, 1)
        transitions[("odd", separator)] = ("odd", separator, 1)
    return TuringMachine.make(transitions, "even")


def machine_contains_one() -> TuringMachine:
    """Accepts iff some ``1`` occurs before the first blank."""
    transitions = {
        ("scan", "0"): ("scan", "0", 1),
        ("scan", "1"): ("accept", "1", 0),
        ("scan", BLANK): ("reject", BLANK, 0),
    }
    for separator in _SEPARATORS:
        transitions[("scan", separator)] = ("scan", separator, 1)
    return TuringMachine.make(transitions, "scan")


def machine_first_vertex_in_s() -> TuringMachine:
    """Decides a *semantic* database property from the encoding word.

    The encoding's first section is ``coords|…|coords|c`` for the
    lexicographically smallest 0-dimensional region, ``c`` its
    membership bit, terminated by ``#`` (or the word end).  The machine
    scans to that terminator, steps left, and accepts iff the symbol
    there is ``1`` — i.e. iff the first vertex of the database belongs
    to S.  Databases without 0-dimensional regions (empty first
    section) are rejected.
    """
    transitions = {
        ("scan", "0"): ("scan", "0", 1),
        ("scan", "1"): ("scan", "1", 1),
        ("scan", "|"): ("scan", "|", 1),
        ("scan", "/"): ("scan", "/", 1),
        ("scan", "-"): ("scan", "-", 1),
        ("scan", "#"): ("back", "#", -1),
        ("scan", BLANK): ("back", BLANK, -1),
        ("back", "1"): ("accept", "1", 0),
        ("back", "0"): ("reject", "0", 0),
        ("back", "#"): ("reject", "#", 0),
        ("back", "|"): ("reject", "|", 0),
        ("back", BLANK): ("reject", BLANK, 0),
    }
    return TuringMachine.make(transitions, "scan")
