"""Theorem 6.4 made executable.

The capture proof is constructive: order the regions, encode the
database as a binary word over that order, and run the Immerman–Vardi
construction — a RegLFP sentence START ∧ COMPUTE ∧ END whose fixed point
simulates a polynomial-time Turing machine on the encoding.

* :mod:`repro.capture.machine` — a deterministic single-tape Turing
  machine simulator.
* :mod:`repro.capture.encoding` — the proof's word encoding of a
  database from its ordered region extension (bounded regions first,
  binary vertex coordinates, membership bits per dimension, then the
  unbounded sections).
* :mod:`repro.capture.compiler` — the inductive definition behind φ_M:
  stage relations over k-tuples of regions (time stamps and tape
  positions) computed by least-fixed-point iteration; agreement with the
  direct simulation is the executable content of the theorem.
"""

from repro.capture.compiler import CaptureResult, capture_run
from repro.capture.encoding import encode_database
from repro.capture.machine import Step, TuringMachine
from repro.capture.pspace import (
    PSpaceResult,
    binary_counter_machine,
    pspace_capture_run,
)

__all__ = [
    "CaptureResult",
    "capture_run",
    "encode_database",
    "Step",
    "TuringMachine",
    "PSpaceResult",
    "binary_counter_machine",
    "pspace_capture_run",
]
