"""The word encoding of a database (proof of Theorem 6.4).

The capture proof encodes a database as a word the Turing machine reads,
definable from the ordered region extension:

* **bounded section** — for every 0-dimensional region, in lexicographic
  order, the binary coordinates of its point followed by its membership
  bit c_i; then, per dimension 1..d, the membership bits d_j^i of the
  bounded i-dimensional regions in their canonical order;
* **unbounded section** — the membership bits of the unbounded regions,
  per dimension.

Two documented deviations from the paper's sketch (see DESIGN.md §5):
rational coordinates are written as ``numerator/denominator`` in binary
with an explicit sign (the paper assumes integer coordinates bounded via
the small coordinate property; rBIT's bit access is exercised separately
by the rBIT tests), and the unbounded 1-dimensional anchor points (p, q)
are omitted — the experiments' machines treat the encoding as an opaque
word, so the format only needs to be a deterministic function of the
ordered region extension.

Alphabet: ``0 1 - / | #`` and the blank.
"""

from __future__ import annotations

from fractions import Fraction

from repro.twosorted.structure import RegionExtension


def encode_rational(value: Fraction) -> str:
    """``numerator/denominator`` in binary, with sign on the numerator."""
    sign = "-" if value < 0 else ""
    return (
        f"{sign}{bin(abs(value.numerator))[2:]}/"
        f"{bin(value.denominator)[2:]}"
    )


def encode_database(extension: RegionExtension) -> str:
    """The encoding word of a database's region extension."""
    decomposition = extension.decomposition
    d = decomposition.ambient_dimension

    pieces: list[str] = []

    # Bounded 0-dimensional regions: coordinates + membership bit.
    zero_dim = [
        region
        for region in decomposition.zero_dimensional()
        if region.is_bounded()
    ]
    vertex_parts = []
    for region in zero_dim:
        coords = "|".join(
            encode_rational(c) for c in region.sample_point()
        )
        member = "1" if extension.region_subset_of_spatial(
            region.index
        ) else "0"
        vertex_parts.append(f"{coords}|{member}")
    pieces.append("#".join(vertex_parts))

    # Bounded higher-dimensional regions: membership bits per dimension.
    for dim in range(1, d + 1):
        bits = "".join(
            "1" if extension.region_subset_of_spatial(region.index) else "0"
            for region in decomposition.regions
            if region.dimension == dim and region.is_bounded()
        )
        pieces.append(bits)

    # Unbounded regions: membership bits per dimension.
    for dim in range(0, d + 1):
        bits = "".join(
            "1" if extension.region_subset_of_spatial(region.index) else "0"
            for region in decomposition.regions
            if region.dimension == dim and not region.is_bounded()
        )
        pieces.append(bits)

    return "##".join(pieces)
