"""The RegPFP / PSPACE side of Theorem 6.4.

RegLFP's capture of PTIME addresses *time* with k-tuples of regions —
a run longer than n^k cannot be time-stamped.  RegPFP escapes that
limit: a partial fixed point iterates a *configuration* relation (tape
contents, state, head position — all poly-size in the region count)
without time stamps; the PFP stage sequence is the run itself and may
be exponentially long while every stage stays polynomial — which is
exactly how RegPFP reaches PSPACE.

:func:`pspace_capture_run` executes that induction: configurations are
iterated until the machine halts or a configuration repeats (the PFP
cycle case — corresponding to a non-halting space-bounded run, whose
PFP denotes ∅ / rejection).  The space bound is n^k cells; the step
budget is |configurations| which can be astronomically larger than the
PTIME construction's n^k stage bound.  The demonstration machine
:func:`binary_counter_machine` runs 2^m steps in m cells, separating
the two regimes observably (experiment E7's PSPACE arm).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CaptureError
from repro.constraints.database import ConstraintDatabase
from repro.capture.encoding import encode_database
from repro.capture.machine import BLANK, TuringMachine
from repro.twosorted.structure import RegionExtension


@dataclass(frozen=True)
class PSpaceResult:
    """Outcome of a space-bounded PFP simulation."""

    word: str
    region_count: int
    arity: int
    space_cells: int
    direct_accepts: bool
    pfp_accepts: bool
    pfp_stages: int
    direct_steps: int

    @property
    def agree(self) -> bool:
        return self.direct_accepts == self.pfp_accepts

    @property
    def run_exceeded_ptime_addressing(self) -> bool:
        """Did the run take more steps than the PTIME construction could
        time-stamp with the same tuple arity?"""
        return self.pfp_stages > self.space_cells


def pspace_capture_run(
    machine: TuringMachine,
    database: ConstraintDatabase,
    decomposition: str = "arrangement",
    arity: int | None = None,
    max_stages: int | None = None,
) -> PSpaceResult:
    """Run M via the PFP configuration induction and directly; compare.

    ``arity`` fixes the tuple length addressing tape cells (space
    n^k); ``max_stages`` caps the PFP iteration (default: the number of
    distinct configurations bounded crudely by |alphabet|^cells ×
    states × cells, clipped to 10^6 for practicality — exceeding it
    raises, as the theorem promises termination via repetition).
    """
    extension = RegionExtension.build(database, decomposition)
    word = encode_database(extension)
    n = len(extension.decomposition)
    if n < 2:
        raise CaptureError("need at least two regions")
    k = arity
    if k is None:
        k = 1
        capacity = n
        while capacity < len(word) + 2:
            k += 1
            capacity *= n
    cells = n**k
    if len(word) > cells:
        raise CaptureError("word does not fit in the space bound")

    # Direct run, generously bounded.
    budget = max_stages if max_stages is not None else 10**6
    direct_accepts, direct_steps = machine.run(word, budget)

    # PFP: iterate configurations; detect repetition exactly.
    tape: dict[int, str] = {
        index: symbol for index, symbol in enumerate(word)
    }
    state = machine.start_state
    head = 0
    seen: set[tuple] = set()
    stages = 0
    while True:
        signature = (
            state, head, tuple(sorted(tape.items()))
        )
        if signature in seen:
            # A cycle without halting: the PFP denotes ∅ — reject.
            return PSpaceResult(
                word, n, k, cells, direct_accepts, False, stages,
                direct_steps,
            )
        seen.add(signature)
        if state == machine.accept_state:
            return PSpaceResult(
                word, n, k, cells, direct_accepts, True, stages,
                direct_steps,
            )
        if state == machine.reject_state:
            return PSpaceResult(
                word, n, k, cells, direct_accepts, False, stages,
                direct_steps,
            )
        symbol = tape.get(head, BLANK)
        action = machine.transitions.get((state, symbol))
        if action is None:
            accepted = state == machine.accept_state
            return PSpaceResult(
                word, n, k, cells, direct_accepts, accepted, stages,
                direct_steps,
            )
        state, written, move = action
        tape[head] = written
        head = max(0, head + move)
        if head >= cells:
            raise CaptureError("machine exceeded the space bound")
        stages += 1
        if stages > budget:
            raise CaptureError(
                "PFP simulation exceeded the stage budget"
            )


def binary_counter_machine() -> TuringMachine:
    """Counts through all bit patterns of the leading digit block.

    The machine marks the first cell (``0``→``Z``, ``1``→``W``) so the
    least-significant digit is recognisable, then repeatedly increments
    the binary number formed by the digit prefix (LSB first) until the
    carry runs off the end of the block — 2^m increments in m cells of
    space.  On encoding words the digit block is the first vertex
    coordinate's numerator, so databases with a large first coordinate
    drive exponentially long, constant-space runs: the PSPACE regime
    where PFP stages outgrow any tuple time-stamp budget.
    """
    terminals = ("#", "|", "/", "-", BLANK)
    transitions: dict = {}
    # init: mark the LSB cell and start incrementing in place.
    transitions[("init", "0")] = ("inc", "Z", 0)
    transitions[("init", "1")] = ("inc", "W", 0)
    for terminal in terminals:
        transitions[("init", terminal)] = ("accept", terminal, 0)
    # inc: add one, with the carry walking right over 1s.
    transitions[("inc", "Z")] = ("rewind", "W", 0)   # 0 -> 1, done
    transitions[("inc", "W")] = ("inc", "Z", 1)      # 1 -> 0, carry
    transitions[("inc", "0")] = ("rewind", "1", -1)  # 0 -> 1, done
    transitions[("inc", "1")] = ("inc", "0", 1)      # 1 -> 0, carry
    for terminal in terminals:
        # Carry past the block: the counter wrapped — accept.
        transitions[("inc", terminal)] = ("accept", terminal, 0)
    # rewind: back to the marked LSB, then increment again.
    transitions[("rewind", "0")] = ("rewind", "0", -1)
    transitions[("rewind", "1")] = ("rewind", "1", -1)
    transitions[("rewind", "Z")] = ("inc", "Z", 0)
    transitions[("rewind", "W")] = ("inc", "W", 0)
    return TuringMachine.make(transitions, "init")