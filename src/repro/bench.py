"""Named before/after benchmarks with JSON records (``repro bench``).

Each runner measures a *baseline* path and the *fast* path of one
subsystem on a ladder of sizes, verifies that both paths produce
identical results (face sign vectors for E2, equivalent IDB relations
for E15 — the speedups must be free), and returns a JSON-ready record.
The CLI writes the record to ``BENCH_E2.json`` / ``BENCH_E15.json`` at
the repository root so the performance trajectory is versioned next to
the code; CI re-runs small sizes with ``--check-only`` to guard the
equivalences without timing noise.

* **E2 (arrangement scaling)** — the naive sign-vector DFS (no witness
  reuse, no system dedup) against the fast path of
  :func:`repro.arrangement.builder.build_arrangement`; with ``jobs > 1``
  the fast path also fans subtrees out to worker processes.
* **E15 (spatial datalog)** — naive immediate-consequence iteration
  against semi-naive delta evaluation on the unit-step reachability
  program over growing interval chains.
"""

from __future__ import annotations

import json
import time
from typing import Sequence

from repro.obs.metrics import get_registry


def _timed(function, *args, **kwargs):
    start = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - start


def run_bench_e2(
    sizes: Sequence[int] = (4, 6, 8, 10),
    jobs: int | None = None,
    check_only: bool = False,
) -> dict:
    """Arrangement construction: naive DFS vs witness-reuse fast path.

    ``check_only`` skips nothing but timing *assertions* are left to the
    caller either way; every run verifies that both paths enumerate the
    identical face list.  The feasibility memo is cleared before each
    measurement so timings are hermetic.
    """
    from repro.arrangement.builder import build_arrangement
    from repro.arrangement.parallel import resolve_jobs
    from repro.geometry.hyperplane import Hyperplane
    from repro.geometry.simplex import clear_feasibility_cache

    registry = get_registry()
    effective_jobs = resolve_jobs(jobs)
    results = []
    for n in sizes:
        planes = [
            Hyperplane.make([2 * i, -1], i * i) for i in range(1, n + 1)
        ]
        clear_feasibility_cache()
        baseline, baseline_s = _timed(
            build_arrangement,
            hyperplanes=planes,
            dimension=2,
            witness_reuse=False,
            dedup=False,
            parallel=1,
        )
        clear_feasibility_cache()
        skipped_before = registry.get("arrangement.lp_skipped")
        fast, fast_s = _timed(
            build_arrangement,
            hyperplanes=planes,
            dimension=2,
            parallel=effective_jobs,
        )
        lp_skipped = registry.get("arrangement.lp_skipped") - skipped_before
        match = [f.signs for f in baseline.faces] == [
            f.signs for f in fast.faces
        ]
        results.append(
            {
                "n": n,
                "faces": len(fast),
                "baseline_s": round(baseline_s, 4),
                "fast_s": round(fast_s, 4),
                "speedup": round(baseline_s / fast_s, 2)
                if fast_s > 0
                else None,
                "lp_skipped": lp_skipped,
                "match": match,
            }
        )
    largest = results[-1] if results else None
    return {
        "benchmark": "E2",
        "subject": "arrangement construction (Theorem 3.1 DFS)",
        "baseline": "sign-vector DFS, LP solve per child branch",
        "fast": "witness-reuse pruning + derived witnesses + system dedup"
        + (f" + {effective_jobs} worker processes"
           if effective_jobs > 1 else ""),
        "jobs": effective_jobs,
        "check_only": check_only,
        "sizes": list(sizes),
        "results": results,
        "all_match": all(row["match"] for row in results),
        "largest_speedup": largest["speedup"] if largest else None,
    }


def run_bench_e15(
    sizes: Sequence[int] = (4, 8, 12, 16),
    check_only: bool = False,
) -> dict:
    """Spatial datalog: naive vs semi-naive on unit-step reachability."""
    from repro.datalog import evaluate_program
    from repro.datalog.parser import parse_program
    from repro.workloads.generators import interval_chain

    registry = get_registry()
    program = parse_program(
        "Reach(x) :- S(x), x = 0.\n"
        "Reach(y) :- Reach(x), S(y), y - x <= 1, x - y <= 1.\n"
    )
    results = []
    for k in sizes:
        database = interval_chain(k)
        naive, naive_s = _timed(
            evaluate_program,
            program,
            database,
            max_stages=4 * k + 8,
            strategy="naive",
        )
        delta_before = registry.get("datalog.delta_disjuncts")
        fast, fast_s = _timed(
            evaluate_program,
            program,
            database,
            max_stages=4 * k + 8,
            strategy="seminaive",
        )
        delta_disjuncts = (
            registry.get("datalog.delta_disjuncts") - delta_before
        )
        equivalent = all(
            fast[predicate].equivalent(naive[predicate])
            for predicate in fast.relations
        )
        results.append(
            {
                "k": k,
                "stages": fast.stages,
                "converged": fast.converged and naive.converged,
                "baseline_s": round(naive_s, 4),
                "fast_s": round(fast_s, 4),
                "speedup": round(naive_s / fast_s, 2)
                if fast_s > 0
                else None,
                "delta_disjuncts": delta_disjuncts,
                "match": equivalent and fast.stages == naive.stages,
            }
        )
    largest = results[-1] if results else None
    return {
        "benchmark": "E15",
        "subject": "spatial datalog evaluation (unit-step reachability)",
        "baseline": "naive immediate consequence (full re-derivation)",
        "fast": "semi-naive delta iteration with canonical-form caching",
        "check_only": check_only,
        "sizes": list(sizes),
        "results": results,
        "all_match": all(row["match"] for row in results),
        "largest_speedup": largest["speedup"] if largest else None,
    }


BENCHMARKS = {
    "e2": (run_bench_e2, "BENCH_E2.json"),
    "e15": (run_bench_e15, "BENCH_E15.json"),
}


def write_record(record: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
