"""Named before/after benchmarks with JSON records (``repro bench``).

Each runner measures a *baseline* path and the *fast* path of one
subsystem on a ladder of sizes, verifies that both paths produce
identical results (face sign vectors for E2, equivalent IDB relations
for E15 — the speedups must be free), and returns a JSON-ready record.
The CLI writes the record to ``BENCH_E2.json`` / ``BENCH_E15.json`` at
the repository root so the performance trajectory is versioned next to
the code; CI re-runs small sizes with ``--check-only`` to guard the
equivalences without timing noise.

* **E2 (arrangement scaling)** — the naive sign-vector DFS (no witness
  reuse, no system dedup) against the fast path of
  :func:`repro.arrangement.builder.build_arrangement`; with ``jobs > 1``
  the fast path also fans subtrees out to worker processes.
* **E3 (LP filter microbench)** — exact rational feasibility against the
  certified float filter of :mod:`repro.geometry.fastlp` on batches of
  seeded random strict/non-strict systems; both tiers must agree on
  every status and every returned witness must satisfy its system
  exactly.
* **E15 (spatial datalog)** — the interpreted rule-at-a-time semi-naive
  engine against the compiled relational-algebra executor
  (:mod:`repro.ir`) on the unit-step reachability program over growing
  interval chains; equivalence is byte-identity of every stage relation.

Every record carries a ``metadata`` block with the active LP mode, the
resolved worker count, the disk store in effect (directory plus
``store.*`` counter values) and the run's provenance — the repository's
``git_sha`` (``None`` outside a git checkout), the UTC timestamp and
the Python version — so before/after records are self-describing: a
warm-start E2 run shows ``store.hits > 0`` and the CI store job
compares cold/warm records on exactly that.  ``repro bench
--append-history PATH`` additionally appends a one-line JSON summary of
the run to PATH (see :func:`append_history`), building a queryable
performance history across commits.

Only the *fast* paths consult the disk store (the naive baselines exist
to measure construction), so cold-run baseline timings are unaffected
by ``REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time
from contextlib import contextmanager
from datetime import datetime, timezone
from typing import Sequence

from repro.geometry import fastlp
from repro.obs.metrics import get_registry


def _timed(function, *args, **kwargs):
    start = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - start


def _git_sha() -> str | None:
    """The checkout's HEAD commit, or ``None`` outside a git repository."""
    import subprocess

    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=pathlib.Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    sha = completed.stdout.strip()
    return sha or None


#: Metadata keys every BENCH_*.json record must carry (and, except for
#: ``git_sha``, carry with a non-``None`` value).  ``write_record``
#: refuses records that miss any of them, so a record without its
#: executor/backend provenance can never be committed silently.
REQUIRED_METADATA = (
    "lp_mode",
    "jobs",
    "executor",
    "backend",
    "git_sha",
    "timestamp_utc",
    "python_version",
)


def _metadata(jobs: int) -> dict:
    """The self-description block shared by every BENCH_*.json record.

    Computed after the measurements, so the ``store`` block reflects the
    hits/misses/writes this run performed against the active cache
    directory (``None`` when persistence is off).  ``executor`` and
    ``backend`` are surfaced top-level (not only inside ``config``) so
    a record always says which fixpoint tier produced its numbers.
    """
    from repro.config import EngineConfig
    from repro.store import active_store

    store = active_store()
    config = EngineConfig.resolve(jobs=jobs)
    return {
        "lp_mode": fastlp.get_lp_mode(),
        "jobs": jobs,
        "executor": config.executor,
        "backend": config.backend,
        "optimizer": config.optimizer,
        "config": config.describe(),
        "cache_dir": str(store.root) if store is not None else None,
        "store": store.stats() if store is not None else None,
        "git_sha": _git_sha(),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python_version": platform.python_version(),
    }


def run_bench_e2(
    sizes: Sequence[int] = (4, 6, 8, 10),
    jobs: int | None = None,
    check_only: bool = False,
) -> dict:
    """Arrangement construction: naive DFS vs witness-reuse fast path.

    ``check_only`` skips nothing but timing *assertions* are left to the
    caller either way; every run verifies that both paths enumerate the
    identical face list.  The feasibility memo is cleared before each
    measurement so timings are hermetic.
    """
    from repro.arrangement.builder import build_arrangement
    from repro.arrangement.parallel import resolve_jobs
    from repro.geometry.hyperplane import Hyperplane
    from repro.geometry.simplex import clear_feasibility_cache

    registry = get_registry()
    effective_jobs = resolve_jobs(jobs)
    results = []
    for n in sizes:
        planes = [
            Hyperplane.make([2 * i, -1], i * i) for i in range(1, n + 1)
        ]
        clear_feasibility_cache()
        baseline, baseline_s = _timed(
            build_arrangement,
            hyperplanes=planes,
            dimension=2,
            witness_reuse=False,
            dedup=False,
            parallel=1,
        )
        clear_feasibility_cache()
        skipped_before = registry.get("arrangement.lp_skipped")
        fast, fast_s = _timed(
            build_arrangement,
            hyperplanes=planes,
            dimension=2,
            parallel=effective_jobs,
        )
        lp_skipped = registry.get("arrangement.lp_skipped") - skipped_before
        match = [f.signs for f in baseline.faces] == [
            f.signs for f in fast.faces
        ]
        results.append(
            {
                "n": n,
                "faces": len(fast),
                "baseline_s": round(baseline_s, 4),
                "fast_s": round(fast_s, 4),
                "speedup": round(baseline_s / fast_s, 2)
                if fast_s > 0
                else None,
                "lp_skipped": lp_skipped,
                "match": match,
            }
        )
    largest = results[-1] if results else None
    return {
        "benchmark": "E2",
        "subject": "arrangement construction (Theorem 3.1 DFS)",
        "baseline": "sign-vector DFS, LP solve per child branch",
        "fast": "witness-reuse pruning + derived witnesses + system dedup"
        + (f" + {effective_jobs} worker processes"
           if effective_jobs > 1 else ""),
        "jobs": effective_jobs,
        "metadata": _metadata(effective_jobs),
        "check_only": check_only,
        "sizes": list(sizes),
        "results": results,
        "all_match": all(row["match"] for row in results),
        "largest_speedup": largest["speedup"] if largest else None,
    }


def run_bench_e3(
    sizes: Sequence[int] = (100, 200, 400),
    seed: int = 20260806,
    check_only: bool = False,
) -> dict:
    """LP feasibility: exact rational simplex vs the certified filter.

    Each size is a batch of seeded random mixed strict/non-strict
    systems in two and three variables (equality rows, duplicated and
    near-parallel rows included), solved once per tier with a cold
    feasibility memo.  Equivalence is exact: identical feasibility
    statuses, and each filtered witness substituted into its system with
    rational arithmetic.
    """
    import random

    from repro.geometry.simplex import (
        clear_feasibility_cache,
        strict_feasible_point,
    )

    registry = get_registry()
    results = []
    for count in sizes:
        rng = random.Random(seed + count)
        systems = [
            _random_lp_system(rng, rng.choice((2, 2, 3)))
            for __ in range(count)
        ]
        with fastlp.lp_mode("exact"):
            clear_feasibility_cache()
            exact_points, exact_s = _timed(
                lambda: [
                    strict_feasible_point(rows, dim) for rows, dim in systems
                ]
            )
        hits_before = registry.get("lp.filter_hits")
        fallbacks_before = registry.get("lp.filter_fallbacks")
        failures_before = registry.get("lp.certify_failures")
        with fastlp.lp_mode("filtered"):
            clear_feasibility_cache()
            filtered_points, filtered_s = _timed(
                lambda: [
                    strict_feasible_point(rows, dim) for rows, dim in systems
                ]
            )
        match = all(
            (exact is None) == (filtered is None)
            and (
                filtered is None
                or all(row.satisfied_by(filtered) for row in rows)
            )
            for (rows, __), exact, filtered in zip(
                systems, exact_points, filtered_points
            )
        )
        results.append(
            {
                "systems": count,
                "baseline_s": round(exact_s, 4),
                "fast_s": round(filtered_s, 4),
                "speedup": round(exact_s / filtered_s, 2)
                if filtered_s > 0
                else None,
                "solves_per_s": round(count / filtered_s, 1)
                if filtered_s > 0
                else None,
                "filter_hits": registry.get("lp.filter_hits") - hits_before,
                "filter_fallbacks": registry.get("lp.filter_fallbacks")
                - fallbacks_before,
                "certify_failures": registry.get("lp.certify_failures")
                - failures_before,
                "match": match,
            }
        )
    largest = results[-1] if results else None
    return {
        "benchmark": "E3",
        "subject": "LP feasibility (strict_feasible_point microbench)",
        "baseline": "exact rational ε-simplex (lp_mode=exact)",
        "fast": "certified float filter with exact fallback "
        "(lp_mode=filtered)",
        "seed": seed,
        "metadata": _metadata(1),
        "check_only": check_only,
        "sizes": list(sizes),
        "results": results,
        "all_match": all(row["match"] for row in results),
        "largest_speedup": largest["speedup"] if largest else None,
    }


def _random_lp_system(rng, dim: int):
    """One seeded random constraint system ``(rows, dim)`` for E3.

    Mirrors the property suite's stress shapes: mixed relations, small
    integer data with occasional fractional right-hand sides, duplicate
    rows and near-parallel perturbations that land inside the filter's
    epsilon band.
    """
    from fractions import Fraction

    from repro.geometry.fourier_motzkin import LinearConstraint, Rel

    n_rows = rng.randint(2, dim + 5)
    rows = []
    for __ in range(n_rows):
        coeffs = tuple(
            Fraction(rng.randint(-5, 5)) for __ in range(dim)
        )
        roll = rng.random()
        if roll < 0.15:
            rel = Rel.EQ
        elif roll < 0.6:
            rel = Rel.LT
        else:
            rel = Rel.LE
        rhs = Fraction(rng.randint(-10, 10), rng.choice((1, 1, 1, 2, 3)))
        rows.append(LinearConstraint(coeffs, rel, rhs))
    if rng.random() < 0.3:
        base = rows[rng.randrange(len(rows))]
        rows.append(base)
    if rng.random() < 0.3:
        base = rows[rng.randrange(len(rows))]
        nudged = tuple(
            c + Fraction(1, 10**9) if index == 0 else c
            for index, c in enumerate(base.coeffs)
        )
        rows.append(LinearConstraint(nudged, base.rel, base.rhs))
    return rows, dim


#: The compiled executor must beat the interpreted semi-naive engine by
#: at least this factor on E15 chains of k >= _E15_TARGET_K.
_E15_TARGET_SPEEDUP = 5.0
_E15_TARGET_K = 32


def run_bench_e15(
    sizes: Sequence[int] = (16, 32, 64),
    check_only: bool = False,
    executor: str | None = None,
) -> dict:
    """Spatial datalog: interpreted vs compiled semi-naive executors.

    Both sides run the same semi-naive delta iteration on the unit-step
    reachability program over growing interval chains; the fast side
    routes every stage through the compiled relational-algebra IR and
    its memoised kernels (:mod:`repro.ir`).  ``match`` demands
    *byte-identical* output — equal stage counts, equal per-stage
    accumulated sizes and structurally identical result formulas — so
    the speedup is certified free.  The process-wide feasibility memo is
    cleared before every measurement to keep timings hermetic (the
    compiled executor's own memos live in its per-run
    :class:`~repro.ir.kernels.KernelCache`, so the interpreted baseline
    never borrows them).

    ``executor`` overrides the fast side's executor (debugging aid; the
    default compares ``interpreted`` against ``compiled``).  Rows at
    ``k >= 32`` also record whether the >=5x target of the compiled
    executor holds (``meets_target``; ignored under ``check_only``).
    """
    from repro.config import resolve_executor
    from repro.datalog import evaluate_program
    from repro.datalog.parser import parse_program
    from repro.geometry.simplex import clear_feasibility_cache
    from repro.workloads.generators import interval_chain

    registry = get_registry()
    fast_executor = resolve_executor(executor)
    program = parse_program(
        "Reach(x) :- S(x), x = 0.\n"
        "Reach(y) :- Reach(x), S(y), y - x <= 1, x - y <= 1.\n"
    )
    results = []
    for k in sizes:
        database = interval_chain(k)
        clear_feasibility_cache()
        base_delta_before = registry.get("datalog.delta_disjuncts")
        baseline, baseline_s = _timed(
            evaluate_program,
            program,
            database,
            max_stages=4 * k + 8,
            strategy="seminaive",
            executor="interpreted",
        )
        baseline_deltas = (
            registry.get("datalog.delta_disjuncts") - base_delta_before
        )
        clear_feasibility_cache()
        delta_before = registry.get("datalog.delta_disjuncts")
        fast, fast_s = _timed(
            evaluate_program,
            program,
            database,
            max_stages=4 * k + 8,
            strategy="seminaive",
            executor=fast_executor,
        )
        delta_disjuncts = (
            registry.get("datalog.delta_disjuncts") - delta_before
        )
        identical = (
            fast.stages == baseline.stages
            and fast.converged == baseline.converged
            and fast.stage_sizes == baseline.stage_sizes
            and set(fast.relations) == set(baseline.relations)
            and all(
                fast[p].variables == baseline[p].variables
                and str(fast[p].formula) == str(baseline[p].formula)
                for p in fast.relations
            )
            and delta_disjuncts == baseline_deltas
        )
        speedup = round(baseline_s / fast_s, 2) if fast_s > 0 else None
        row = {
            "k": k,
            "stages": fast.stages,
            "converged": fast.converged and baseline.converged,
            "baseline_s": round(baseline_s, 4),
            "fast_s": round(fast_s, 4),
            "speedup": speedup,
            "delta_disjuncts": delta_disjuncts,
            "match": identical,
        }
        if k >= _E15_TARGET_K and not check_only:
            row["meets_target"] = (
                speedup is not None and speedup >= _E15_TARGET_SPEEDUP
            )
        results.append(row)
    largest = results[-1] if results else None
    metadata = _metadata(1)
    metadata["executor_baseline"] = "interpreted"
    metadata["executor_fast"] = fast_executor
    return {
        "benchmark": "E15",
        "subject": "spatial datalog evaluation (unit-step reachability)",
        "baseline": "semi-naive delta iteration, interpreted "
        "rule-at-a-time executor",
        "fast": "semi-naive delta iteration, compiled relational-"
        "algebra IR over memoised kernels",
        "target": {
            "speedup": _E15_TARGET_SPEEDUP,
            "at_k": _E15_TARGET_K,
        },
        "metadata": metadata,
        "check_only": check_only,
        "sizes": list(sizes),
        "results": results,
        "all_match": all(row["match"] for row in results),
        "largest_speedup": largest["speedup"] if largest else None,
    }


#: The cost-based optimizer must win at least this geomean speedup on
#: the E14 suite (the individual wide-scope rows win far more).
_E14_TARGET_GEOMEAN = 1.5

#: The E14 query suite: wide-scope quantifier prefixes that miniscoping
#: collapses, conjunctions/disjunctions where the decisive operand is
#: written last (cost ordering moves it first so the lazy boolean
#:  connective short-circuits), and the E4 connectivity sentence in its
#: "textbook" body order (``adj`` and ``sub`` before the recursive
#: ``M(R, Z)`` guard, which the optimizer moves first).
_E14_QUERIES = (
    (
        "wide-pair",
        "exists x. exists y. (S(x) & S(y) & x < 1)",
    ),
    (
        "wide-triple",
        "exists x. exists y. exists z. (S(x) & S(y) & S(z) & x < 1)",
    ),
    (
        "guarded-and",
        "(forall R. forall Rp. (adj(R, Rp) -> "
        "(exists x. exists y. ((x) in R & (y) in Rp & x <= y)))) "
        "& (exists w. (S(w) & w + 2 < 0))",
    ),
    (
        "guarded-or",
        "(forall R. forall Rp. (adj(R, Rp) -> "
        "(exists x. exists y. ((x) in R & (y) in Rp & x <= y)))) "
        "| (exists w. (S(w) & w >= 0))",
    ),
    (
        "e4-connectivity",
        "forall X. forall Y. ((sub(X, S) & sub(Y, S)) -> "
        "(exists RX. exists RY. (sub(RX, S) & sub(RY, S) & "
        "[lfp M(R, Rp). ((R = Rp & sub(R, S)) | "
        "(exists Z. adj(Z, Rp) & sub(Rp, S) & M(R, Z)))](RX, RY))))",
    ),
)


@contextmanager
def _no_store():
    """Suppress disk persistence for the E14 timed rows.

    The optimizer-on and optimizer-off result-cache keys differ (the
    key hashes the rewritten plan), so a warm store would hand one side
    a cache hit and the other an evaluation — the timings must compare
    plans, not cache states.  Clears both the context override and the
    ``REPRO_CACHE_DIR`` fallback, restoring them afterwards.
    """
    import os

    from repro.store import ENV_CACHE_DIR, configure_store

    saved_env = os.environ.pop(ENV_CACHE_DIR, None)
    previous = configure_store(None)
    try:
        yield
    finally:
        if saved_env is not None:
            os.environ[ENV_CACHE_DIR] = saved_env
        configure_store(previous)


def run_bench_e14(
    sizes: Sequence[int] = (6, 10),
    check_only: bool = False,
) -> dict:
    """Cost-based optimizer: ablated plans vs cost-ordered plans (E14).

    Every row evaluates one sentence of the :data:`_E14_QUERIES` suite
    on ``interval_chain(k)`` twice with fresh engines — once with
    ``optimizer="off"`` (the ablated oracle) and once with
    ``optimizer="on"`` — and demands the identical truth value
    (``match``); the speedups must be free.  The timed rows run with
    the disk store suppressed so they measure the pure plan-rewrite
    benefit, never result-cache hits.

    A separate *statistics phase* then runs one query twice against a
    temporary store and records that the warm engine's planner consumed
    the statistics the cold engine persisted
    (``optimizer_stats.stats_hits > 0``) — the closed loop of the
    optimizer, demonstrated across engine instances.
    """
    import math
    import tempfile

    from repro.config import EngineConfig
    from repro.engine import QueryEngine
    from repro.geometry.simplex import clear_feasibility_cache
    from repro.logic.parser import parse_query
    from repro.workloads.generators import interval_chain

    registry = get_registry()
    results = []
    with _no_store():
        for k in sizes:
            database = interval_chain(k)
            for name, text in _E14_QUERIES:
                formula = parse_query(text)
                clear_feasibility_cache()
                baseline_engine = QueryEngine(
                    database, config=EngineConfig(optimizer="off")
                )
                baseline, baseline_s = _timed(
                    baseline_engine.evaluate, formula
                )
                clear_feasibility_cache()
                fast_engine = QueryEngine(
                    database, config=EngineConfig(optimizer="on")
                )
                fast, fast_s = _timed(fast_engine.evaluate, formula)
                # Every suite query is a sentence: equivalence is the
                # truth value (the rewritten plan may print differently).
                match = (
                    baseline.arity == 0
                    and fast.arity == 0
                    and baseline.is_empty() == fast.is_empty()
                )
                results.append(
                    {
                        "k": k,
                        "query": name,
                        "answer": not fast.is_empty(),
                        "baseline_s": round(baseline_s, 4),
                        "fast_s": round(fast_s, 4),
                        "speedup": round(baseline_s / fast_s, 2)
                        if fast_s > 0
                        else None,
                        "match": match,
                    }
                )
    speedups = [
        row["speedup"] for row in results if row["speedup"] is not None
    ]
    geomean = (
        round(
            math.exp(
                sum(math.log(s) for s in speedups) / len(speedups)
            ),
            2,
        )
        if speedups
        else None
    )

    # Statistics phase: cold engine persists measurements, warm engine
    # plans from them.  Uses its own temporary store so the phase is
    # hermetic and never pollutes (or borrows from) the user's cache.
    with tempfile.TemporaryDirectory() as tmp:
        stats_db = interval_chain(min(sizes) if sizes else 6)
        stats_formula = parse_query(_E14_QUERIES[0][1])
        cold = QueryEngine(
            stats_db,
            config=EngineConfig.resolve(cache_dir=tmp, optimizer="on"),
        )
        cold.evaluate(stats_formula)
        hits_before = registry.get("optimizer.stats_hits")
        warm = QueryEngine(
            stats_db,
            config=EngineConfig.resolve(cache_dir=tmp, optimizer="on"),
        )
        warm.evaluate(stats_formula)
        warm_hits = registry.get("optimizer.stats_hits") - hits_before
        optimizer_stats = {
            "stats_hits": warm_hits,
            "persisted_nodes": (warm.stats().get("optimizer") or {}).get(
                "persisted_nodes"
            ),
        }

    metadata = _metadata(1)
    metadata["optimizer_stats"] = optimizer_stats
    record = {
        "benchmark": "E14",
        "subject": "cost-based optimizer (plan rewrites + statistics)",
        "baseline": "ablated plans (optimizer=off), source operand order",
        "fast": "NNF + miniscoping, cost-ordered conjuncts/disjuncts, "
        "min-degree quantifier chains (optimizer=on)",
        "target": {"geomean_speedup": _E14_TARGET_GEOMEAN},
        "metadata": metadata,
        "check_only": check_only,
        "sizes": list(sizes),
        "results": results,
        "all_match": all(row["match"] for row in results)
        and optimizer_stats["stats_hits"] > 0,
        "geomean_speedup": geomean,
        "largest_speedup": max(speedups) if speedups else None,
    }
    if not check_only:
        record["meets_target"] = (
            geomean is not None and geomean >= _E14_TARGET_GEOMEAN
        )
    return record


#: Incremental maintenance must beat the full rebuild by at least this
#: factor on single-disjunct updates (the paper-story write: one new
#: fact against a large standing database).
_E16_TARGET_SPEEDUP = 5.0

#: Update size the target applies at.
_E16_TARGET_UPDATE = 1


def _combinatorial_signature(arrangement) -> list:
    """Order-free face identity: (signs, dimension, in_relation) rows.

    Witness points are deliberately excluded — they are path-dependent
    between the batch DFS and the incremental insert/retract walk (see
    :mod:`repro.arrangement.incremental`); every certified field must
    agree exactly.
    """
    return sorted(
        (face.signs, face.dimension, face.in_relation)
        for face in arrangement.faces
    )


def run_bench_e16(
    sizes: Sequence[int] = (1, 4, 16),
    check_only: bool = False,
    k: int | None = None,
) -> dict:
    """Incremental view maintenance vs full rebuild under writes (E16).

    Each row extends an ``interval_chain(k)`` database by ``update``
    new unit segments and answers the E15 unit-step reachability
    program against the post-write version twice:

    * **fast** — the maintenance path: the standing arrangement is
      updated by plane delta
      (:class:`~repro.incremental.MaintainedArrangements`, O(|F|) LP
      calls per inserted plane) and the materialised fixpoint re-runs
      the compiled semi-naive delta plans over warm, interned kernels
      (:class:`~repro.incremental.MaintainedProgram`);
    * **baseline** — the honest oracle: a batch arrangement rebuild
      plus the interpreted full fixpoint evaluation from scratch.

    ``match`` demands byte-identity: equal combinatorial face
    signatures (signs, dimensions, in/out classification — witnesses
    are path-dependent and excluded) and byte-identical fixpoint
    output (stage counts, per-stage sizes, structurally identical
    result formulas).  The warm-up that seeds the maintained state on
    the *pre*-write version is untimed — it models the standing server
    the write arrives at.  ``k`` sizes the standing database (default
    32, or 12 under ``check_only``); the ≥5× target applies to the
    single-segment update rows.
    """
    from repro.arrangement.builder import build_arrangement
    from repro.datalog import evaluate_program
    from repro.datalog.parser import parse_program
    from repro.geometry.simplex import clear_feasibility_cache
    from repro.incremental import (
        MaintainedArrangements,
        MaintainedProgram,
        apply_delta,
        make_delta,
    )
    from repro.workloads.generators import interval_chain

    chain_k = k if k is not None else (12 if check_only else 32)
    program = parse_program(
        "Reach(x) :- S(x), x = 0.\n"
        "Reach(y) :- Reach(x), S(y), y - x <= 1, x - y <= 1.\n"
    )
    registry = get_registry()
    results = []
    with _no_store():
        for update in sizes:
            base = interval_chain(chain_k)
            max_stages = 4 * (chain_k + update) + 8
            # Untimed warm-up: the standing engine state the write
            # arrives at (base arrangement adopted, base fixpoint
            # materialised with its kernels interned).
            maintained = MaintainedProgram(
                program, base, max_stages=max_stages
            )
            arrangements = MaintainedArrangements()
            old_spatial = base.relation("S")
            arrangements.adopt(
                old_spatial, build_arrangement(old_spatial)
            )
            delta = make_delta(*(
                (
                    "insert",
                    "S",
                    f"({chain_k + i} <= x0 & x0 <= {chain_k + i + 1})",
                )
                for i in range(update)
            ))
            new_db = apply_delta(base, delta)
            new_spatial = new_db.relation("S")

            clear_feasibility_cache()
            inserted_before = registry.get("incremental.planes_inserted")

            def maintain():
                arrangement = arrangements.update(
                    old_spatial,
                    new_spatial,
                    build_old=lambda: build_arrangement(old_spatial),
                )
                return arrangement, maintained.apply(new_db)

            (fast_arr, fast_outcome), fast_s = _timed(maintain)
            planes_inserted = (
                registry.get("incremental.planes_inserted")
                - inserted_before
            )

            clear_feasibility_cache()

            def rebuild():
                arrangement = build_arrangement(new_spatial)
                outcome = evaluate_program(
                    program,
                    new_db,
                    max_stages=max_stages,
                    strategy="seminaive",
                    executor="interpreted",
                )
                return arrangement, outcome

            (base_arr, base_outcome), baseline_s = _timed(rebuild)

            identical = (
                fast_arr.hyperplanes == base_arr.hyperplanes
                and _combinatorial_signature(fast_arr)
                == _combinatorial_signature(base_arr)
                and fast_outcome.stages == base_outcome.stages
                and fast_outcome.converged == base_outcome.converged
                and fast_outcome.stage_sizes == base_outcome.stage_sizes
                and set(fast_outcome.relations)
                == set(base_outcome.relations)
                and all(
                    fast_outcome[p].variables
                    == base_outcome[p].variables
                    and str(fast_outcome[p].formula)
                    == str(base_outcome[p].formula)
                    for p in fast_outcome.relations
                )
            )
            speedup = (
                round(baseline_s / fast_s, 2) if fast_s > 0 else None
            )
            row = {
                "update": update,
                "k": chain_k,
                "stages": fast_outcome.stages,
                "converged": (
                    fast_outcome.converged and base_outcome.converged
                ),
                "faces": len(fast_arr.faces),
                "planes_inserted": planes_inserted,
                "baseline_s": round(baseline_s, 4),
                "fast_s": round(fast_s, 4),
                "speedup": speedup,
                "match": identical,
            }
            if update == _E16_TARGET_UPDATE and not check_only:
                row["meets_target"] = (
                    speedup is not None
                    and speedup >= _E16_TARGET_SPEEDUP
                )
            results.append(row)
    speedups = [
        row["speedup"] for row in results if row["speedup"] is not None
    ]
    metadata = _metadata(1)
    metadata["executor_baseline"] = "interpreted"
    metadata["executor_fast"] = "compiled"
    return {
        "benchmark": "E16",
        "subject": "incremental view maintenance under writes "
        "(unit-step reachability)",
        "baseline": "full rebuild: batch arrangement construction + "
        "interpreted semi-naive fixpoint from scratch",
        "fast": "maintenance: plane-delta arrangement update + "
        "compiled semi-naive re-run over warm interned kernels",
        "target": {
            "speedup": _E16_TARGET_SPEEDUP,
            "at_update": _E16_TARGET_UPDATE,
        },
        "metadata": metadata,
        "check_only": check_only,
        "sizes": list(sizes),
        "k": chain_k,
        "results": results,
        "all_match": all(row["match"] for row in results),
        "largest_speedup": max(speedups) if speedups else None,
    }


BENCHMARKS = {
    "e2": (run_bench_e2, "BENCH_E2.json"),
    "e3": (run_bench_e3, "BENCH_E3.json"),
    "e14": (run_bench_e14, "BENCH_E14.json"),
    "e15": (run_bench_e15, "BENCH_E15.json"),
    "e16": (run_bench_e16, "BENCH_E16.json"),
}


def write_record(record: dict, path: str) -> None:
    """Write a benchmark record, refusing under-described metadata.

    Every record must carry the :data:`REQUIRED_METADATA` keys (with a
    value, except ``git_sha`` which is legitimately ``None`` outside a
    git checkout) so committed BENCH_*.json files always state the
    lp_mode/jobs/executor/backend provenance of their numbers.
    """
    metadata = record.get("metadata")
    if not isinstance(metadata, dict):
        raise ValueError("benchmark record has no metadata block")
    missing = [key for key in REQUIRED_METADATA if key not in metadata]
    unset = [
        key
        for key in REQUIRED_METADATA
        if key != "git_sha" and metadata.get(key, None) is None
    ]
    if missing or unset:
        raise ValueError(
            "refusing to write benchmark record: missing metadata keys "
            f"{sorted(set(missing + unset))}"
        )
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")


def history_line(record: dict) -> dict:
    """The one-line summary of a benchmark record for the history log."""
    metadata = record.get("metadata") or {}
    return {
        "benchmark": record.get("benchmark"),
        "timestamp_utc": metadata.get("timestamp_utc"),
        "git_sha": metadata.get("git_sha"),
        "python_version": metadata.get("python_version"),
        "lp_mode": metadata.get("lp_mode"),
        "jobs": metadata.get("jobs"),
        "executor": metadata.get("executor"),
        "sizes": record.get("sizes"),
        "all_match": record.get("all_match"),
        "largest_speedup": record.get("largest_speedup"),
        "fast_total_s": _timing_signal(record),
    }


def _timing_signal(record: dict) -> float | None:
    """Total fast-path seconds across a record's result rows.

    The regression sentry's comparison scalar: the sum of ``fast_s``
    over every size, which every benchmark family reports.  ``None``
    when the record carries no timed rows (nothing to compare).
    """
    rows = record.get("results") or []
    timings = [
        row["fast_s"]
        for row in rows
        if isinstance(row, dict) and isinstance(row.get("fast_s"), (int, float))
    ]
    if not timings:
        return None
    return round(sum(timings), 4)


def append_history(record: dict, path: str) -> None:
    """Append a record's :func:`history_line` to a JSON Lines file.

    One compact line per run (``repro bench --append-history``), so the
    performance trajectory across commits stays greppable and
    machine-readable without storing every full record.
    """
    with open(path, "a") as handle:
        handle.write(
            json.dumps(history_line(record), separators=(",", ":"))
        )
        handle.write("\n")


#: Defaults of the regression sentry (``repro bench --check-regression``).
REGRESSION_WINDOW = 5
REGRESSION_TOLERANCE = 0.25


def load_history(path: str) -> list[dict]:
    """Parse a history JSONL file; unparseable lines are skipped."""
    lines: list[dict] = []
    try:
        with open(path) as handle:
            for raw in handle:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    lines.append(json.loads(raw))
                except json.JSONDecodeError:
                    continue
    except FileNotFoundError:
        return []
    return lines


def check_regression(
    record: dict,
    history_path: str,
    window: int = REGRESSION_WINDOW,
    tolerance: float = REGRESSION_TOLERANCE,
) -> dict:
    """Compare a fresh record's timing against its recent history.

    The comparison scalar is :func:`_timing_signal` (total fast-path
    seconds).  History lines count only when they describe the *same*
    experiment — benchmark, sizes, lp_mode, jobs and executor all equal
    — so a knob change never masquerades as a slowdown.  The verdict is
    the ratio of the fresh timing to the **median of the last
    ``window`` matching lines**: medians shrug off one noisy CI run
    where a mean would not.

    Returns a verdict dict whose ``status`` is ``"regression"`` (ratio
    above ``1 + tolerance``), ``"ok"``, ``"no-history"`` (nothing
    comparable recorded yet) or ``"no-signal"`` (the record has no
    timed rows).  The CLI exits nonzero only on ``"regression"``.
    """
    if window < 1:
        raise ValueError("window must be at least 1")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    current = _timing_signal(record)
    metadata = record.get("metadata") or {}
    verdict: dict = {
        "benchmark": record.get("benchmark"),
        "history": str(history_path),
        "window": window,
        "tolerance": tolerance,
        "current_s": current,
    }
    if current is None:
        verdict["status"] = "no-signal"
        return verdict
    key = {
        "benchmark": record.get("benchmark"),
        "sizes": record.get("sizes"),
        "lp_mode": metadata.get("lp_mode"),
        "jobs": metadata.get("jobs"),
        "executor": metadata.get("executor"),
    }
    matching = [
        line
        for line in load_history(history_path)
        if isinstance(line.get("fast_total_s"), (int, float))
        and all(line.get(field) == value for field, value in key.items())
    ]
    if not matching:
        verdict["status"] = "no-history"
        verdict["samples"] = 0
        return verdict
    recent = matching[-window:]
    timings = sorted(line["fast_total_s"] for line in recent)
    middle = len(timings) // 2
    if len(timings) % 2:
        median = timings[middle]
    else:
        median = (timings[middle - 1] + timings[middle]) / 2
    ratio = current / median if median > 0 else float("inf")
    verdict.update(
        samples=len(recent),
        median_s=round(median, 4),
        ratio=round(ratio, 3),
        status="regression" if ratio > 1 + tolerance else "ok",
    )
    return verdict
