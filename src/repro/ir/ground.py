"""Compilation of ground (region-sort) fixpoint stage bodies.

RegLFP induction over a finite region extension evaluates the stage
body once per candidate region tuple per stage — and the interpreted
evaluator pays full dispatch (memo-key construction over region/set
environments, node-type dispatch, relation boxing) for every candidate.
This module compiles the *boolean skeleton* of the body once:

* ``RTrue`` / ``RFalse`` / ``RAnd`` / ``ROr`` / ``RNot`` become plain
  boolean combinators;
* ``SetAtom`` over the fixpoint's own set variable becomes a membership
  test against the current stage set, and over an outer set variable a
  test against that (fixed) set;
* ``ExistsRegion`` / ``ForallRegion`` become loops over region indices;
* every other subformula that is closed over elements and does not
  mention the fixpoint's set variable becomes an **oracle leaf**: it is
  evaluated through :meth:`repro.logic.evaluator.Evaluator.truth` — the
  same code path the interpreted engine runs — once per distinct
  assignment of its free region variables, then memoised for the rest
  of the induction.

Truth values are therefore *identical by construction* to the
interpreted stage: the skeleton is semantics-preserving and the leaves
are the interpreted evaluator itself.  Bodies outside the fragment (a
set-variable occurrence under an element quantifier, say) return
``None`` from :func:`compile_fixpoint_step` and the caller silently
falls back to the interpreted step.
"""

from __future__ import annotations

from typing import Callable

from repro.logic import ast

#: A compiled stage test: (region env, current stage set) -> bool.
StepTest = Callable[[dict, frozenset], bool]

_ABSENT = object()
_MISS = object()


def compile_fixpoint_step(
    formula: "ast.Fixpoint", evaluator, set_env: dict
) -> StepTest | None:
    """Compile ``formula.body`` into a per-candidate truth test.

    ``None`` when the body falls outside the compilable fragment; the
    caller then uses the interpreted per-candidate evaluation.  The
    returned test mutates the environment dict it is given (quantifier
    bindings are saved and restored), so callers should pass a fresh or
    reusable dict per candidate, exactly as the driver in
    :meth:`Evaluator.fixpoint_run` does.
    """
    count = evaluator.extension.region_count()
    return _compile(
        formula.body, formula.set_var, set_env, evaluator, count
    )


def _oracle_leaf(node, set_env, evaluator) -> StepTest:
    """A memoised interpreted-evaluator call for an S-free subformula."""
    names = tuple(sorted(node.free_region_vars()))
    memo: dict = {}

    def test(env: dict, current: frozenset) -> bool:
        key = tuple(env[name] for name in names)
        verdict = memo.get(key, _MISS)
        if verdict is _MISS:
            verdict = evaluator.truth(
                node, dict(zip(names, key)), set_env
            )
            memo[key] = verdict
        return verdict

    return test


def _compile(node, set_var, set_env, evaluator, count) -> StepTest | None:
    if isinstance(node, ast.RTrue):
        return lambda env, current: True
    if isinstance(node, ast.RFalse):
        return lambda env, current: False
    if isinstance(node, ast.SetAtom):
        args = node.args
        if node.set_var == set_var:
            if len(args) == 1:
                name = args[0]
                return lambda env, current: (env[name],) in current
            return lambda env, current: (
                tuple(env[a] for a in args) in current
            )
        fixed = set_env.get(node.set_var)
        if fixed is None:
            return None
        return lambda env, current: tuple(env[a] for a in args) in fixed
    if set_var not in node.free_set_vars():
        # S-free subtree: interpreted oracle, one call per distinct
        # region assignment.  Requires element-closedness — truth() of
        # an open formula is not a boolean.
        if node.free_element_vars():
            return None
        return _oracle_leaf(node, set_env, evaluator)
    if isinstance(node, ast.RNot):
        sub = _compile(node.operand, set_var, set_env, evaluator, count)
        if sub is None:
            return None
        return lambda env, current: not sub(env, current)
    if isinstance(node, (ast.RAnd, ast.ROr)):
        subs = [
            _compile(operand, set_var, set_env, evaluator, count)
            for operand in node.operands
        ]
        if any(sub is None for sub in subs):
            return None
        if isinstance(node, ast.RAnd):
            return lambda env, current: all(
                sub(env, current) for sub in subs
            )
        return lambda env, current: any(sub(env, current) for sub in subs)
    if isinstance(node, (ast.ExistsRegion, ast.ForallRegion)):
        sub = _compile(node.body, set_var, set_env, evaluator, count)
        if sub is None:
            return None
        variable = node.variable
        exists = isinstance(node, ast.ExistsRegion)

        def quantified(env: dict, current: frozenset) -> bool:
            saved = env.get(variable, _ABSENT)
            try:
                for region in range(count):
                    env[variable] = region
                    if sub(env, current) is exists:
                        return exists
                return not exists
            finally:
                if saved is _ABSENT:
                    env.pop(variable, None)
                else:
                    env[variable] = saved

        return quantified
    # A set-variable occurrence inside a construct the skeleton cannot
    # model (element quantifier, nested fixpoint, TC, ...).
    return None


def linear_decomposition(
    formula: "ast.Fixpoint", evaluator, set_env: dict
):
    """``(base, edge)`` sets for a *linear* compiled LFP body, or ``None``.

    A body is linear when it mentions the fixpoint's set variable in
    exactly one :class:`~repro.logic.ast.SetAtom`, reached only through
    ``RAnd`` / ``ROr`` / ``ExistsRegion`` (no negation, no universal
    region quantifier — those evaluate the atom at several bindings, so
    the member-wise decomposition below would be unsound).  For such a
    body, truth at stage set ``T`` decomposes exactly as

        body_T(x̄)  ⇔  body_∅(x̄) ∨ ∃t ∈ T. body_{t}(x̄)

    because the single set atom either contributes (then some member
    ``t`` alone suffices) or does not (then the empty set suffices).
    ``base`` collects ``{x̄ : body_∅(x̄)}`` and ``edge`` the pairs
    ``{(t, x̄) : body_{t}(x̄)}``; both are finite, so the induction
    becomes ordinary reachability — the form
    :mod:`repro.ir.sqlite` lowers to SQL.  ``None`` when the body is
    not linear or not compilable.
    """
    occurrences = _set_atom_occurrences(formula.body, formula.set_var)
    if occurrences != 1:
        return None
    test = compile_fixpoint_step(formula, evaluator, set_env)
    if test is None:
        return None
    from repro.logic.fixpoint import all_region_tuples

    count = evaluator.extension.region_count()
    arity = len(formula.bound_vars)
    universe = list(all_region_tuples(count, arity))
    bound_vars = formula.bound_vars
    empty: frozenset = frozenset()
    base = {
        candidate
        for candidate in universe
        if test(dict(zip(bound_vars, candidate)), empty)
    }
    edge = set()
    for member in universe:
        singleton = frozenset((member,))
        for candidate in universe:
            if candidate in base:
                continue
            if test(dict(zip(bound_vars, candidate)), singleton):
                edge.add((member, candidate))
    return base, edge


def _set_atom_occurrences(node, set_var: str) -> int:
    if isinstance(node, ast.SetAtom):
        return 1 if node.set_var == set_var else 0
    if isinstance(node, (ast.RNot, ast.ForallRegion)):
        # Negation breaks positivity; a universal quantifier evaluates
        # the atom at several bindings.  Either way the member-wise
        # decomposition is unsound — poison the count.
        return 1000 if set_var in node.free_set_vars() else 0
    children = []
    if isinstance(node, (ast.RAnd, ast.ROr)):
        children = list(node.operands)
    elif isinstance(node, ast.ExistsRegion):
        children = [node.body]
    elif set_var in node.free_set_vars():
        return 1000
    return sum(_set_atom_occurrences(child, set_var) for child in children)
