"""SQLite lowering of ground linear fixpoints.

When a ground LFP body is *linear* (see
:func:`repro.ir.ground.linear_decomposition`), its induction is plain
reachability over two finite integer relations:

* ``base`` — the region tuples derivable from the empty stage set;
* ``edge`` — pairs ``(t, x̄)``: tuple ``x̄`` is derivable from the
  singleton stage set ``{t}``.

This module evaluates that reachability inside SQLite.  Two forms:

* :meth:`SQLiteGroundFixpoint.step` — one semi-naive stage as a SQL
  query over in-memory tables, returning exactly the set the
  interpreted ``raw_step`` would: the fixpoint driver, journal wrapper
  and stage counters stay shared, so per-stage telemetry is
  byte-identical to the interpreted run.
* :meth:`SQLiteGroundFixpoint.recursive_cte_sql` /
  :meth:`run_recursive_cte` — the whole induction as a single
  ``WITH RECURSIVE`` query.  Stage structure is SQLite's, not the
  paper's, so only the *final* set is comparable (the equivalence suite
  asserts it equals the staged result); this is the out-of-core form —
  the tables can live on disk and the fixpoint never materialises in
  Python until the final fetch.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable


def _columns(prefix: str, arity: int) -> list[str]:
    return [f"{prefix}{i}" for i in range(arity)]


class SQLiteGroundFixpoint:
    """Reachability over ``base``/``edge`` region-tuple tables."""

    def __init__(
        self,
        base: Iterable[tuple],
        edge: Iterable[tuple],
        arity: int,
    ) -> None:
        if arity < 1:
            raise ValueError("ground fixpoints have arity >= 1")
        self.arity = arity
        self._conn = sqlite3.connect(":memory:")
        cols = ", ".join(_columns("c", arity))
        source_cols = ", ".join(_columns("s", arity))
        target_cols = ", ".join(_columns("t", arity))
        cursor = self._conn.cursor()
        cursor.execute(f"CREATE TABLE base ({cols})")
        cursor.execute(f"CREATE TABLE edge ({source_cols}, {target_cols})")
        cursor.execute(f"CREATE TABLE cur ({cols})")
        marks = ", ".join("?" * arity)
        cursor.executemany(
            f"INSERT INTO base VALUES ({marks})", list(base)
        )
        cursor.executemany(
            f"INSERT INTO edge VALUES ({marks}, {marks})",
            [tuple(source) + tuple(target) for source, target in edge],
        )
        join = " AND ".join(
            f"edge.s{i} = cur.c{i}" for i in range(arity)
        )
        select_cur = ", ".join(f"cur.c{i}" for i in range(arity))
        select_targets = ", ".join(f"edge.t{i}" for i in range(arity))
        self._step_sql = (
            f"SELECT {cols} FROM cur "
            f"UNION SELECT {cols} FROM base "
            f"UNION SELECT {select_targets} FROM edge "
            f"JOIN cur ON {join}"
        )
        self._select_cur = select_cur
        self._conn.commit()

    def step(self, current: frozenset) -> frozenset:
        """One LFP stage: ``current ∪ base ∪ edge(current)``.

        Matches the interpreted ``raw_step`` of a linear LFP body
        exactly (members kept, new tuples from the base piece or one
        edge application), so the shared driver sees identical stage
        sets.
        """
        cursor = self._conn.cursor()
        cursor.execute("DELETE FROM cur")
        marks = ", ".join("?" * self.arity)
        cursor.executemany(
            f"INSERT INTO cur VALUES ({marks})", list(current)
        )
        rows = cursor.execute(self._step_sql).fetchall()
        return frozenset(tuple(row) for row in rows)

    def recursive_cte_sql(self) -> str:
        """The whole induction as one ``WITH RECURSIVE`` query."""
        arity = self.arity
        cols = ", ".join(_columns("c", arity))
        targets = ", ".join(f"edge.t{i}" for i in range(arity))
        join = " AND ".join(f"edge.s{i} = fix.c{i}" for i in range(arity))
        return (
            f"WITH RECURSIVE fix({cols}) AS (\n"
            f"    SELECT {cols} FROM base\n"
            f"    UNION\n"
            f"    SELECT {targets} FROM edge JOIN fix ON {join}\n"
            f")\n"
            f"SELECT {cols} FROM fix"
        )

    def run_recursive_cte(self) -> frozenset:
        """Evaluate :meth:`recursive_cte_sql`; the LFP's final set."""
        rows = self._conn.execute(self.recursive_cte_sql()).fetchall()
        return frozenset(tuple(row) for row in rows)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SQLiteGroundFixpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
