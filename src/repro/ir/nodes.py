"""Relational-algebra IR for compiled fixpoint evaluation.

A plan is a tree of small node objects describing, once, the relational
computation a datalog rule (or a semi-naive stage combiner) performs —
instead of re-walking the rule AST and re-deciding what to join at every
stage.  The executor (:mod:`repro.ir.executor`) evaluates a plan against
an :class:`ExecutionContext` holding the current IDB accumulators and
last-stage deltas; the kernels (:mod:`repro.ir.kernels`) supply the bulk
set operations with memoised decision procedures.

Node glossary (see also ``docs/PERFORMANCE.md``):

========== ===========================================================
node       meaning
========== ===========================================================
Scan       read a relation from the context (IDB / delta / fresh)
Const      a relation materialised at compile time (EDB pieces,
           rule constraints, complements of already-fixed strata)
Rename     positional schema rename (``rename_to``)
Widen      cylindrification: reinterpret the formula over a larger
           schema (``ConstraintRelation.make(schema, formula)``)
Join       n-ary intersection over one schema (pruned DNF product)
Union      n-ary union over one schema (pruned disjunct merge)
Diff       left minus right (pruned product with the complement)
Complement complement of the child (pruned negation or cell
           enumeration over the child's own atom arrangement)
Project    existential projection of every schema variable not kept
Guard      evaluate the child only when the named delta is non-empty
Simplify   canonical minimised representation (``simplify()``)
========== ===========================================================

Every constructor records its children; :func:`walk` and
:meth:`IRNode.describe` drive the ``repro explain --datalog`` rendering.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.constraints.relation import ConstraintRelation


class IRNode:
    """Base class: every node knows its operator name and children."""

    op: str = "node"
    children: tuple["IRNode", ...] = ()

    def describe(self) -> str:
        """One-line label for plan rendering."""
        return self.op

    def __str__(self) -> str:
        return self.describe()


class Scan(IRNode):
    """Read a named relation from the execution context.

    ``space`` selects the binding: ``"idb"`` (accumulated relation),
    ``"delta"`` (last stage's delta) or ``"fresh"`` (this stage's newly
    derived delta, used by the accumulate combiner).
    """

    op = "scan"

    def __init__(self, space: str, name: str) -> None:
        if space not in ("idb", "delta", "fresh"):
            raise ValueError(f"unknown scan space {space!r}")
        self.space = space
        self.name = name

    def describe(self) -> str:
        return f"scan {self.space}.{self.name}"


class Const(IRNode):
    """A relation fixed at compile time (hoisted out of the stage loop)."""

    op = "const"

    def __init__(self, relation: ConstraintRelation, note: str = "") -> None:
        self.relation = relation
        self.note = note

    def describe(self) -> str:
        suffix = f" [{self.note}]" if self.note else ""
        return f"const({len(self.relation.variables)}-ary){suffix}"


class Rename(IRNode):
    """Positional rename of the child's schema."""

    op = "rename"

    def __init__(self, child: IRNode, schema: Sequence[str]) -> None:
        self.children = (child,)
        self.schema = tuple(schema)

    def describe(self) -> str:
        return f"rename → ({', '.join(self.schema)})"


class Widen(IRNode):
    """Cylindrify the child relation to a larger schema."""

    op = "widen"

    def __init__(self, child: IRNode, schema: Sequence[str]) -> None:
        self.children = (child,)
        self.schema = tuple(schema)

    def describe(self) -> str:
        return f"widen → ({', '.join(self.schema)})"


class Join(IRNode):
    """N-ary intersection over one shared schema."""

    op = "join"

    def __init__(self, children: Sequence[IRNode]) -> None:
        self.children = tuple(children)

    def describe(self) -> str:
        return f"join ×{len(self.children)}"


class Union(IRNode):
    """N-ary union over one shared schema; guard-skipped children are
    dropped, and an all-skipped union evaluates to *no derivation*."""

    op = "union"

    def __init__(self, children: Sequence[IRNode]) -> None:
        self.children = tuple(children)

    def describe(self) -> str:
        return f"union ∪{len(self.children)}"


class Diff(IRNode):
    """Left minus right (intersection with the right's complement)."""

    op = "diff"

    def __init__(self, left: IRNode, right: IRNode) -> None:
        self.children = (left, right)


class Complement(IRNode):
    """Complement of the child relation."""

    op = "complement"

    def __init__(self, child: IRNode) -> None:
        self.children = (child,)


class Project(IRNode):
    """Project out every schema variable not in ``keep`` (schema order)."""

    op = "project"

    def __init__(self, child: IRNode, keep: Sequence[str]) -> None:
        self.children = (child,)
        self.keep = tuple(keep)

    def describe(self) -> str:
        return f"project ∃ → ({', '.join(self.keep)})"


class Guard(IRNode):
    """Evaluate the child only when ``delta[delta_pred]`` is non-empty.

    This is the IR form of the semi-naive rule ``if body_delta.is_empty():
    continue`` — a skipped guard yields no derivation at all rather than
    an empty relation, so unions over guards match the interpreted
    engine's ``derived`` list exactly.
    """

    op = "guard"

    def __init__(self, child: IRNode, delta_pred: str) -> None:
        self.children = (child,)
        self.delta_pred = delta_pred

    def describe(self) -> str:
        return f"guard Δ{self.delta_pred}"


class Simplify(IRNode):
    """Canonical minimised representation of the child."""

    op = "simplify"

    def __init__(self, child: IRNode) -> None:
        self.children = (child,)


def walk(node: IRNode) -> Iterator[IRNode]:
    """Pre-order traversal of a plan tree."""
    yield node
    for child in node.children:
        yield from walk(child)


def render(node: IRNode, indent: int = 0) -> str:
    """Plain-text plan tree (used by tests and docs examples)."""
    lines = ["  " * indent + node.describe()]
    for child in node.children:
        lines.append(render(child, indent + 1))
    return "\n".join(lines)
