"""Relational-algebra IR and compiled executors for fixpoint evaluation.

The package splits into:

* :mod:`repro.ir.nodes` — the plan node vocabulary (scan / const /
  rename / widen / join / union / diff / complement / project / guard /
  simplify);
* :mod:`repro.ir.kernels` — memoised decision procedures and bulk
  relation operations (byte-identical to the interpreted algebra by
  construction, see the module docstring);
* :mod:`repro.ir.executor` — plan evaluation with optional per-node
  cost profiling;
* :mod:`repro.ir.ground` — compilation of ground (finite, region-sort)
  RegLFP stage formulas to finite relational plans;
* :mod:`repro.ir.sqlite` — SQL lowering of ground plans (per-stage
  evaluation over temporary tables, plus a recursive-CTE emitter for
  out-of-core least fixpoints).

The executor is selected via ``EngineConfig(executor=...)`` /
``REPRO_EXECUTOR``; the interpreted path remains the oracle the
equivalence suite checks against.
"""

from repro.ir import nodes
from repro.ir.executor import ExecutionContext, execute
from repro.ir.kernels import KernelCache

__all__ = ["nodes", "ExecutionContext", "execute", "KernelCache"]
