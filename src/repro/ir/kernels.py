"""Bulk evaluation kernels with memoised decision procedures.

The compiled executor's speed does **not** come from different algebra —
it runs exactly the pruned-DNF control flow of
:mod:`repro.constraints.simplify` (threaded in via the ``feasibility`` /
``reduce_disjunct`` / ``subsumes`` / ``enumerate_cells`` hooks those
functions expose), which is what makes its output byte-identical to the
interpreted engine by construction.  It comes from *not re-deciding*:

* **Feasibility memo** — semi-naive stages re-prune the accumulated
  relation and re-product it against mostly-unchanged complements, so
  the same conjunctions are LP-checked again and again.  Feasibility is
  a pure function of the atoms, so a memo answers repeats in a dict
  lookup; keys are atom *identity* tuples (the fixpoint loop re-presents
  the same atom objects every stage, and value-hashing ``Fraction``
  tuples is itself a hot spot), which can only miss more than value
  keys, never answer wrong.
* **Interval prefilter** — before paying for an LP call, a sound
  one-pass interval check over exact ``Fraction`` bounds decides the
  easy cases in both directions: relaxed-bound interval emptiness
  rejects obviously empty conjunctions (the far-apart interval joins
  that dominate reachability workloads), and an exact midpoint witness
  certifies obviously satisfiable ones.  Both verdicts are proofs, so
  they always agree with the LP; everything undecided falls through.
* **Reduction/subsumption memos** — ``remove_redundant_atoms`` +
  ``merge_equality_pairs`` is a pure function of a disjunct, and
  ``_subsumed`` of a disjunct pair; accumulators re-minimise mostly old
  disjuncts every stage.
* **Complement memo + incremental cell index** — the complement of a
  relation is cached on the relation object, and large complements that
  enumerate arrangement cells reuse the DFS prefix shared with earlier
  stages: when the sorted plane list of stage *s+1* extends stage *s*'s,
  each old leaf is extended in place via the seeded-prefix mode of
  :func:`repro.arrangement.builder.enumerate_sign_vectors`, which yields
  exactly the contiguous slice of the full enumeration below that
  prefix.

Everything here is scoped to :mod:`repro.ir` on purpose: the interpreted
engine must keep paying the baseline cost so that it remains an honest
oracle (and an honest benchmark baseline).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.arrangement.faces import sign_vector_constraints
from repro.constraints.atoms import Op, atom_from_constraint
from repro.constraints.normal_forms import Disjunct, dnf_to_formula
from repro.constraints.relation import (
    ConstraintRelation,
    relation_from_disjuncts,
)
from repro.constraints.simplify import (
    cell_complement,
    disjunct_feasible,
    dnf_product,
    merge_equality_pairs,
    minimise_dnf,
    negate_dnf,
    prune_disjuncts,
    remove_redundant_atoms,
    _subsumed,
)
from repro.obs.metrics import get_registry

_LE_OPS = (Op.LE, Op.LT, Op.EQ)
_GE_OPS = (Op.GE, Op.GT, Op.EQ)
_ZERO = Fraction(0)


def _interval_verdict(disjunct: Disjunct) -> bool | None:
    """Sound two-sided feasibility prefilter, ``None`` when undecided.

    Collects a closed interval per variable from the single-variable
    atoms (strict bounds relaxed to non-strict, so the tracked region
    over-approximates the disjunct), then checks every multi-variable
    atom's term interval against those bounds.  ``False`` is returned
    only when the over-approximation is empty — the exact LP verdict is
    then necessarily ``False`` as well.  ``True`` is returned only when
    a concrete candidate point (interval midpoints) *exactly* satisfies
    every original atom, strictness included — a genuine witness, so the
    LP verdict is necessarily ``True``.  Everything else is ``None`` and
    falls through to the LP; the pass is deliberately a single O(atoms)
    sweep, meant to skip LP calls, not replace them.
    """
    lows: dict[str, Fraction] = {}
    highs: dict[str, Fraction] = {}
    multi: list = []
    variables: set[str] = set()
    for atom in disjunct:
        term = atom.term
        coeffs = term.coefficients
        op = atom.op
        if not coeffs:
            # Constant atom: relax strictness and test directly.
            constant = term.constant
            if op in _LE_OPS and constant > 0:
                return False
            if op in _GE_OPS and constant < 0:
                return False
            continue
        if len(coeffs) > 1:
            multi.append(atom)
            for name, __ in coeffs:
                variables.add(name)
            continue
        # coeff·v + constant OP 0  ⇒  a direct bound on v.
        name, coeff = coeffs[0]
        variables.add(name)
        constant = term.constant
        if coeff == 1:
            bound = -constant
        elif coeff == -1:
            bound = constant
        else:
            bound = -constant / coeff
        upper = (op in _LE_OPS) == (coeff > 0)
        if op is Op.EQ:
            current = lows.get(name)
            if current is None or bound > current:
                lows[name] = bound
            current = highs.get(name)
            if current is None or bound < current:
                highs[name] = bound
        elif upper:
            current = highs.get(name)
            if current is None or bound < current:
                highs[name] = bound
        else:
            current = lows.get(name)
            if current is None or bound > current:
                lows[name] = bound
    for name, low in lows.items():
        high = highs.get(name)
        if high is not None and low > high:
            return False
    for atom in multi:
        term = atom.term
        op = atom.op
        term_lo: Fraction | None = term.constant
        term_hi: Fraction | None = term.constant
        for name, coeff in term.coefficients:
            if coeff > 0:
                piece_lo, piece_hi = lows.get(name), highs.get(name)
            else:
                piece_lo, piece_hi = highs.get(name), lows.get(name)
            if term_lo is not None:
                if piece_lo is None:
                    term_lo = None
                elif coeff == 1:
                    term_lo += piece_lo
                elif coeff == -1:
                    term_lo -= piece_lo
                else:
                    term_lo += coeff * piece_lo
            if term_hi is not None:
                if piece_hi is None:
                    term_hi = None
                elif coeff == 1:
                    term_hi += piece_hi
                elif coeff == -1:
                    term_hi -= piece_hi
                else:
                    term_hi += coeff * piece_hi
            if term_lo is None and term_hi is None:
                break
        if op in _LE_OPS and term_lo is not None and term_lo > 0:
            return False
        if op in _GE_OPS and term_hi is not None and term_hi < 0:
            return False
    # Feasibility certificate: interval midpoints as a candidate point,
    # checked exactly (strictness included) against every atom.
    point: dict[str, Fraction] = {}
    for name in variables:
        low = lows.get(name)
        high = highs.get(name)
        if low is not None:
            point[name] = low if high is None else (low + high) / 2
        elif high is not None:
            point[name] = high
        else:
            point[name] = _ZERO
    for atom in disjunct:
        term = atom.term
        value = term.constant
        for name, coeff in term.coefficients:
            value += coeff * point[name]
        if not atom.op.holds(value):
            return None
    return True


class _CellEntry:
    """One cached arrangement enumeration: planes, leaves, face atoms.

    ``faces`` memoises whole rendered faces keyed by ``(signs, order)``;
    ``rows`` memoises single row atoms keyed by ``(plane_index, sign,
    order)``.  Indexes are stable under plane-list extension (new planes
    append), so ``rows`` survives across stages while ``faces`` — whose
    sign vectors lengthen — is reset.  Both avoid hashing hyperplanes,
    whose ``Fraction`` components make value hashing expensive.

    ``boxes`` holds, aligned with ``leaves``, a closed interval box per
    cell (from its single-variable sign rows, strictness relaxed) that
    over-approximates the cell; ``infos`` caches each plane's
    single-variable bound decomposition.  Together they let an extension
    prove most cells lie strictly on one side of a new plane, skipping
    the seeded DFS — and its on-plane LP — for every uncut cell.
    """

    __slots__ = ("planes", "leaves", "faces", "rows", "boxes", "infos")

    def __init__(self, planes, leaves, boxes, infos):
        self.planes = planes
        self.leaves = leaves
        self.faces: dict = {}
        self.rows: dict = {}
        self.boxes = boxes
        self.infos = infos


def _plane_bound_info(plane):
    """``(var_index, bound, positive)`` for a single-variable plane.

    ``None`` for planes over several variables; those contribute nothing
    to interval boxes (the box stays a sound over-approximation).
    """
    index = None
    coeff = None
    for position, value in enumerate(plane.normal):
        if value:
            if index is not None:
                return None
            index, coeff = position, value
    if index is None:
        return None
    return (index, plane.offset / coeff, coeff > 0)


def _box_narrow(box: dict, info, sign: int) -> None:
    """Narrow ``box`` in place with one relaxed sign row."""
    if info is None:
        return
    index, bound, positive = info
    low, high = box.get(index, (None, None))
    if sign == 0:
        low = high = bound
    elif (sign > 0) == positive:
        if low is None or bound > low:
            low = bound
    else:
        if high is None or bound < high:
            high = bound
    box[index] = (low, high)


def _certain_side(plane, box: dict):
    """The sign of ``plane`` on every point of ``box``, else ``None``.

    Evaluates the interval of ``normal·x - offset`` over the closed box;
    a strictly negative (positive) interval proves the whole cell sits
    strictly below (above) the plane.  Because the box relaxes strict
    cell bounds, a ``None`` here merely falls back to the exact DFS —
    never an unsound answer.
    """
    low = high = -plane.offset
    for index, coeff in enumerate(plane.normal):
        if not coeff:
            continue
        box_low, box_high = box.get(index, (None, None))
        if coeff > 0:
            piece_low, piece_high = box_low, box_high
        else:
            piece_low, piece_high = box_high, box_low
        if low is not None:
            low = None if piece_low is None else low + coeff * piece_low
        if high is not None:
            high = None if piece_high is None else high + coeff * piece_high
        if low is None and high is None:
            return None
    if high is not None and high < 0:
        return -1
    if low is not None and low > 0:
        return 1
    return None


def _compile_disjunct(disjunct: Disjunct, order: tuple[str, ...]):
    """A fast ``witness -> bool`` evaluator for one disjunct.

    Pre-resolves every atom's variable names to witness-tuple indexes so
    the per-cell truth test is pure ``Fraction`` arithmetic, with no
    assignment dict and no attribute walks.  Exactly equivalent to
    ``all(atom.holds_at(dict(zip(order, witness))) for atom in disjunct)``
    — ``Atom.holds_at`` is ``op.holds(term.evaluate(assignment))`` and
    ``evaluate`` is the same coefficient dot product.
    """
    index = {name: position for position, name in enumerate(order)}
    checks = []
    for atom in disjunct:
        coeffs = tuple(
            (index[name], coeff)
            for name, coeff in atom.term.coefficients
        )
        checks.append((coeffs, atom.term.constant, atom.op.holds))
    def holds(witness) -> bool:
        for coeffs, constant, op_holds in checks:
            value = constant
            for position, coeff in coeffs:
                value += coeff * witness[position]
            if not op_holds(value):
                return False
        return True
    return holds


class KernelCache:
    """Memoised decision procedures + bulk relation operations.

    One instance lives for the duration of one compiled fixpoint run
    (datalog program evaluation or RegLFP induction); all cross-stage
    reuse happens through it, never through module-global state, so the
    interpreted baseline and benchmark fairness are unaffected.
    """

    def __init__(self) -> None:
        registry = get_registry()
        self._c_feas_calls = registry.counter("ir.feasibility_calls")
        self._c_feas_hits = registry.counter("ir.feasibility_memo_hits")
        self._c_feas_prefilter = registry.counter(
            "ir.feasibility_prefilter_hits"
        )
        self._c_reduce_hits = registry.counter("ir.reduce_memo_hits")
        self._c_subsume_hits = registry.counter("ir.subsume_memo_hits")
        self._c_complement_hits = registry.counter(
            "ir.complement_memo_hits"
        )
        self._c_cells_extended = registry.counter("ir.cell_index_extensions")
        self._c_cells_full = registry.counter("ir.cell_index_full_builds")
        # Decision memos are keyed by tuples of atom *identities*, not
        # values: the fixpoint loop re-presents the same atom objects
        # stage after stage (accumulator disjuncts, memoised reductions,
        # memoised face atoms), and hashing atom values walks tuples of
        # ``Fraction``s — measurably the dominant memo cost.  Identity
        # keys can only *miss* more than value keys (equal atoms with
        # different ids recompute and still agree), never answer wrong.
        # Every memo value pins the keyed objects, keeping ids stable.
        self._feasible: dict[tuple, tuple] = {}
        self._reduced: dict[tuple, tuple] = {}
        self._subsume: dict[tuple, tuple] = {}
        # dimension -> list of _CellEntry (sorted planes, leaves, faces).
        self._cells: dict[int, list[_CellEntry]] = {}
        # id-keyed disjunct -> compiled witness evaluator.
        self._holds_fns: dict = {}
        # Active-entry protocol: ``enumerate_cells`` records the entry it
        # returned (and the caller's plane-list object), and the
        # ``face_atoms`` hook of the immediately following loop resolves
        # its memo through it.  ``cell_complement`` fully materialises
        # the enumeration before rendering faces, and a KernelCache is
        # single-threaded per run, so the pairing cannot interleave.
        self._active_entry: _CellEntry | None = None
        self._active_caller = None

    # ------------------------------------------------------------------
    # Decision procedures (hooks threaded into repro.constraints.simplify)
    # ------------------------------------------------------------------
    def feasibility(self, disjunct: Disjunct) -> bool:
        key = tuple(map(id, disjunct))
        cached = self._feasible.get(key)
        if cached is not None:
            self._c_feas_hits.inc()
            return cached[1]
        self._c_feas_calls.inc()
        verdict = _interval_verdict(disjunct)
        if verdict is None:
            verdict = disjunct_feasible(disjunct)
        else:
            self._c_feas_prefilter.inc()
        self._feasible[key] = (disjunct, verdict)
        return verdict

    def reduce_disjunct(self, disjunct: Disjunct) -> Disjunct:
        key = tuple(map(id, disjunct))
        cached = self._reduced.get(key)
        if cached is not None:
            self._c_reduce_hits.inc()
            return cached[1]
        reduced = merge_equality_pairs(
            remove_redundant_atoms(disjunct, feasibility=self.feasibility)
        )
        self._reduced[key] = (disjunct, reduced)
        return reduced

    def subsumes(self, smaller: Disjunct, larger: Disjunct) -> bool:
        key = (tuple(map(id, smaller)), tuple(map(id, larger)))
        cached = self._subsume.get(key)
        if cached is not None:
            self._c_subsume_hits.inc()
            return cached[2]
        verdict = _subsumed(smaller, larger, feasibility=self.feasibility)
        self._subsume[key] = (smaller, larger, verdict)
        return verdict

    def enumerate_cells(self, planes, dimension: int):
        """Drop-in for ``enumerate_sign_vectors(planes, k)`` with reuse.

        Returns the exact (signs, witness) sequence of the full
        enumeration.  When the sorted plane list extends a previously
        enumerated one — the common case for fixpoint accumulators,
        whose new atoms sort after the old — each cached leaf is
        extended through the new planes via the seeded-prefix DFS
        instead of re-walking the shared prefix levels.
        """
        from repro.arrangement.builder import enumerate_sign_vectors

        caller_planes = planes
        planes = list(planes)
        entries = self._cells.setdefault(dimension, [])
        self._active_caller = caller_planes
        best = None
        for index, entry in enumerate(entries):
            old_planes = entry.planes
            if old_planes == planes:
                self._active_entry = entry
                return entry.leaves
            if (
                len(old_planes) < len(planes)
                and planes[: len(old_planes)] == old_planes
                and (
                    best is None
                    or len(old_planes) > len(entries[best].planes)
                )
            ):
                best = index
        if best is not None:
            entry = entries[best]
            leaves = entry.leaves
            boxes = entry.boxes
            infos = entry.infos
            # One plane at a time: a cell whose interval box proves a
            # strict side is extended verbatim (its witness stays valid
            # and it is not cut); only cells the box cannot place run
            # the seeded DFS — and pay its on-plane LP.  Processing
            # leaves in order, children per leaf in (-1, 0, 1) order,
            # reproduces the full enumeration's DFS order level by
            # level.
            for level in range(len(entry.planes), len(planes)):
                plane = planes[level]
                info = _plane_bound_info(plane)
                infos.append(info)
                sub_planes = planes[: level + 1]
                new_leaves = []
                new_boxes = []
                for (signs, witness), box in zip(leaves, boxes):
                    side = _certain_side(plane, box)
                    if side is not None:
                        child_box = dict(box)
                        _box_narrow(child_box, info, side)
                        new_leaves.append((signs + (side,), witness))
                        new_boxes.append(child_box)
                        continue
                    for child in enumerate_sign_vectors(
                        sub_planes,
                        dimension,
                        prefix=signs,
                        prefix_witness=witness,
                    ):
                        child_box = dict(box)
                        _box_narrow(child_box, info, child[0][-1])
                        new_leaves.append(child)
                        new_boxes.append(child_box)
                leaves, boxes = new_leaves, new_boxes
            self._c_cells_extended.inc()
            # Extend in place.  The whole-face memo is stale (its sign
            # vectors are shorter than the new plane list); the row memo
            # survives because plane indexes are stable under append.
            entry.planes = planes
            entry.leaves = leaves
            entry.boxes = boxes
            entry.faces = {}
            self._active_entry = entry
            return leaves
        leaves = list(enumerate_sign_vectors(planes, dimension))
        self._c_cells_full.inc()
        infos = [_plane_bound_info(plane) for plane in planes]
        boxes = []
        for signs, __ in leaves:
            box: dict = {}
            for info, sign in zip(infos, signs):
                _box_narrow(box, info, sign)
            boxes.append(box)
        entry = _CellEntry(planes, leaves, boxes, infos)
        entries.append(entry)
        if len(entries) > 8:
            entries.pop(0)
        self._active_entry = entry
        return leaves

    def disjunct_holds(self, disjunct, order, witness) -> bool:
        """Drop-in for the per-cell truth test of ``cell_complement``.

        Compiles each (disjunct, order) pair once to an index-resolved
        evaluator; repeated stages test the same accumulated disjuncts
        against hundreds of cells, so the compilation amortises within a
        single complement call and is free on every later one.
        """
        fns = self._holds_fns
        key = (tuple(map(id, disjunct)), order)
        cached = fns.get(key)
        if cached is None:
            cached = (disjunct, _compile_disjunct(disjunct, order))
            fns[key] = cached
        return cached[1](witness)

    def face_atoms(self, planes, signs, order):
        """Drop-in for the face rendering of ``cell_complement``.

        Two memo layers, both pure in their keys.  Whole faces are
        cached per arrangement entry keyed by ``(signs, order)`` —
        repeated complements over the same plane list re-emit identical
        faces.  Individual rows are cached by ``(plane, sign, order)``:
        ``sign_vector_constraints`` renders each plane independently, so
        a row atom survives plane-list growth even though the full sign
        vectors do not, and each stage only renders atoms for its *new*
        planes.
        """
        entry = self._active_entry
        if entry is None or not (
            planes is self._active_caller or entry.planes == planes
        ):
            return tuple(
                atom_from_constraint(row, order)
                for row in sign_vector_constraints(planes, signs)
            )
        face = entry.faces.get((signs, order))
        if face is not None:
            return face
        row_memo = entry.rows
        atoms = []
        for index, sign in enumerate(signs):
            key = (index, sign, order)
            atom = row_memo.get(key)
            if atom is None:
                atom = atom_from_constraint(
                    sign_vector_constraints(
                        [entry.planes[index]], (sign,)
                    )[0],
                    order,
                )
                row_memo[key] = atom
            atoms.append(atom)
        face = tuple(atoms)
        entry.faces[(signs, order)] = face
        return face

    # ------------------------------------------------------------------
    # Bulk relation operations (mirror repro.constraints.relation)
    # ------------------------------------------------------------------
    def union(
        self,
        schema: tuple[str, ...],
        relations: Sequence[ConstraintRelation],
    ) -> ConstraintRelation:
        """``union_relations`` with memoised feasibility."""
        collected: list[Disjunct] = []
        for relation in relations:
            collected.extend(relation.disjuncts())
        return relation_from_disjuncts(
            schema, prune_disjuncts(collected, feasibility=self.feasibility)
        )

    def join(
        self,
        schema: tuple[str, ...],
        relations: Sequence[ConstraintRelation],
    ) -> ConstraintRelation:
        """``intersect_relations`` with memoised feasibility."""
        factors = [relation.disjuncts() for relation in relations]
        return relation_from_disjuncts(
            schema, dnf_product(factors, feasibility=self.feasibility)
        )

    def complement(
        self, relation: ConstraintRelation
    ) -> ConstraintRelation:
        """``relation.complement()`` memoised on the relation object."""
        cached = relation._cache.get("ir_complement")
        if cached is not None:
            self._c_complement_hits.inc()
            return cached
        disjuncts = relation.disjuncts()
        if len(disjuncts) <= ConstraintRelation._COMPLEMENT_PRODUCT_LIMIT:
            negated = negate_dnf(disjuncts, feasibility=self.feasibility)
        else:
            negated = cell_complement(
                disjuncts,
                relation.variables,
                enumerate_cells=self.enumerate_cells,
                disjunct_holds=self.disjunct_holds,
                face_atoms=self.face_atoms,
            )
        result = relation_from_disjuncts(relation.variables, negated)
        relation._cache["ir_complement"] = result
        return result

    def difference(
        self, left: ConstraintRelation, right: ConstraintRelation
    ) -> ConstraintRelation:
        """``left.difference(right)`` = join with the memoised complement."""
        return self.join((*left.variables,), [left, self.complement(right)])

    def minimise(self, relation: ConstraintRelation) -> ConstraintRelation:
        """``relation.simplify()`` with every decision memoised.

        Honours — and populates — the same ``"simplified"`` cache slot
        as the interpreted path, so untouched accumulators are never
        re-minimised by either executor.
        """
        cached = relation._cache.get("simplified")
        if cached is not None:
            return cached
        result = ConstraintRelation.make(
            relation.variables,
            dnf_to_formula(
                minimise_dnf(
                    relation.disjuncts(),
                    feasibility=self.feasibility,
                    reduce_disjunct=self.reduce_disjunct,
                    subsumes=self.subsumes,
                )
            ),
        )
        result._cache["simplified"] = result
        relation._cache["simplified"] = result
        return result
