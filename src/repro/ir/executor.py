"""Evaluation of relational-algebra IR plans.

The executor walks a plan tree bottom-up, producing
:class:`ConstraintRelation` values through the memoised kernels.  Two
conventions keep it byte-identical to the interpreted engine:

* A :class:`~repro.ir.nodes.Guard` whose delta is empty evaluates to
  ``None`` — *no derivation*, not an empty relation — and ``None``
  propagates up through Union/Diff/Simplify.  The stage driver maps a
  ``None`` stage result to ``ConstraintRelation.empty(schema)``, exactly
  mirroring the interpreted ``if derived: ... else: empty`` branch.
* Every relation-producing step calls the same underlying algebra
  (rename/widen/project reuse :class:`ConstraintRelation` methods
  directly; join/union/diff/simplify go through the kernels, which
  thread memoised decisions into the *same* simplify-module control
  flow).

When a :class:`repro.explain.NodeProfiler` is supplied, every node
evaluation is bracketed with ``enter``/``exit`` keyed on the node
object, so ``repro explain --datalog --analyze`` attributes wall time
and counter deltas to exact plan nodes with the PR-5 "self costs sum to
totals" invariant intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.constraints.relation import ConstraintRelation
from repro.errors import EvaluationError
from repro.ir.kernels import KernelCache
from repro.ir import nodes as ir


@dataclass
class ExecutionContext:
    """Relation bindings a plan reads via :class:`~repro.ir.nodes.Scan`."""

    idb: Mapping[str, ConstraintRelation] = field(default_factory=dict)
    delta: Mapping[str, ConstraintRelation] = field(default_factory=dict)
    fresh: Mapping[str, ConstraintRelation] = field(default_factory=dict)


def execute(
    node: ir.IRNode,
    context: ExecutionContext,
    kernels: KernelCache,
    profiler=None,
) -> ConstraintRelation | None:
    """Evaluate a plan; ``None`` means every derivation was guard-skipped."""
    if profiler is None:
        return _execute(node, context, kernels, None)
    profiler.enter(node)
    try:
        return _execute(node, context, kernels, profiler)
    finally:
        profiler.exit(node)


def _recurse(node, context, kernels, profiler):
    if profiler is None:
        return _execute(node, context, kernels, None)
    profiler.enter(node)
    try:
        return _execute(node, context, kernels, profiler)
    finally:
        profiler.exit(node)


def _execute(
    node: ir.IRNode,
    context: ExecutionContext,
    kernels: KernelCache,
    profiler,
) -> ConstraintRelation | None:
    if isinstance(node, ir.Const):
        return node.relation
    if isinstance(node, ir.Scan):
        space = getattr(context, node.space)
        try:
            return space[node.name]
        except KeyError:
            raise EvaluationError(
                f"unbound {node.space} relation {node.name!r}"
            ) from None
    if isinstance(node, ir.Guard):
        if context.delta[node.delta_pred].is_empty():
            return None
        return _recurse(node.children[0], context, kernels, profiler)
    if isinstance(node, ir.Rename):
        child = _recurse(node.children[0], context, kernels, profiler)
        return None if child is None else child.rename_to(node.schema)
    if isinstance(node, ir.Widen):
        child = _recurse(node.children[0], context, kernels, profiler)
        if child is None:
            return None
        return ConstraintRelation.make(node.schema, child.formula)
    if isinstance(node, ir.Join):
        parts = [
            _recurse(child, context, kernels, profiler)
            for child in node.children
        ]
        if any(part is None for part in parts):
            return None
        return kernels.join(parts[0].variables, parts)
    if isinstance(node, ir.Union):
        parts = [
            _recurse(child, context, kernels, profiler)
            for child in node.children
        ]
        live = [part for part in parts if part is not None]
        if not live:
            return None
        return kernels.union(live[0].variables, live)
    if isinstance(node, ir.Diff):
        left = _recurse(node.children[0], context, kernels, profiler)
        if left is None:
            return None
        right = _recurse(node.children[1], context, kernels, profiler)
        return kernels.difference(left, right)
    if isinstance(node, ir.Complement):
        child = _recurse(node.children[0], context, kernels, profiler)
        return None if child is None else kernels.complement(child)
    if isinstance(node, ir.Project):
        child = _recurse(node.children[0], context, kernels, profiler)
        if child is None:
            return None
        result = child
        for variable in child.variables:
            if variable not in node.keep:
                result = result.project_out(variable)
        return result
    if isinstance(node, ir.Simplify):
        child = _recurse(node.children[0], context, kernels, profiler)
        return None if child is None else kernels.minimise(child)
    raise EvaluationError(f"unknown IR node {type(node).__name__}")
