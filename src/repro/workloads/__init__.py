"""Seeded synthetic workload generators for tests and benchmarks."""

from repro.workloads.generators import (
    chain_of_boxes,
    convex_polygon,
    cross_polytope,
    disconnected_blobs,
    grid_relation,
    interval_chain,
    nested_boxes,
    random_halfplanes,
    random_hyperplanes,
    river_scenario,
    stripes,
)

__all__ = [
    "chain_of_boxes",
    "convex_polygon",
    "cross_polytope",
    "disconnected_blobs",
    "grid_relation",
    "interval_chain",
    "nested_boxes",
    "random_halfplanes",
    "random_hyperplanes",
    "river_scenario",
    "stripes",
]
