"""Synthetic linear constraint databases.

Every generator is deterministic given its parameters (and seed, where
randomness is involved), builds its relation from integer-coefficient
atoms, and returns either a :class:`ConstraintRelation` or a full
:class:`ConstraintDatabase`.  These families drive the scaling
experiments: their region counts and connectivity structure are known in
closed form, so measured behaviour can be checked against ground truth.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.errors import WorkloadError
from repro.geometry.hyperplane import Hyperplane
from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.queries.river import RiverMap, build_river_database

F = Fraction


def interval_chain(
    segments: int, gap: bool = False
) -> ConstraintDatabase:
    """A 1-D chain of ``segments`` unit intervals.

    With ``gap=False`` consecutive intervals share endpoints (connected);
    with ``gap=True`` every interval is separated (disconnected for
    segments > 1).  Regions grow linearly with ``segments``.
    """
    if segments < 1:
        raise WorkloadError("need at least one segment")
    parts = []
    for i in range(segments):
        left = 2 * i if gap else i
        parts.append(f"({left} <= x0 & x0 <= {left + 1})")
    return ConstraintDatabase.from_formula(
        parse_formula(" | ".join(parts)), 1
    )


def stripes(count: int, width: int = 1, spacing: int = 2) -> ConstraintDatabase:
    """``count`` parallel vertical stripes in the plane (disconnected)."""
    if count < 1:
        raise WorkloadError("need at least one stripe")
    parts = [
        f"({i * spacing} <= x0 & x0 <= {i * spacing + width})"
        for i in range(count)
    ]
    return ConstraintDatabase.from_formula(
        parse_formula(" | ".join(parts)), 2
    )


def grid_relation(lines: int) -> ConstraintDatabase:
    """The union of ``lines`` horizontal and ``lines`` vertical lines.

    Connected for lines >= 1; its arrangement has Θ(lines²) faces — the
    workhorse for the Theorem 3.1 scaling experiment.
    """
    if lines < 1:
        raise WorkloadError("need at least one line")
    parts = [f"(x0 = {i})" for i in range(lines)]
    parts += [f"(x1 = {i})" for i in range(lines)]
    return ConstraintDatabase.from_formula(
        parse_formula(" | ".join(parts)), 2
    )


def chain_of_boxes(count: int, touching: bool = True) -> ConstraintDatabase:
    """``count`` unit boxes in a row, touching at corners or separated."""
    if count < 1:
        raise WorkloadError("need at least one box")
    step = 1 if touching else 2
    parts = [
        f"({i * step} <= x0 & x0 <= {i * step + 1} & "
        "0 <= x1 & x1 <= 1)"
        for i in range(count)
    ]
    return ConstraintDatabase.from_formula(
        parse_formula(" | ".join(parts)), 2
    )


def nested_boxes(depth: int) -> ConstraintDatabase:
    """``depth`` concentric square annuli (box frames), all disconnected."""
    if depth < 1:
        raise WorkloadError("need depth >= 1")
    parts = []
    for i in range(depth):
        outer = 4 * i + 2
        inner = 4 * i
        frame = (
            f"(-{outer} <= x0 & x0 <= {outer} & -{outer} <= x1 & "
            f"x1 <= {outer}"
            + (
                f" & !(-{inner} < x0 & x0 < {inner} & -{inner} < x1 & "
                f"x1 < {inner}))"
                if inner > 0
                else ")"
            )
        )
        parts.append(frame)
    # Annuli are nested, so take symmetric differences by alternation:
    # frame_i minus the interior of frame_{i-1} is already encoded above.
    return ConstraintDatabase.from_formula(
        parse_formula(" | ".join(parts)), 2
    )


def convex_polygon(sides: int) -> ConstraintDatabase:
    """A convex polygon with ``sides`` integer-coefficient edges.

    Vertices lie near a circle of radius ``sides`` (rounded to integers),
    so coordinates stay small; the polygon is connected and bounded.
    """
    import math

    if sides < 3:
        raise WorkloadError("a polygon needs at least 3 sides")
    radius = 4 * sides
    points = []
    for i in range(sides):
        angle = 2 * math.pi * i / sides
        points.append(
            (round(radius * math.cos(angle)), round(radius * math.sin(angle)))
        )
    atoms = []
    for (x1, y1), (x2, y2) in zip(points, points[1:] + points[:1]):
        # Inward halfplane of the directed edge (x1,y1)->(x2,y2) for a
        # counter-clockwise polygon: (x2-x1)(y-y1) - (y2-y1)(x-x1) >= 0.
        a = -(y2 - y1)
        b = x2 - x1
        c = a * x1 + b * y1
        atoms.append(f"({a}*x0 + {b}*x1 >= {c})")
    return ConstraintDatabase.from_formula(
        parse_formula(" & ".join(atoms)), 2
    )


def disconnected_blobs(
    count: int, seed: int = 0
) -> ConstraintDatabase:
    """``count`` random small triangles, pairwise far apart."""
    if count < 1:
        raise WorkloadError("need at least one blob")
    rng = random.Random(seed)
    parts = []
    for i in range(count):
        ox, oy = 10 * i, 10 * (i % 3)
        w = rng.randint(1, 3)
        h = rng.randint(1, 3)
        parts.append(
            f"(x0 >= {ox} & x1 >= {oy} & "
            f"{h}*x0 + {w}*x1 <= {h * ox + w * oy + w * h})"
        )
    return ConstraintDatabase.from_formula(
        parse_formula(" | ".join(parts)), 2
    )


def random_halfplanes(
    count: int, seed: int = 0, coefficient_bound: int = 5
) -> ConstraintRelation:
    """Intersection of ``count`` random halfplanes (a random polyhedron)."""
    rng = random.Random(seed)
    atoms = []
    for __ in range(count):
        while True:
            a = rng.randint(-coefficient_bound, coefficient_bound)
            b = rng.randint(-coefficient_bound, coefficient_bound)
            if (a, b) != (0, 0):
                break
        c = rng.randint(-coefficient_bound, coefficient_bound)
        op = rng.choice(["<=", ">=", "<", ">"])
        atoms.append(f"({a}*x0 + {b}*x1 {op} {c})")
    return ConstraintRelation.make(
        ("x0", "x1"), parse_formula(" & ".join(atoms))
    )


def random_hyperplanes(
    count: int, dimension: int, seed: int = 0, coefficient_bound: int = 4
) -> list[Hyperplane]:
    """``count`` distinct random hyperplanes in ``dimension`` dimensions."""
    rng = random.Random(seed)
    planes: list[Hyperplane] = []
    seen: set[Hyperplane] = set()
    guard = 0
    while len(planes) < count:
        guard += 1
        if guard > 100 * count:
            raise WorkloadError("could not generate enough distinct planes")
        coeffs = [
            rng.randint(-coefficient_bound, coefficient_bound)
            for __ in range(dimension)
        ]
        if all(c == 0 for c in coeffs):
            continue
        offset = rng.randint(-coefficient_bound, coefficient_bound)
        plane = Hyperplane.make(coeffs, offset)
        if plane not in seen:
            seen.add(plane)
            planes.append(plane)
    return planes


def cross_polytope(dimension: int) -> ConstraintDatabase:
    """The d-dimensional cross-polytope {x : Σ|x_i| ≤ 1}.

    Encoded as a single conjunction of 2^d atoms (one per sign
    pattern), so representation size grows exponentially with the
    dimension while the region structure stays highly symmetric —
    a stress test for higher-dimensional arrangements.
    """
    import itertools

    if dimension < 1:
        raise WorkloadError("dimension must be positive")
    atoms = []
    for signs in itertools.product((1, -1), repeat=dimension):
        terms = " + ".join(
            f"{sign}*x{i}" for i, sign in enumerate(signs)
        )
        atoms.append(f"({terms} <= 1)")
    return ConstraintDatabase.from_formula(
        parse_formula(" & ".join(atoms)), dimension
    )


def river_scenario(
    length: int,
    polluted: bool = True,
    reachable: bool = True,
) -> ConstraintDatabase:
    """A Figure-6 style river database.

    ``polluted=True`` places a chem1 zone upstream and a chem2 zone
    downstream; ``reachable=False`` additionally dries up the river
    between the spring and the chem1 zone, so the pollution pattern is
    not reachable from the spring.
    """
    if length < 4:
        raise WorkloadError("river too short for the scenario")
    chem1 = ((F(1), F(2)),) if polluted else ()
    chem2 = ((F(length - 2), F(length - 1)),) if polluted else ()
    gaps = () if reachable else ((F(1, 2), F(3, 4)),)
    return build_river_database(
        RiverMap(
            length=length,
            chem1_zones=chem1,
            chem2_zones=chem2,
            gaps=gaps,
        )
    )
