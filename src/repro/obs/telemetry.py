"""Distribution-aware telemetry: histograms, gauges, labels, SLOs.

:mod:`repro.obs.metrics` gives the engine monotone counters — enough to
know *how many* LP solves a query cost, useless for knowing whether the
p99 request latency just doubled.  This module adds the production
layer on top of the same registry idiom:

* :class:`Histogram` — thread-safe, fixed log-spaced buckets plus an
  exact ``count``/``sum``, with p50/p90/p99 estimation by linear
  interpolation inside the winning bucket (the standard
  ``histogram_quantile`` rule);
* :class:`Gauge` — a thread-safe instantaneous value (in-flight
  requests, queue depths);
* :class:`TelemetryRegistry` — families of histograms/gauges keyed by
  name plus an optional **low-cardinality** label set.  Only the label
  keys in :data:`ALLOWED_LABELS` (``tenant``, ``endpoint``,
  ``executor``, ``lp_mode``) are accepted, and a family folds into its
  unlabeled aggregate series once it holds :data:`MAX_SERIES_PER_NAME`
  distinct label sets — an unbounded tenant id can never explode the
  registry;
* :func:`render_prometheus` — the text exposition format served by
  ``GET /metrics`` and printed by ``repro metrics``;
* :class:`SloTracker` — per-tenant rolling multi-window burn rates
  against a latency/error objective, surfaced in ``/v1/stats``;
* :func:`quantile` — the one nearest-rank quantile implementation
  shared by the load generator and the server benchmarks.

Snapshot/merge mirrors the counter contract: workers ship
:func:`telemetry_snapshot` states home and
:func:`merge_series_state` folds them in additively exactly once
(:func:`repro.obs.metrics.merge_snapshot` routes histogram/gauge
states here automatically).
"""

from __future__ import annotations

import math
import threading
import time as _time
from bisect import bisect_left
from collections import deque
from collections.abc import Mapping, Sequence
from contextlib import contextmanager
from typing import Iterator

#: Label keys a series may carry.  Everything here is low-cardinality by
#: construction (endpoints and modes are finite; tenants are admission-
#: controlled) — anything else is rejected at call time.
ALLOWED_LABELS = frozenset({"tenant", "endpoint", "executor", "lp_mode"})

#: Distinct label sets one family may hold before further label sets
#: fold into the family's unlabeled aggregate series.
MAX_SERIES_PER_NAME = 64

#: Default log-spaced latency buckets, in seconds: 100 µs doubling up to
#: ~14 minutes.  Fixed (not per-series) so states merge bucket-for-bucket.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(1e-4 * 2**i for i in range(24))


def _check_labels(labels: Mapping[str, str] | None) -> tuple[tuple[str, str], ...]:
    """Validate and canonicalise a label mapping to a sorted tuple."""
    if not labels:
        return ()
    bad = set(labels) - ALLOWED_LABELS
    if bad:
        raise ValueError(
            f"disallowed metric label(s) {sorted(bad)}; "
            f"allowed: {sorted(ALLOWED_LABELS)}"
        )
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_suffix(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels)
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of raw samples (``q`` in ``[0, 1]``).

    The single implementation shared by the load generator and the
    server benchmark — replaces the private helper loadgen used to
    carry, so client- and server-side quantiles agree on the rule.
    """
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def bucket_quantile(
    uppers: Sequence[float], cumulative: Sequence[int], q: float
) -> float:
    """Estimate a quantile from cumulative bucket counts.

    ``uppers`` are the finite bucket upper bounds; ``cumulative`` has one
    extra final entry for the ``+Inf`` overflow bucket (exactly the
    shape of Prometheus ``_bucket{le=...}`` series).  Linear
    interpolation inside the winning bucket; the overflow bucket clamps
    to the largest finite bound.
    """
    if len(cumulative) != len(uppers) + 1:
        raise ValueError("cumulative must have one entry per bucket plus +Inf")
    total = cumulative[-1]
    if total <= 0:
        return 0.0
    rank = q * total
    lower = 0.0
    prev = 0
    for upper, cum in zip(uppers, cumulative):
        if cum >= rank and cum > prev:
            fraction = (rank - prev) / (cum - prev)
            return lower + (upper - lower) * max(0.0, min(1.0, fraction))
        lower, prev = upper, cum
    return uppers[-1]


class Histogram:
    """A thread-safe histogram: fixed buckets plus exact count and sum.

    ``observe`` is the hot-path operation: one lock, one linear bucket
    scan bounded by the fixed bucket count (the common sub-millisecond
    observations resolve in the first few comparisons).  ``count`` and
    ``sum`` are exact — only the quantiles are bucket estimates.
    """

    __slots__ = ("name", "labels", "buckets", "_counts", "count", "sum", "_lock")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        ordered = tuple(float(b) for b in buckets)
        if not ordered or any(
            b <= a for a, b in zip(ordered, ordered[1:])
        ) or any(not math.isfinite(b) or b <= 0 for b in ordered):
            raise ValueError("buckets must be finite, positive and increasing")
        self.name = name
        self.labels = labels
        self.buckets = ordered
        self._counts = [0] * (len(ordered) + 1)  # final slot = +Inf overflow
        self.count = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # bisect_left finds the first bucket with upper >= value (C
        # speed); a value past the last bound lands on the overflow
        # slot.  This is the hot path — one bisect, one lock, three
        # increments — and the E2 overhead measurement in
        # docs/OBSERVABILITY.md holds it to the ≤2 % budget.
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.sum += value

    @contextmanager
    def time(self) -> Iterator[None]:
        """Observe the wall-clock duration of the ``with`` body, in seconds."""
        started = _time.perf_counter()
        try:
            yield
        finally:
            self.observe(_time.perf_counter() - started)

    def cumulative(self) -> list[int]:
        """Cumulative bucket counts, one extra final entry for ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        out, running = [], 0
        for c in counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (``q`` in ``[0, 1]``)."""
        return bucket_quantile(self.buckets, self.cumulative(), q)

    def percentiles(self) -> dict[str, float]:
        """The standard trio: estimated p50/p90/p99, in the observed unit."""
        cumulative = self.cumulative()
        return {
            "p50": bucket_quantile(self.buckets, cumulative, 0.50),
            "p90": bucket_quantile(self.buckets, cumulative, 0.90),
            "p99": bucket_quantile(self.buckets, cumulative, 0.99),
        }

    def state(self) -> dict:
        """A mergeable snapshot of this series (see :func:`merge_series_state`)."""
        with self._lock:
            return {
                "type": "histogram",
                "name": self.name,
                "labels": dict(self.labels),
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "count": self.count,
                "sum": self.sum,
            }

    def merge_state(self, state: Mapping) -> None:
        """Fold another histogram's state in, additively, exactly once."""
        if tuple(float(b) for b in state["buckets"]) != self.buckets:
            raise ValueError(f"bucket mismatch merging histogram {self.name!r}")
        counts = state["counts"]
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self.count += state["count"]
            self.sum += state["sum"]

    def reset(self) -> None:
        with self._lock:
            for i in range(len(self._counts)):
                self._counts[i] = 0
            self.count = 0
            self.sum = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram({self.name}{_label_suffix(self.labels)} "
            f"count={self.count} sum={self.sum:.6g})"
        )


class Gauge:
    """A thread-safe instantaneous value (set / inc / dec)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(
        self, name: str, labels: tuple[tuple[str, str], ...] = ()
    ) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @contextmanager
    def track(self) -> Iterator[None]:
        """Increment for the duration of the ``with`` body (in-flight counts)."""
        self.inc()
        try:
            yield
        finally:
            self.dec()

    def state(self) -> dict:
        return {
            "type": "gauge",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }

    def merge_state(self, state: Mapping) -> None:
        """Adopt a shipped gauge state (last writer wins — gauges are levels)."""
        self.set(state["value"])

    def reset(self) -> None:
        self.set(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}{_label_suffix(self.labels)}={self.value})"


class TelemetryRegistry:
    """Families of histograms and gauges, keyed by name + label set.

    Mirrors :class:`~repro.obs.metrics.MetricsRegistry`'s create-on-
    first-use contract.  Label keys are validated against
    :data:`ALLOWED_LABELS`; a family that reaches
    :data:`MAX_SERIES_PER_NAME` distinct label sets silently folds new
    label sets into its unlabeled aggregate series, so a hostile label
    value degrades precision, never memory.
    """

    def __init__(self) -> None:
        self._histograms: dict[str, Histogram] = {}
        self._gauges: dict[str, Gauge] = {}
        self._family_sizes: dict[str, int] = {}
        self._lock = threading.Lock()

    def _series_key(self, name: str, labels: tuple[tuple[str, str], ...]) -> str:
        return name + _label_suffix(labels)

    def _admit_labels(
        self, name: str, labels: tuple[tuple[str, str], ...], table: dict
    ) -> tuple[tuple[str, str], ...]:
        if not labels:
            return labels
        if self._series_key(name, labels) in table:
            return labels
        if self._family_sizes.get(name, 0) >= MAX_SERIES_PER_NAME:
            return ()
        return labels

    def histogram(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """The histogram series for this name + label set, created on first use."""
        canonical = _check_labels(labels)
        with self._lock:
            canonical = self._admit_labels(name, canonical, self._histograms)
            key = self._series_key(name, canonical)
            series = self._histograms.get(key)
            if series is None:
                series = Histogram(name, canonical, buckets)
                self._histograms[key] = series
                self._family_sizes[name] = self._family_sizes.get(name, 0) + 1
            return series

    def gauge(self, name: str, labels: Mapping[str, str] | None = None) -> Gauge:
        """The gauge series for this name + label set, created on first use."""
        canonical = _check_labels(labels)
        with self._lock:
            canonical = self._admit_labels(name, canonical, self._gauges)
            key = self._series_key(name, canonical)
            series = self._gauges.get(key)
            if series is None:
                series = Gauge(name, canonical)
                self._gauges[key] = series
                self._family_sizes[name] = self._family_sizes.get(name, 0) + 1
            return series

    def histograms(self) -> list[Histogram]:
        with self._lock:
            return [self._histograms[k] for k in sorted(self._histograms)]

    def gauges(self) -> list[Gauge]:
        with self._lock:
            return [self._gauges[k] for k in sorted(self._gauges)]

    def snapshot(self) -> dict[str, dict]:
        """``{series_key: state}`` for every live series (mergeable)."""
        out: dict[str, dict] = {}
        for series in self.histograms():
            out[self._series_key(series.name, series.labels)] = series.state()
        for series in self.gauges():
            out[self._series_key(series.name, series.labels)] = series.state()
        return out

    def merge(self, snapshot: Mapping[str, Mapping]) -> None:
        """Fold a :meth:`snapshot` (or subset) in; each state counts once."""
        for state in snapshot.values():
            merge_series_state(state, self)

    def reset(self) -> None:
        """Zero every series (series identities survive, like counter reset)."""
        for series in self.histograms():
            series.reset()
        for series in self.gauges():
            series.reset()

    def __len__(self) -> int:
        with self._lock:
            return len(self._histograms) + len(self._gauges)


def merge_series_state(
    state: Mapping, registry: "TelemetryRegistry | None" = None
) -> None:
    """Fold one shipped series state into a registry (default process-wide).

    Histogram states add counts and sums exactly once; gauge states are
    levels, so the shipped value simply replaces the local one.  This is
    what :func:`repro.obs.metrics.merge_snapshot` calls for any snapshot
    entry that is a mapping rather than an integer delta.
    """
    target = registry if registry is not None else _TELEMETRY
    kind = state.get("type")
    labels = state.get("labels") or {}
    if kind == "histogram":
        series = target.histogram(
            state["name"], labels or None, buckets=state["buckets"]
        )
        series.merge_state(state)
    elif kind == "gauge":
        target.gauge(state["name"], labels or None).merge_state(state)
    else:
        raise ValueError(f"unknown telemetry state type: {kind!r}")


#: The process-wide default telemetry registry.
_TELEMETRY = TelemetryRegistry()


def get_telemetry() -> TelemetryRegistry:
    """The process-wide telemetry registry (histograms and gauges)."""
    return _TELEMETRY


def reset_telemetry() -> None:
    """Zero the process-wide telemetry registry (test isolation)."""
    _TELEMETRY.reset()


def telemetry_snapshot() -> dict[str, dict]:
    """Mergeable snapshot of the process-wide telemetry registry."""
    return _TELEMETRY.snapshot()


# --------------------------------------------------------------------------
# Prometheus text exposition
# --------------------------------------------------------------------------

def _metric_name(name: str, prefix: str) -> str:
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return prefix + sanitized


def _format_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if value == math.floor(value) and abs(value) < 1e15:
        return str(int(value))
    return format(value, ".12g")


def render_prometheus(
    counters: Mapping[str, int] | None = None,
    telemetry: TelemetryRegistry | None = None,
    prefix: str = "repro_",
) -> str:
    """Render counters plus a telemetry registry in Prometheus text format.

    ``counters`` is a ``{name: value}`` snapshot (e.g.
    :func:`repro.obs.metrics.metrics_snapshot`); ``telemetry`` defaults
    to the process-wide registry.  Counter names gain the conventional
    ``_total`` suffix; histogram series emit cumulative
    ``_bucket{le=...}`` lines (ending in ``le="+Inf"``) plus ``_count``
    and ``_sum``.  Output is sorted, so scrapes are diff-stable.
    """
    registry = telemetry if telemetry is not None else _TELEMETRY
    lines: list[str] = []

    for name in sorted(counters or {}):
        metric = _metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counters[name]}")

    by_family: dict[str, list[Gauge]] = {}
    for series in registry.gauges():
        by_family.setdefault(series.name, []).append(series)
    for name in sorted(by_family):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        for series in by_family[name]:
            lines.append(
                f"{metric}{_label_suffix(series.labels)} "
                f"{_format_value(series.value)}"
            )

    histo_families: dict[str, list[Histogram]] = {}
    for series in registry.histograms():
        histo_families.setdefault(series.name, []).append(series)
    for name in sorted(histo_families):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        for series in histo_families[name]:
            cumulative = series.cumulative()
            state = series.state()
            for upper, cum in zip(series.buckets, cumulative):
                labels = dict(series.labels)
                labels["le"] = _format_value(upper)
                suffix = "{" + ",".join(
                    f'{k}="{_escape_label(v)}"' for k, v in labels.items()
                ) + "}"
                lines.append(f"{metric}_bucket{suffix} {cum}")
            labels = dict(series.labels)
            labels["le"] = "+Inf"
            suffix = "{" + ",".join(
                f'{k}="{_escape_label(v)}"' for k, v in labels.items()
            ) + "}"
            lines.append(f"{metric}_bucket{suffix} {cumulative[-1]}")
            base = _label_suffix(series.labels)
            lines.append(f"{metric}_count{base} {state['count']}")
            lines.append(f"{metric}_sum{base} {_format_value(state['sum'])}")

    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------
# SLO tracking
# --------------------------------------------------------------------------

class SloTracker:
    """Per-tenant rolling multi-window SLO burn rates.

    The objective is joint: a request is *good* when it succeeds (no
    server error) **and** finishes within ``latency_ms``.  ``target`` is
    the fraction of requests that must be good (0.99 → a 1% error
    budget).  The burn rate over a window is the observed bad fraction
    divided by the budget: 1.0 means the budget is being consumed
    exactly at the sustainable rate, >1.0 means faster (the multiwindow
    rule from the SRE workbook — a short window catches fast burns, a
    long one slow leaks).

    :meth:`observe` returns an alert dict exactly when the short-window
    burn rate crosses above 1.0 for a tenant (edge-triggered), which the
    server turns into an ``slo.burn`` journal event.
    """

    def __init__(
        self,
        latency_ms: float,
        target: float = 0.99,
        windows: Sequence[float] = (300.0, 3600.0),
        max_events: int = 4096,
        clock=_time.monotonic,
    ) -> None:
        if latency_ms <= 0:
            raise ValueError("latency_ms must be positive")
        if not 0.0 < target < 1.0:
            raise ValueError("target must be in (0, 1)")
        self.latency_ms = float(latency_ms)
        self.target = float(target)
        self.windows = tuple(sorted(float(w) for w in windows))
        self.max_events = max_events
        self._clock = clock
        self._events: dict[str, deque] = {}
        self._burning: dict[str, bool] = {}
        self._lock = threading.Lock()

    def observe(
        self, tenant: str, wall_ms: float, error: bool = False
    ) -> dict | None:
        """Record one request; returns an alert dict on a fresh fast burn."""
        bad = bool(error) or wall_ms > self.latency_ms
        now = self._clock()
        horizon = now - self.windows[-1]
        with self._lock:
            events = self._events.setdefault(
                tenant, deque(maxlen=self.max_events)
            )
            events.append((now, bad))
            while events and events[0][0] < horizon:
                events.popleft()
            burn = self._burn_rate(events, now, self.windows[0])
            was_burning = self._burning.get(tenant, False)
            burning = burn > 1.0
            self._burning[tenant] = burning
        if burning and not was_burning:
            return {
                "tenant": tenant,
                "window_s": self.windows[0],
                "burn_rate": round(burn, 3),
                "latency_ms": self.latency_ms,
                "target": self.target,
            }
        return None

    def _burn_rate(self, events, now: float, window: float) -> float:
        cutoff = now - window
        total = bad = 0
        for t, is_bad in reversed(events):
            if t < cutoff:
                break
            total += 1
            bad += is_bad
        if total == 0:
            return 0.0
        return (bad / total) / (1.0 - self.target)

    def stats(self) -> dict:
        """Per-tenant windowed totals and burn rates, for ``/v1/stats``."""
        now = self._clock()
        out: dict[str, dict] = {
            "objective": {"latency_ms": self.latency_ms, "target": self.target},
            "tenants": {},
        }
        with self._lock:
            items = [(t, list(ev)) for t, ev in self._events.items()]
        for tenant, events in sorted(items):
            windows = {}
            for window in self.windows:
                cutoff = now - window
                recent = [(t, b) for t, b in events if t >= cutoff]
                bad = sum(b for _, b in recent)
                windows[f"{int(window)}s"] = {
                    "total": len(recent),
                    "breaches": bad,
                    "burn_rate": round(
                        self._burn_rate(events, now, window), 3
                    ),
                }
            out["tenants"][tenant] = {"windows": windows}
        return out
