"""The slow-query log: bounded on-disk JSONL of auto-captured EXPLAINs.

When a request's wall time crosses the configured threshold (the SLO
latency objective, ``slo_latency_ms``), the server re-runs the query as
``EXPLAIN ANALYZE`` and appends one JSON record to the path named by
``slow_log`` / ``REPRO_SLOW_LOG``: the query text, tenant, request id,
observed and analyze wall times, and the full annotated plan tree with
measured per-node costs (which sum exactly to the analyze run's totals —
the PR-5 attribution invariant).  ``repro slowlog`` pretty-prints the
file.

The file is *bounded*: once it exceeds ``max_records`` records it is
atomically rewritten keeping the newest half, so a misconfigured
threshold degrades to a ring buffer rather than filling the disk.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading

from repro.obs.metrics import get_registry

#: Environment variable naming the slow-log path (see ``repro.config``).
ENV_SLOW_LOG = "REPRO_SLOW_LOG"

#: Records kept before the file is rewritten down to the newest half.
DEFAULT_MAX_RECORDS = 512


class SlowQueryLog:
    """An append-mostly, size-bounded JSONL sink for slow-query records."""

    def __init__(
        self, path: str | pathlib.Path, max_records: int = DEFAULT_MAX_RECORDS
    ) -> None:
        if max_records < 2:
            raise ValueError("max_records must be at least 2")
        self.path = pathlib.Path(path)
        self.max_records = max_records
        self._lock = threading.Lock()
        self._count: int | None = None  # lazily counted on first append

    def record(self, entry: dict) -> None:
        """Append one record, rotating the file if it grew past the bound."""
        line = json.dumps(entry, default=str, sort_keys=True)
        with self._lock:
            if self._count is None:
                self._count = self._count_existing()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
            self._count += 1
            get_registry().counter("obs.slowlog.records").inc()
            if self._count > self.max_records:
                self._rotate()

    def _count_existing(self) -> int:
        try:
            with self.path.open("r", encoding="utf-8") as handle:
                return sum(1 for line in handle if line.strip())
        except FileNotFoundError:
            return 0

    def _rotate(self) -> None:
        """Atomically rewrite the file keeping the newest half of records."""
        keep = self.max_records // 2
        with self.path.open("r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        kept = lines[-keep:]
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            handle.writelines(kept)
        os.replace(tmp, self.path)
        self._count = len(kept)
        get_registry().counter("obs.slowlog.rotations").inc()


def load_slow_log(
    path: str | pathlib.Path, limit: int | None = None
) -> list[dict]:
    """Parse a slow-log JSONL file; newest records last.

    ``limit`` keeps only the newest N.  Unparseable lines (a crash mid-
    append) are skipped rather than fatal — the log is diagnostics, not
    a ledger.
    """
    records: list[dict] = []
    try:
        with pathlib.Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
    except FileNotFoundError:
        return []
    if limit is not None:
        records = records[-limit:]
    return records
