"""Hierarchical tracing spans with near-zero overhead when disabled.

A :class:`Span` is a named node in a tree with a wall-clock duration, a
call count and numeric attributes; the tree mirrors the engine's call
structure (query → extension build → arrangement DFS → LP solves …).
The process-wide :class:`Tracer` is *disabled* by default: every
instrumentation site then costs one attribute check, so the hot paths
(sign-vector DFS, feasibility solves, evaluator dispatch) stay at full
speed — the E2 scaling benchmark guards this.

Aggregate spans keep the tree small on hot paths: entering a span with
``aggregate=True`` under the same parent merges repeated visits into a
single child whose ``calls`` / ``wall_s`` accumulate, so ten thousand
LP solves become one line of profile instead of ten thousand nodes.

Spans are thread-aware: each thread keeps its own open-span stack, and
the outermost span of a secondary thread (a ``ThreadPoolExecutor``
worker, say) is adopted into the collection's root under a lock, so
concurrent spans never corrupt the tree.

When the structured event journal (:mod:`repro.obs.journal`) is
recording, every span open/close is mirrored as a typed event, which is
what lets ``replay()`` reconstruct the tree from a journal file.

Usage::

    from repro.obs import span, traced, TRACER

    with TRACER.start("profile"):
        with span("phase", items=3):
            ...
    root = TRACER.stop()
    print(json.dumps(root.to_dict()))

    @traced("arrangement.build")
    def build_arrangement(...): ...
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable


class _NullJournal:
    """Stands in until :mod:`repro.obs.journal` registers the real one."""

    __slots__ = ()
    enabled = False

    def emit(self, type_: str, **fields: Any) -> None:  # pragma: no cover
        pass


#: The journal the tracer mirrors span events into; replaced by the real
#: process journal when :mod:`repro.obs.journal` is imported (the import
#: cannot go the other way — journal replays into Span trees).
_JOURNAL: Any = _NullJournal()


def _attach_journal(journal: Any) -> None:
    global _JOURNAL
    _JOURNAL = journal


class Span:
    """One node of the trace tree."""

    __slots__ = (
        "name", "calls", "wall_s", "attrs", "children", "_index", "_jid"
    )

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        self.calls = 1
        self.wall_s = 0.0
        self.attrs: dict[str, Any] = dict(attrs)
        self.children: list[Span] = []
        # Aggregate children by name for O(1) merging.
        self._index: dict[str, Span] = {}
        # Journal event id (0 = never journalled).
        self._jid = 0

    def add(self, key: str, amount: Any = 1) -> None:
        """Accumulate a numeric attribute on this span."""
        self.attrs[key] = self.attrs.get(key, 0) + amount

    def set(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def adopt(self, child: "Span", aggregate: bool) -> None:
        """Attach a finished child, merging when it is an aggregate."""
        if aggregate:
            existing = self._index.get(child.name)
            if existing is not None:
                existing.merge(child)
                return
            self._index[child.name] = child
        self.children.append(child)

    def merge(self, other: "Span") -> None:
        """Fold another span of the same name into this one."""
        self.calls += other.calls
        self.wall_s += other.wall_s
        for key, value in other.attrs.items():
            if isinstance(value, (int, float)):
                self.attrs[key] = self.attrs.get(key, 0) + value
            else:
                self.attrs[key] = value
        for child in other.children:
            existing = self._index.get(child.name)
            if existing is not None:
                existing.merge(child)
            else:
                self._index[child.name] = child
                self.children.append(child)

    def to_dict(self) -> dict:
        """JSON-ready representation (the ``repro profile`` output)."""
        node: dict[str, Any] = {
            "name": self.name,
            "calls": self.calls,
            "wall_ms": round(self.wall_s * 1000.0, 3),
        }
        if self.attrs:
            node["attrs"] = {
                key: value for key, value in sorted(self.attrs.items())
            }
        node["children"] = [child.to_dict() for child in self.children]
        return node

    def format(self, indent: int = 0) -> str:
        """Human-readable tree rendering (the ``--trace`` CLI output)."""
        pad = "  " * indent
        extras = ""
        if self.calls > 1:
            extras += f" ×{self.calls}"
        if self.attrs:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(self.attrs.items())
            )
            extras += f" [{rendered}]"
        lines = [f"{pad}{self.name}: {self.wall_s * 1000.0:.2f} ms{extras}"]
        lines.extend(
            child.format(indent + 1) for child in self.children
        )
        return "\n".join(lines)

    def find(self, name: str) -> "Span | None":
        """Depth-first lookup of a descendant span by name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, calls={self.calls}, "
            f"wall_s={self.wall_s:.6f}, children={len(self.children)})"
        )


class _NullSpan:
    """Absorbs span mutations when tracing is disabled."""

    __slots__ = ()

    def add(self, key: str, amount: Any = 1) -> None:
        pass

    def set(self, key: str, value: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class _NullContext:
    """Shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class _SpanContext:
    """Context manager recording one span under the current parent.

    The parent is the innermost open span *of the current thread*; the
    outermost span of a secondary thread is adopted into the root span
    under the tracer's lock.  ``__exit__`` always closes the span and
    never swallows exceptions, so a raising body still produces a
    complete (and correctly timed) node.
    """

    __slots__ = ("_tracer", "_span", "_aggregate", "_start", "_stack")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        aggregate: bool,
        attrs: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self._span = Span(name, **attrs)
        self._aggregate = aggregate
        self._start = 0.0
        self._stack: list[Span] | None = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        stack = tracer._thread_stack()
        self._stack = stack
        span = self._span
        if _JOURNAL.enabled:
            span._jid = next(tracer._ids)
            parent_id = tracer._root_id
            if stack and stack[-1]._jid:
                parent_id = stack[-1]._jid
            _JOURNAL.emit(
                "span.open",
                id=span._jid,
                parent=parent_id,
                name=span.name,
                aggregate=self._aggregate,
                attrs=dict(span.attrs),
            )
        stack.append(span)
        self._start = time.perf_counter()
        return span

    def __exit__(self, *exc_info: object) -> bool:
        span = self._span
        span.wall_s += time.perf_counter() - self._start
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
        elif stack is not None:  # pragma: no cover - defensive
            try:
                stack.remove(span)
            except ValueError:
                pass
        if _JOURNAL.enabled and span._jid:
            _JOURNAL.emit(
                "span.close",
                id=span._jid,
                wall_s=span.wall_s,
                calls=span.calls,
                attrs=dict(span.attrs),
            )
        tracer = self._tracer
        if stack:
            stack[-1].adopt(span, self._aggregate)
        else:
            root = tracer._root
            if root is not None:
                with tracer._lock:
                    root.adopt(span, self._aggregate)
        return False


class Tracer:
    """The process-wide span collector.

    ``enabled`` is a plain attribute so instrumentation sites can guard
    with a single check; :meth:`span` returns a shared no-op context
    while disabled, so un-guarded ``with`` sites cost one allocation-free
    call.  Open-span stacks are per thread (an ``_epoch`` token retires
    every thread's stack when a collection starts or stops).
    """

    __slots__ = (
        "enabled", "_root", "_root_id", "_local", "_lock", "_ids", "_epoch"
    )

    def __init__(self) -> None:
        self.enabled = False
        self._root: Span | None = None
        self._root_id: int | None = None
        self._local = threading.local()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._epoch: object = object()

    def _thread_stack(self) -> list[Span]:
        """This thread's open-span stack for the current collection."""
        local = self._local
        if getattr(local, "epoch", None) is not self._epoch:
            local.epoch = self._epoch
            local.stack = []
        return local.stack

    def start(self, name: str = "trace") -> "Tracer":
        """Begin collecting under a fresh root span.

        Returns the tracer itself so ``with TRACER.start("x"):`` scopes
        a collection; :meth:`stop` (or leaving the ``with``) ends it and
        the finished tree is at :attr:`root`.
        """
        root = Span(name)
        root.wall_s = -time.perf_counter()
        self._epoch = object()
        local = self._local
        local.epoch = self._epoch
        local.stack = [root]
        self._root = root
        self._root_id = next(self._ids)
        root._jid = self._root_id
        self.enabled = True
        if _JOURNAL.enabled:
            _JOURNAL.emit("trace.begin", id=self._root_id, name=name)
        return self

    def stop(self) -> Span:
        """End collection and return the finished root span."""
        if not self.enabled or self._root is None:
            raise RuntimeError("tracer is not started")
        root = self._root
        root.wall_s += time.perf_counter()
        self.enabled = False
        self._root = None
        root_id = self._root_id
        self._root_id = None
        self._epoch = object()
        if _JOURNAL.enabled:
            _JOURNAL.emit("trace.end", id=root_id, wall_s=root.wall_s)
        return root

    def hard_reset(self) -> None:
        """Discard any collection in progress (no tree is returned).

        Used by :func:`repro.obs.reset_all` so back-to-back CLI
        invocations in one process cannot leak an open trace into each
        other; a no-op when nothing is being collected.
        """
        self.enabled = False
        self._root = None
        self._root_id = None
        self._epoch = object()

    def __enter__(self) -> Span:
        if not self.enabled:
            self.start()
        assert self._root is not None
        return self._root

    def __exit__(self, *exc_info: object) -> bool:
        if self.enabled:
            self.stop()
        return False

    @property
    def root(self) -> Span | None:
        """The most recent root span (live while collecting)."""
        return self._root

    def current(self) -> Span | _NullSpan:
        """The innermost open span of this thread (no-op when disabled).

        A thread with no open span of its own reports the collection's
        root, so counters attached via ``current().add`` from worker
        threads still land in the tree.
        """
        if self.enabled:
            stack = self._thread_stack()
            if stack:
                return stack[-1]
            if self._root is not None:
                return self._root
        return NULL_SPAN

    def span(
        self, name: str, aggregate: bool = False, **attrs: Any
    ) -> "_SpanContext | _NullContext":
        """Open a child span under the current one (no-op when disabled)."""
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanContext(self, name, aggregate, attrs)


#: The process-wide tracer (disabled by default).
TRACER = Tracer()


def span(
    name: str, aggregate: bool = False, **attrs: Any
) -> "_SpanContext | _NullContext":
    """Module-level shortcut for ``TRACER.span``."""
    if not TRACER.enabled:
        return _NULL_CONTEXT
    return _SpanContext(TRACER, name, aggregate, attrs)


def tracing_enabled() -> bool:
    return TRACER.enabled


def traced(
    name: str | None = None, aggregate: bool = True
) -> Callable[[Callable], Callable]:
    """Decorator: record a span around every call of the function.

    When tracing is disabled the wrapper is a single flag check, so it
    is safe on warm paths; genuinely hot inner loops should guard on
    ``TRACER.enabled`` instead.
    """

    def decorate(function: Callable) -> Callable:
        label = name if name is not None else function.__qualname__

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not TRACER.enabled:
                return function(*args, **kwargs)
            with _SpanContext(TRACER, label, aggregate, {}):
                return function(*args, **kwargs)

        wrapper.__name__ = function.__name__
        wrapper.__qualname__ = function.__qualname__
        wrapper.__doc__ = function.__doc__
        wrapper.__wrapped__ = function  # type: ignore[attr-defined]
        return wrapper

    return decorate
