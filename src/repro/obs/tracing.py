"""Hierarchical tracing spans with near-zero overhead when disabled.

A :class:`Span` is a named node in a tree with a wall-clock duration, a
call count and numeric attributes; the tree mirrors the engine's call
structure (query → extension build → arrangement DFS → LP solves …).
The process-wide :class:`Tracer` is *disabled* by default: every
instrumentation site then costs one attribute check, so the hot paths
(sign-vector DFS, feasibility solves, evaluator dispatch) stay at full
speed — the E2 scaling benchmark guards this.

Aggregate spans keep the tree small on hot paths: entering a span with
``aggregate=True`` under the same parent merges repeated visits into a
single child whose ``calls`` / ``wall_s`` accumulate, so ten thousand
LP solves become one line of profile instead of ten thousand nodes.

Usage::

    from repro.obs import span, traced, TRACER

    with TRACER.start("profile"):
        with span("phase", items=3):
            ...
    root = TRACER.stop()
    print(json.dumps(root.to_dict()))

    @traced("arrangement.build")
    def build_arrangement(...): ...
"""

from __future__ import annotations

import time
from typing import Any, Callable


class Span:
    """One node of the trace tree."""

    __slots__ = ("name", "calls", "wall_s", "attrs", "children", "_index")

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        self.calls = 1
        self.wall_s = 0.0
        self.attrs: dict[str, Any] = dict(attrs)
        self.children: list[Span] = []
        # Aggregate children by name for O(1) merging.
        self._index: dict[str, Span] = {}

    def add(self, key: str, amount: Any = 1) -> None:
        """Accumulate a numeric attribute on this span."""
        self.attrs[key] = self.attrs.get(key, 0) + amount

    def set(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def adopt(self, child: "Span", aggregate: bool) -> None:
        """Attach a finished child, merging when it is an aggregate."""
        if aggregate:
            existing = self._index.get(child.name)
            if existing is not None:
                existing.merge(child)
                return
            self._index[child.name] = child
        self.children.append(child)

    def merge(self, other: "Span") -> None:
        """Fold another span of the same name into this one."""
        self.calls += other.calls
        self.wall_s += other.wall_s
        for key, value in other.attrs.items():
            if isinstance(value, (int, float)):
                self.attrs[key] = self.attrs.get(key, 0) + value
            else:
                self.attrs[key] = value
        for child in other.children:
            existing = self._index.get(child.name)
            if existing is not None:
                existing.merge(child)
            else:
                self._index[child.name] = child
                self.children.append(child)

    def to_dict(self) -> dict:
        """JSON-ready representation (the ``repro profile`` output)."""
        node: dict[str, Any] = {
            "name": self.name,
            "calls": self.calls,
            "wall_ms": round(self.wall_s * 1000.0, 3),
        }
        if self.attrs:
            node["attrs"] = {
                key: value for key, value in sorted(self.attrs.items())
            }
        node["children"] = [child.to_dict() for child in self.children]
        return node

    def format(self, indent: int = 0) -> str:
        """Human-readable tree rendering (the ``--trace`` CLI output)."""
        pad = "  " * indent
        extras = ""
        if self.calls > 1:
            extras += f" ×{self.calls}"
        if self.attrs:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(self.attrs.items())
            )
            extras += f" [{rendered}]"
        lines = [f"{pad}{self.name}: {self.wall_s * 1000.0:.2f} ms{extras}"]
        lines.extend(
            child.format(indent + 1) for child in self.children
        )
        return "\n".join(lines)

    def find(self, name: str) -> "Span | None":
        """Depth-first lookup of a descendant span by name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, calls={self.calls}, "
            f"wall_s={self.wall_s:.6f}, children={len(self.children)})"
        )


class _NullSpan:
    """Absorbs span mutations when tracing is disabled."""

    __slots__ = ()

    def add(self, key: str, amount: Any = 1) -> None:
        pass

    def set(self, key: str, value: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class _NullContext:
    """Shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class _SpanContext:
    """Context manager recording one span under the current parent."""

    __slots__ = ("_tracer", "_span", "_aggregate", "_start")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        aggregate: bool,
        attrs: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self._span = Span(name, **attrs)
        self._aggregate = aggregate
        self._start = 0.0

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        self._start = time.perf_counter()
        return self._span

    def __exit__(self, *exc_info: object) -> bool:
        span = self._span
        span.wall_s += time.perf_counter() - self._start
        stack = self._tracer._stack
        stack.pop()
        if stack:
            stack[-1].adopt(span, self._aggregate)
        return False


class Tracer:
    """The process-wide span collector.

    ``enabled`` is a plain attribute so instrumentation sites can guard
    with a single check; :meth:`span` returns a shared no-op context
    while disabled, so un-guarded ``with`` sites cost one allocation-free
    call.
    """

    __slots__ = ("enabled", "_stack", "_root")

    def __init__(self) -> None:
        self.enabled = False
        self._stack: list[Span] = []
        self._root: Span | None = None

    def start(self, name: str = "trace") -> "Tracer":
        """Begin collecting under a fresh root span.

        Returns the tracer itself so ``with TRACER.start("x"):`` scopes
        a collection; :meth:`stop` (or leaving the ``with``) ends it and
        the finished tree is at :attr:`root`.
        """
        root = Span(name)
        root.wall_s = -time.perf_counter()
        self._stack = [root]
        self._root = root
        self.enabled = True
        return self

    def stop(self) -> Span:
        """End collection and return the finished root span."""
        if not self.enabled or not self._stack:
            raise RuntimeError("tracer is not started")
        root = self._stack[0]
        root.wall_s += time.perf_counter()
        self.enabled = False
        self._stack = []
        return root

    def __enter__(self) -> Span:
        if not self.enabled:
            self.start()
        assert self._root is not None
        return self._root

    def __exit__(self, *exc_info: object) -> bool:
        if self.enabled:
            self.stop()
        return False

    @property
    def root(self) -> Span | None:
        """The most recent root span (live while collecting)."""
        return self._root

    def current(self) -> Span | _NullSpan:
        """The innermost open span, or a no-op span when disabled."""
        if self.enabled and self._stack:
            return self._stack[-1]
        return NULL_SPAN

    def span(
        self, name: str, aggregate: bool = False, **attrs: Any
    ) -> "_SpanContext | _NullContext":
        """Open a child span under the current one (no-op when disabled)."""
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanContext(self, name, aggregate, attrs)


#: The process-wide tracer (disabled by default).
TRACER = Tracer()


def span(
    name: str, aggregate: bool = False, **attrs: Any
) -> "_SpanContext | _NullContext":
    """Module-level shortcut for ``TRACER.span``."""
    if not TRACER.enabled:
        return _NULL_CONTEXT
    return _SpanContext(TRACER, name, aggregate, attrs)


def tracing_enabled() -> bool:
    return TRACER.enabled


def traced(
    name: str | None = None, aggregate: bool = True
) -> Callable[[Callable], Callable]:
    """Decorator: record a span around every call of the function.

    When tracing is disabled the wrapper is a single flag check, so it
    is safe on warm paths; genuinely hot inner loops should guard on
    ``TRACER.enabled`` instead.
    """

    def decorate(function: Callable) -> Callable:
        label = name if name is not None else function.__qualname__

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not TRACER.enabled:
                return function(*args, **kwargs)
            with _SpanContext(TRACER, label, aggregate, {}):
                return function(*args, **kwargs)

        wrapper.__name__ = function.__name__
        wrapper.__qualname__ = function.__qualname__
        wrapper.__doc__ = function.__doc__
        wrapper.__wrapped__ = function  # type: ignore[attr-defined]
        return wrapper

    return decorate
