"""Process-wide metrics: named monotone counters in registries.

The engine's telemetry used to be scattered — LP counters in a module
global of :mod:`repro.geometry.simplex`, evaluator telemetry in an
ad-hoc ``dict`` — which made it impossible to see a whole query's cost
in one place.  This module centralises it:

* :class:`Counter` — a single named integer with ``inc`` / ``reset``;
* :class:`MetricsRegistry` — a namespace of counters.  A registry may
  have a *parent*: increments then propagate upward (with a prefix), so
  per-component registries (one per :class:`~repro.logic.evaluator.\
  Evaluator`, say) roll up into the process-wide registry while staying
  individually resettable;
* :class:`MetricsView` — a read-only mapping facade that renames
  counters, used to keep legacy shapes like ``Evaluator.stats`` alive
  as live views over the registry.

The process-wide default registry is :func:`get_registry`; the CLI's
``repro profile`` dumps its snapshot next to the span tree.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Iterator


class Counter:
    """A monotone integer counter (resettable for hermetic measurement)."""

    __slots__ = ("name", "value", "_parent")

    def __init__(self, name: str, parent: "Counter | None" = None) -> None:
        self.name = name
        self.value = 0
        self._parent = parent

    def inc(self, amount: int = 1) -> None:
        self.value += amount
        if self._parent is not None:
            self._parent.inc(amount)

    def reset(self) -> None:
        """Zero this counter (parents keep their accumulated totals)."""
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class MetricsRegistry:
    """A namespace of counters, optionally rolling up into a parent.

    ``MetricsRegistry(parent=global_registry, prefix="evaluator.")``
    creates a scoped registry whose counter ``"evaluations"`` also
    increments ``"evaluator.evaluations"`` in the parent — local numbers
    for one component, aggregate numbers for the process.
    """

    def __init__(
        self,
        parent: "MetricsRegistry | None" = None,
        prefix: str = "",
    ) -> None:
        self._counters: dict[str, Counter] = {}
        self._parent = parent
        self._prefix = prefix

    def counter(self, name: str) -> Counter:
        """The counter with this name, created on first use."""
        counter = self._counters.get(name)
        if counter is None:
            parent_counter = (
                self._parent.counter(self._prefix + name)
                if self._parent is not None
                else None
            )
            counter = Counter(name, parent_counter)
            self._counters[name] = counter
        return counter

    def get(self, name: str) -> int:
        """Current value of a counter (0 if it was never touched)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def snapshot(self, prefix: str | None = None) -> dict[str, int]:
        """A plain ``{name: value}`` dict, optionally filtered by prefix."""
        return {
            name: counter.value
            for name, counter in sorted(self._counters.items())
            if prefix is None or name.startswith(prefix)
        }

    def reset(self, prefix: str | None = None) -> None:
        """Zero every counter (or every counter under a prefix)."""
        for name, counter in self._counters.items():
            if prefix is None or name.startswith(prefix):
                counter.reset()

    def names(self) -> list[str]:
        return sorted(self._counters)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __len__(self) -> int:
        return len(self._counters)


class MetricsView(Mapping):
    """A live, read-only mapping over selected counters of a registry.

    ``MetricsView(registry, {"solves": "lp.solves"})`` behaves like the
    dict ``{"solves": <current value>}`` on every access, which lets
    legacy telemetry dicts (``Evaluator.stats``, ``lp_statistics()``)
    survive as views instead of copies.
    """

    __slots__ = ("_registry", "_mapping")

    def __init__(
        self, registry: MetricsRegistry, mapping: Mapping[str, str]
    ) -> None:
        self._registry = registry
        self._mapping = dict(mapping)

    def __getitem__(self, key: str) -> int:
        return self._registry.get(self._mapping[key])

    def __iter__(self) -> Iterator[str]:
        return iter(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)

    def snapshot(self) -> dict[str, int]:
        """A detached plain-dict copy of the current values."""
        return dict(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsView({dict(self)})"


#: The process-wide default registry.
_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _GLOBAL


def reset_metrics(prefix: str | None = None) -> None:
    """Zero the process-wide registry (tests call this for isolation)."""
    _GLOBAL.reset(prefix)


def metrics_snapshot(prefix: str | None = None) -> dict[str, int]:
    """Snapshot of the process-wide registry."""
    return _GLOBAL.snapshot(prefix)


def merge_snapshot(
    snapshot: Mapping[str, object],
    registry: MetricsRegistry | None = None,
) -> None:
    """Fold a ``{name: delta}`` snapshot into a registry (default global).

    This is how parallel arrangement workers ship their counters home:
    the worker returns ``metrics_snapshot()`` deltas with its face
    batches and the parent merges them, so ``--jobs N`` totals match the
    sequential run exactly.

    Entries whose value is a mapping are telemetry series states
    (histogram/gauge snapshots from :func:`repro.obs.telemetry.\
    telemetry_snapshot`) and are routed to the telemetry registry —
    histogram counts and sums merge additively exactly once, so a worker
    snapshot can carry both counter deltas and histogram state in one
    dict without double-counting either.
    """
    target = registry if registry is not None else _GLOBAL
    for name, delta in snapshot.items():
        if isinstance(delta, Mapping):
            from repro.obs.telemetry import merge_series_state

            merge_series_state(delta)
        elif delta:
            target.counter(name).inc(delta)
