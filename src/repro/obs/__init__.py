"""repro.obs — observability: tracing spans and metrics registries.

The subsystem has two halves, both with near-zero cost while idle:

* :mod:`repro.obs.metrics` — named counters in (possibly nested)
  registries; the process-wide registry aggregates everything and the
  legacy telemetry surfaces (``lp_statistics``, ``Evaluator.stats``)
  are live views over it.
* :mod:`repro.obs.tracing` — a span tree recorded by the process-wide
  :data:`TRACER`, disabled by default; ``repro profile`` and the
  ``--trace`` CLI flag turn it on around one command.

Subsystems register their counters here on first use; the disk
warm-start layer (:mod:`repro.store`) contributes ``store.hits`` /
``store.misses`` / ``store.writes`` / ``store.corrupt_entries`` /
``store.evictions`` plus aggregate ``store.load`` / ``store.save``
spans, all visible in the ``repro profile`` dump.
"""

from repro.obs.metrics import (
    Counter,
    MetricsRegistry,
    MetricsView,
    get_registry,
    metrics_snapshot,
    reset_metrics,
)
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    TRACER,
    Tracer,
    span,
    traced,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "MetricsRegistry",
    "MetricsView",
    "get_registry",
    "metrics_snapshot",
    "reset_metrics",
    "NULL_SPAN",
    "Span",
    "TRACER",
    "Tracer",
    "span",
    "traced",
    "tracing_enabled",
]
