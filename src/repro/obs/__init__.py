"""repro.obs — observability: spans, metrics and the event journal.

The subsystem has three layers, all with near-zero cost while idle:

* :mod:`repro.obs.metrics` — named counters in (possibly nested)
  registries; the process-wide registry aggregates everything and the
  legacy telemetry surfaces (``lp_statistics``, ``Evaluator.stats``)
  are live views over it.
* :mod:`repro.obs.tracing` — a span tree recorded by the process-wide
  :data:`TRACER`, disabled by default; ``repro profile`` and the
  ``--trace`` CLI flag turn it on around one command.
* :mod:`repro.obs.telemetry` — the distribution layer: thread-safe
  histograms (log-spaced buckets, exact count/sum, p50/p90/p99
  estimates) and gauges with optional low-cardinality labels, the
  Prometheus text renderer behind ``GET /metrics`` / ``repro metrics``,
  and per-tenant SLO burn-rate tracking; :mod:`repro.obs.slowlog` holds
  the bounded slow-query JSONL that auto-captures EXPLAIN ANALYZE.
* :mod:`repro.obs.journal` — the flight recorder: a bounded ring buffer
  of typed events (span open/close, cache and store decisions, fixpoint
  stage summaries, worker lifecycle), optionally streamed to JSONL via
  ``--journal PATH`` / ``REPRO_JOURNAL``; :func:`~repro.obs.journal.\
  replay` folds a journal back into the exact span tree, which is what
  ``repro explain --analyze`` consumes.

Subsystems register their counters here on first use; the disk
warm-start layer (:mod:`repro.store`) contributes ``store.hits`` /
``store.misses`` / ``store.writes`` / ``store.corrupt_entries`` /
``store.evictions`` plus aggregate ``store.load`` / ``store.save``
spans, all visible in the ``repro profile`` dump.

:func:`reset_all` returns every layer to its pristine state; the CLI
entry point calls it so back-to-back ``repro.cli.main()`` invocations
in one process (the test suite, notebook sessions) cannot leak
counters, open traces or journal buffers into each other.
"""

from repro.obs.metrics import (
    Counter,
    MetricsRegistry,
    MetricsView,
    get_registry,
    merge_snapshot,
    metrics_snapshot,
    reset_metrics,
)
from repro.obs.telemetry import (
    ALLOWED_LABELS,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    SloTracker,
    TelemetryRegistry,
    bucket_quantile,
    get_telemetry,
    merge_series_state,
    quantile,
    render_prometheus,
    reset_telemetry,
    telemetry_snapshot,
)
from repro.obs.slowlog import (
    ENV_SLOW_LOG,
    SlowQueryLog,
    load_slow_log,
)
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    TRACER,
    Tracer,
    span,
    traced,
    tracing_enabled,
)
from repro.obs.journal import (
    JOURNAL,
    Journal,
    ReplayResult,
    journal_context,
    journal_enabled,
    journal_scope,
    load_events,
    replay,
)


def reset_all() -> None:
    """Reset spans, metrics and the journal to their pristine state.

    Zeroes every process-wide counter, discards any trace collection in
    progress, and clears the journal ring (detaching its sink).  The
    engine caches (:mod:`repro.engine`, :mod:`repro.store`) are *not*
    touched — they are cross-invocation state by design.
    """
    reset_metrics()
    reset_telemetry()
    TRACER.hard_reset()
    JOURNAL.reset()


__all__ = [
    "Counter",
    "MetricsRegistry",
    "MetricsView",
    "get_registry",
    "merge_snapshot",
    "metrics_snapshot",
    "reset_metrics",
    "ALLOWED_LABELS",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "SloTracker",
    "TelemetryRegistry",
    "bucket_quantile",
    "get_telemetry",
    "merge_series_state",
    "quantile",
    "render_prometheus",
    "reset_telemetry",
    "telemetry_snapshot",
    "ENV_SLOW_LOG",
    "SlowQueryLog",
    "load_slow_log",
    "NULL_SPAN",
    "Span",
    "TRACER",
    "Tracer",
    "span",
    "traced",
    "tracing_enabled",
    "JOURNAL",
    "Journal",
    "ReplayResult",
    "journal_context",
    "journal_enabled",
    "journal_scope",
    "load_events",
    "replay",
    "reset_all",
]
