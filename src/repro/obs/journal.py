"""Structured event journal — the engine's flight recorder.

The span tree (:mod:`repro.obs.tracing`) and the counter registry
(:mod:`repro.obs.metrics`) answer *where did the time go* and *how much
work happened* as aggregates; the journal records *what the run did*,
in order, as a stream of typed events:

=================  ====================================================
event type         payload (beyond ``seq`` / ``t`` / ``type``)
=================  ====================================================
``trace.begin``    ``id``, ``name`` — a tracer collection started
``span.open``      ``id``, ``parent``, ``name``, ``aggregate``,
                   ``attrs`` — a span opened under ``parent``
``span.close``     ``id``, ``wall_s``, ``calls``, ``attrs`` — the span
                   finished (final attributes)
``trace.end``      ``id``, ``wall_s`` — the collection's root closed
``counter``        ``name``, ``delta`` — a counter checkpoint (worker
                   merges, explicit flushes)
``cache``          ``layer`` (``engine`` | ``store``), ``kind``,
                   ``outcome`` (``hit`` | ``miss`` | ``write`` |
                   ``corrupt``), ``key`` — one cache/store decision
``fixpoint.stage``  ``operator``, ``stage``, ``size``, ``delta`` — one
                   stage of a region fixpoint induction
``datalog.stage``  ``strategy``, ``stage``, ``deltas`` — per-predicate
                   delta disjunct counts of one semi-naive stage
``worker.spawn``   ``jobs``, ``subtrees`` — a parallel build fanned out
``worker.merge``   ``worker``, ``faces``, ``counters`` — one worker's
                   face batch and counter deltas folded into the parent
``meta``           free-form (command lines, bench headers, …)
=================  ====================================================

Events land in a bounded in-memory ring buffer (old events are dropped,
counted in :attr:`Journal.dropped`) and are optionally streamed to a
JSONL sink — one JSON object per line — selected by ``--journal PATH``
on the CLI or the ``REPRO_JOURNAL`` environment variable.

:func:`replay` inverts the stream: it folds the ``trace.begin`` /
``span.open`` / ``span.close`` / ``trace.end`` events back into the
exact :class:`~repro.obs.tracing.Span` tree the tracer built (including
aggregate merging, in the original adoption order), which is what
``repro explain --analyze`` renders and the tests compare
byte-for-byte against the live tree.

The journal is **disabled by default**: every emit site guards on one
attribute check, and with no sink attached an enabled journal costs one
dict build plus one deque append per event — the overhead budget on the
BENCH_E2 fast path is measured in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import IO, Any, Iterable, Iterator

from repro.obs.tracing import Span

#: Environment variable naming the JSONL sink path (the CLI's
#: ``--journal`` flag overrides it).
ENV_JOURNAL = "REPRO_JOURNAL"

#: Default ring-buffer capacity (events).  An ``--analyze`` run emits
#: two events per span context, so this comfortably holds the complete
#: record of the example workloads while bounding memory.
DEFAULT_CAPACITY = 262_144

#: Ambient event fields for the current task/thread (see
#: :func:`journal_context`).  A tuple of ``(key, value)`` pairs so the
#: default is immutable and nesting is a cheap concatenation.
_CONTEXT: contextvars.ContextVar[tuple[tuple[str, Any], ...]] = (
    contextvars.ContextVar("repro_journal_context", default=())
)


@contextmanager
def journal_context(**fields: Any) -> Iterator[None]:
    """Stamp every event emitted in this block with extra fields.

    The binding lives in a :mod:`contextvars` variable, so it follows
    ``asyncio`` tasks and ``asyncio.to_thread`` workers but never leaks
    between concurrent requests — this is how the server turns the one
    process-global journal into a **per-request audit log**: each
    request handler wraps its work in
    ``journal_context(request="req-000042", tenant=...)`` and every
    cache/store/span event it causes carries those fields.  Explicit
    ``emit`` fields win over context fields on name clashes; nested
    contexts stack (inner wins).
    """
    token = _CONTEXT.set(_CONTEXT.get() + tuple(fields.items()))
    try:
        yield
    finally:
        _CONTEXT.reset(token)


class Journal:
    """A bounded ring buffer of typed events with an optional JSONL sink."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("journal capacity must be positive")
        self.enabled = False
        self.capacity = capacity
        #: Events evicted from the ring since the last :meth:`reset`.
        self.dropped = 0
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._seq = itertools.count()
        self._t0 = 0.0
        self._sink: IO[str] | None = None
        self._sink_path: str | None = None
        self._owns_sink = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, sink: "IO[str] | str | None" = None) -> "Journal":
        """Begin recording; ``sink`` streams events to JSONL as well.

        ``sink`` may be a path (opened in append mode, closed by
        :meth:`stop`) or an open text file object (left open).  Returns
        the journal itself so ``with JOURNAL.start(...):`` scopes a
        recording.
        """
        self.reset()
        if isinstance(sink, str):
            self._sink = open(sink, "a")
            self._sink_path = sink
            self._owns_sink = True
        elif sink is not None:
            self._sink = sink
            self._owns_sink = False
        self._t0 = time.perf_counter()
        self.enabled = True
        return self

    def stop(self) -> list[dict]:
        """End recording; flush/close an owned sink; return the events."""
        self.enabled = False
        events = list(self._ring)
        sink = self._sink
        if sink is not None:
            try:
                sink.flush()
                if self._owns_sink:
                    sink.close()
            finally:
                self._sink = None
                self._sink_path = None
                self._owns_sink = False
        return events

    def reset(self) -> None:
        """Drop all buffered events and restart the sequence numbers.

        Also detaches (closing, if owned) any attached sink; used by
        :func:`repro.obs.reset_all` to make CLI invocations hermetic.
        """
        was_enabled = self.enabled
        self.stop()
        self.enabled = was_enabled and False
        self._ring.clear()
        self._seq = itertools.count()
        self.dropped = 0

    def __enter__(self) -> "Journal":
        if not self.enabled:
            self.start()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        if self.enabled:
            self.stop()
        return False

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def emit(self, type_: str, **fields: Any) -> None:
        """Append one event (no-op unless the journal is enabled)."""
        if not self.enabled:
            return
        event = {
            "seq": next(self._seq),
            "t": round(time.perf_counter() - self._t0, 6),
            "type": type_,
        }
        context = _CONTEXT.get()
        if context:
            event.update(context)
        event.update(fields)
        ring = self._ring
        if len(ring) == self.capacity:
            self.dropped += 1
        ring.append(event)
        sink = self._sink
        if sink is not None:
            with self._lock:
                sink.write(json.dumps(event, default=str) + "\n")

    def emit_counters(self, snapshot: dict[str, int]) -> None:
        """One ``counter`` event per non-zero entry of a snapshot."""
        if not self.enabled:
            return
        for name, delta in sorted(snapshot.items()):
            if delta:
                self.emit("counter", name=name, delta=delta)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def events(self, type_: str | None = None) -> list[dict]:
        """The buffered events (optionally filtered by type), in order."""
        if type_ is None:
            return list(self._ring)
        return [event for event in self._ring if event["type"] == type_]

    @property
    def sink_path(self) -> str | None:
        return self._sink_path

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"Journal({state}, events={len(self._ring)})"


#: The process-wide journal (disabled by default).
JOURNAL = Journal()

# The tracer mirrors span open/close into the journal; registration goes
# this way round because the replay below builds tracer Span trees.
from repro.obs import tracing as _tracing  # noqa: E402

_tracing._attach_journal(JOURNAL)


def journal_enabled() -> bool:
    return JOURNAL.enabled


def emit(type_: str, **fields: Any) -> None:
    """Module-level shortcut for ``JOURNAL.emit``."""
    if JOURNAL.enabled:
        JOURNAL.emit(type_, **fields)


@contextmanager
def journal_scope(sink: "IO[str] | str | None" = None) -> Iterator[Journal]:
    """Record into the process journal for the duration of a block."""
    JOURNAL.start(sink)
    try:
        yield JOURNAL
    finally:
        JOURNAL.stop()


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def load_events(path: str) -> list[dict]:
    """Parse a JSONL journal file back into its event dicts."""
    events: list[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


class ReplayResult:
    """Outcome of :func:`replay`: reconstructed span trees + the rest."""

    def __init__(
        self,
        roots: list[Span],
        open_spans: list[Span],
        events: list[dict],
    ) -> None:
        #: Completed trace roots, in ``trace.end`` order.
        self.roots = roots
        #: Spans opened but never closed in the event stream.
        self.open_spans = open_spans
        #: The full event list the replay consumed.
        self.events = events

    @property
    def root(self) -> Span | None:
        """The last completed trace root (the usual single collection)."""
        return self.roots[-1] if self.roots else None

    def events_of_type(self, type_: str) -> list[dict]:
        return [event for event in self.events if event["type"] == type_]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplayResult(roots={len(self.roots)}, "
            f"events={len(self.events)})"
        )


def replay(source: "str | Iterable[dict]") -> ReplayResult:
    """Reconstruct the span tree(s) recorded in a journal.

    ``source`` is a JSONL path or an iterable of event dicts.  The fold
    re-applies exactly the tracer's own algorithm — children are adopted
    into their recorded parent at ``span.close`` time, aggregates merge
    by name — so for a complete single-threaded recording the result's
    :attr:`~ReplayResult.root` satisfies ``root.to_dict() ==
    live_root.to_dict()`` byte-for-byte.
    """
    events = load_events(source) if isinstance(source, str) else list(source)
    live: dict[int, tuple[Span, int | None, bool]] = {}
    roots: list[Span] = []
    for event in events:
        kind = event["type"]
        if kind == "trace.begin":
            span = Span(event["name"])
            live[event["id"]] = (span, None, False)
        elif kind == "span.open":
            span = Span(event["name"], **event.get("attrs", {}))
            live[event["id"]] = (
                span, event.get("parent"), bool(event.get("aggregate"))
            )
        elif kind == "span.close":
            entry = live.pop(event["id"], None)
            if entry is None:
                continue  # opened before the ring's horizon
            span, parent_id, aggregate = entry
            span.wall_s = event["wall_s"]
            span.calls = event.get("calls", 1)
            span.attrs = dict(event.get("attrs", {}))
            parent = live.get(parent_id) if parent_id is not None else None
            if parent is not None:
                parent[0].adopt(span, aggregate)
            else:
                roots.append(span)  # orphan: surface it as its own root
        elif kind == "trace.end":
            entry = live.pop(event["id"], None)
            if entry is None:
                continue
            span, __, __ = entry
            span.wall_s = event["wall_s"]
            roots.append(span)
    open_spans = [span for span, __, __ in live.values()]
    return ReplayResult(roots, open_spans, events)
