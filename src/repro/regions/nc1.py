"""The NC¹ decomposition of Appendix A.

For each DNF disjunct ψ of the input relation the decomposition computes:

1. ``vert(ψ)`` — every d-subset of the boundary hyperplanes 𝕳(ψ) meeting
   in exactly one point of closure(ψ) contributes a vertex (these are
   exactly the vertices of the closure, see below).
2. A boundedness test: with c the largest absolute vertex coordinate
   (falling back to ``vert'(ψ)`` — intersections with the coordinate
   hyperplanes — when ψ has no vertices), ψ is bounded iff it misses all
   2d hyperplanes ``x_i = ±2(c+1)`` of ``cube(ψ)``.
3. For bounded ψ: *inner* regions — open convex hulls of d+1 vertices
   including the lexicographically smallest vertex ``p_low``, kept when no
   segment from ``p_low`` to an unused vertex meets the hull — and *outer*
   regions — open convex hulls of at most d vertices whose pairwise
   segments avoid the relative interior of ψ.
4. For unbounded ψ: clip with the open cube ``icube(ψ)``, build the
   bounded regions of the clip, and add unbounded regions: for every pair
   ``(p, p-q)`` in ``up(ψ)`` (p a clip vertex on the cube boundary, the
   ray ``p + a(p-q)`` inside closure(ψ)) the open ray, plus the open
   convex hulls of up to d such rays.

``regions(S)`` is the deduplicated union over all disjuncts.  Unlike the
arrangement, these regions may overlap, may straddle S, and do not cover
ℝ^d (Section 7 discusses this).

A faithfulness note recorded in EXPERIMENTS.md: for the worked unbounded
example (Figure 10) the literal rules above also produce the chord
between the two cube-boundary clip vertices, which the paper's narrative
omits; we follow the rules.

Why ``vert(ψ)`` equals the closure's vertex set: every atom of ψ holds on
all of ψ, so no boundary hyperplane separates ψ; if d of them meet in a
single point p of the closure, any segment of the closure through p would
have to lie inside all d hyperplanes (a linear function bounded on a
segment and extremal at an interior point is constant), contradicting the
unique intersection — hence p is extreme.  Conversely an extreme point of
the closure has a rank-d tight subset.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterable, Sequence

from repro.errors import GeometryError
from repro.geometry.fourier_motzkin import LinearConstraint, Rel
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.linalg import (
    Vector,
    solve_unique,
    vec_sub,
)
from repro.errors import SingularSystemError
from repro.geometry.polyhedron import Polyhedron
from repro.geometry.vrep import VPolyhedron
from repro.constraints.formula import (
    Exists,
    Formula,
)
from repro.constraints.qelim import eliminate_quantifiers
from repro.constraints.relation import ConstraintRelation
from repro.regions.base import Decomposition, Region
from repro.regions.ordering import sort_regions

ZERO = Fraction(0)
ONE = Fraction(1)


class SimplexRegion(Region):
    """A region of the NC¹ decomposition: an open hull of points and rays."""

    def __init__(self, body: VPolyhedron, kind: str, disjunct: int) -> None:
        self.body = body
        self.kind = kind  # "inner" | "outer" | "ray" | "ray-hull"
        self.disjunct = disjunct
        self.index = -1  # assigned by the decomposition
        self._formula_cache: dict[tuple[str, ...], Formula] = {}

    @property
    def ambient_dimension(self) -> int:
        return self.body.dimension

    @property
    def dimension(self) -> int:
        return self.body.affine_dimension()

    def is_bounded(self) -> bool:
        return self.body.is_bounded()

    def sample_point(self) -> tuple[Fraction, ...]:
        return self.body.sample_point()

    def contains(self, point: Sequence[Fraction]) -> bool:
        return self.body.contains(point)

    def closure_contains_region(self, other: Region) -> bool:
        if isinstance(other, SimplexRegion):
            return other.body.subset_of_closure(self.body)
        raise TypeError("simplex regions only relate to simplex regions")

    def defining_formula(self, variables: Sequence[str]) -> Formula:
        """An H-representation formula, derived by quantifier elimination.

        Membership ``x ∈ openconv(points, rays)`` is ``∃λ ∃μ`` of a linear
        system; eliminating the generator coefficients yields a
        quantifier-free formula over the space variables.
        """
        key = tuple(variables)
        if key not in self._formula_cache:
            self._formula_cache[key] = self._derive_formula(key)
        return self._formula_cache[key]

    def _derive_formula(self, variables: tuple[str, ...]) -> Formula:
        from repro.constraints.atoms import atom_from_constraint
        from repro.constraints.formula import AtomFormula, conjunction

        if len(variables) != self.body.dimension:
            raise GeometryError("variable count != ambient dimension")
        points = self.body.points
        rays = self.body.rays
        lambdas = [f"__lam{i}" for i in range(len(points))]
        mus = [f"__mu{j}" for j in range(len(rays))]
        order = list(variables) + lambdas + mus
        n = len(order)
        d = self.body.dimension
        system: list[LinearConstraint] = []
        # x_axis - Σ λ_i p_i[axis] - Σ μ_j r_j[axis] = 0
        for axis in range(d):
            coeffs = [ZERO] * n
            coeffs[axis] = ONE
            for i, p in enumerate(points):
                coeffs[d + i] = -p[axis]
            for j, r in enumerate(rays):
                coeffs[d + len(points) + j] = -r[axis]
            system.append(LinearConstraint(tuple(coeffs), Rel.EQ, ZERO))
        coeffs = [ZERO] * n
        for i in range(len(points)):
            coeffs[d + i] = ONE
        system.append(LinearConstraint(tuple(coeffs), Rel.EQ, ONE))
        bound = Rel.LT if self.body.open_hull else Rel.LE
        for j in range(len(points) + len(rays)):
            coeffs = [ZERO] * n
            coeffs[d + j] = -ONE
            system.append(LinearConstraint(tuple(coeffs), bound, ZERO))

        body = conjunction(
            AtomFormula(atom_from_constraint(row, order)) for row in system
        )
        formula: Formula = body
        for helper in lambdas + mus:
            formula = Exists(helper, formula)
        return eliminate_quantifiers(formula)

    def sort_key(self) -> tuple:
        return ("simplex", self.body.points, self.body.rays)


def _coordinate_hyperplanes(dimension: int) -> list[Hyperplane]:
    basis = []
    for axis in range(dimension):
        normal = [ZERO] * dimension
        normal[axis] = ONE
        basis.append(Hyperplane.make(normal, 0))
    return basis


def _fallback_vertices(poly: Polyhedron) -> list[Vector]:
    """The paper's vert'(ψ): unique intersections of d-subsets of
    𝕳(ψ) ∪ {x_i = 0}, with no closure requirement."""
    planes = poly.constraint_hyperplanes() + _coordinate_hyperplanes(
        poly.dimension
    )
    seen: set[Vector] = set()
    points: list[Vector] = []
    for subset in itertools.combinations(planes, poly.dimension):
        matrix = [list(h.normal) for h in subset]
        rhs = [h.offset for h in subset]
        try:
            point = solve_unique(matrix, rhs)
        except SingularSystemError:
            continue
        if point not in seen:
            seen.add(point)
            points.append(point)
    return points


def _coordinate_bound(points: Iterable[Vector]) -> Fraction:
    c = ZERO
    for point in points:
        for coordinate in point:
            c = max(c, abs(coordinate))
    return c


def _cube_hyperplanes(dimension: int, c: Fraction) -> list[Hyperplane]:
    """cube(ψ): the 2d hyperplanes x_i = ±2(c+1)."""
    offset = 2 * (c + 1)
    planes = []
    for axis in range(dimension):
        normal = [ZERO] * dimension
        normal[axis] = ONE
        planes.append(Hyperplane.make(list(normal), offset))
        planes.append(Hyperplane.make(list(normal), -offset))
    return planes


def _icube_constraints(
    dimension: int, c: Fraction
) -> list[LinearConstraint]:
    """icube(ψ): the open cube |x_i| < 2(c+1)."""
    offset = 2 * (c + 1)
    rows = []
    for axis in range(dimension):
        coeffs = [ZERO] * dimension
        coeffs[axis] = ONE
        rows.append(LinearConstraint(tuple(coeffs), Rel.LT, offset))
        rows.append(
            LinearConstraint(tuple(-v for v in coeffs), Rel.LT, offset)
        )
    return rows


def _is_bounded_by_cube_test(poly: Polyhedron, c: Fraction) -> bool:
    """The paper's test: ψ is bounded iff it misses every cube hyperplane."""
    for plane in _cube_hyperplanes(poly.dimension, c):
        slab = poly.with_constraints(
            [LinearConstraint(plane.normal, Rel.EQ, plane.offset)]
        )
        if not slab.is_empty():
            return False
    return True


def _inner_regions(
    vertices: Sequence[Vector], dimension: int
) -> list[VPolyhedron]:
    """Open hulls of p_low plus d vertices, fan-style (Appendix A)."""
    if not vertices:
        return []
    p_low = min(vertices)
    others = [v for v in vertices if v != p_low]
    regions: list[VPolyhedron] = []
    seen: set[tuple] = set()
    for combo in itertools.combinations_with_replacement(
        vertices, dimension
    ):
        generators = {p_low, *combo}
        body = VPolyhedron.make(sorted(generators))
        if body.generator_key() in seen:
            continue
        unused = [
            q for q in others if q not in generators
        ]
        if any(body.meets_segment(p_low, q) for q in unused):
            continue
        seen.add(body.generator_key())
        regions.append(body)
    return regions


def _outer_regions(
    vertices: Sequence[Vector],
    dimension: int,
    interior: Polyhedron,
) -> list[VPolyhedron]:
    """Open hulls of ≤ d vertices avoiding the (relative) interior."""
    regions: list[VPolyhedron] = []
    seen: set[tuple] = set()
    for size in range(1, dimension + 1):
        for combo in itertools.combinations(vertices, size):
            body = VPolyhedron.make(combo)
            if body.generator_key() in seen:
                continue
            crosses = any(
                interior.meets_segment(p, q)
                for p, q in itertools.combinations(combo, 2)
            )
            if crosses:
                continue
            seen.add(body.generator_key())
            regions.append(body)
    return regions


def _bounded_regions(
    vertices: Sequence[Vector],
    dimension: int,
    interior: Polyhedron,
) -> list[tuple[VPolyhedron, str]]:
    """Inner and outer bodies, deduplicated, tagged with their kind.

    A body produced by both rules keeps the "outer" tag: in the paper's
    pentagon walkthrough the boundary edges incident to p_low are listed
    among the five outer regions even though the inner rule also yields
    them.  The region *set* is unaffected by the tag choice.
    """
    bodies = _outer_regions(vertices, dimension, interior)
    keys = {b.generator_key() for b in bodies}
    tagged = [(body, "outer") for body in bodies]
    for body in _inner_regions(vertices, dimension):
        if body.generator_key() not in keys:
            keys.add(body.generator_key())
            tagged.append((body, "inner"))
    return tagged


def _up_pairs(
    poly: Polyhedron,
    clip_vertices: Sequence[Vector],
    c: Fraction,
) -> list[tuple[Vector, Vector]]:
    """up(ψ): (vertex on the icube boundary, escape direction)."""
    offset = 2 * (c + 1)
    pairs: list[tuple[Vector, Vector]] = []
    for p in clip_vertices:
        if not any(abs(coordinate) == offset for coordinate in p):
            continue
        for q in clip_vertices:
            if q == p:
                continue
            direction = vec_sub(p, q)
            if poly.recession_ray_contains(p, direction):
                pairs.append((p, direction))
    return pairs


def decompose_disjunct(poly: Polyhedron) -> list[SimplexRegion]:
    """regions(ψ) for one DNF disjunct, per Appendix A."""
    if poly.is_empty():
        return []
    dimension = poly.dimension
    vertices = poly.vertices()
    if vertices:
        c = _coordinate_bound(vertices)
    else:
        c = _coordinate_bound(_fallback_vertices(poly))

    regions: list[SimplexRegion] = []
    if _is_bounded_by_cube_test(poly, c):
        interior = poly.relative_interior()
        for body, kind in _bounded_regions(vertices, dimension, interior):
            regions.append(SimplexRegion(body, kind, -1))
        return regions

    # Unbounded: clip with the open cube, then combine.
    clipped = poly.with_constraints(_icube_constraints(dimension, c))
    clip_vertices = clipped.vertices()
    interior = clipped.relative_interior()
    for body, kind in _bounded_regions(clip_vertices, dimension, interior):
        regions.append(SimplexRegion(body, kind, -1))

    rays = _up_pairs(poly, clip_vertices, c)
    ray_bodies = [
        VPolyhedron.make([p], rays=[direction]) for p, direction in rays
    ]
    seen = {body.generator_key() for body in ray_bodies}
    for body in ray_bodies:
        regions.append(SimplexRegion(body, "ray", -1))
    for size in range(2, dimension + 1):
        for combo in itertools.combinations(range(len(rays)), size):
            points = [rays[i][0] for i in combo]
            directions = [rays[i][1] for i in combo]
            body = VPolyhedron.make(points, rays=directions)
            if body.generator_key() in seen:
                continue
            seen.add(body.generator_key())
            regions.append(SimplexRegion(body, "ray-hull", -1))
    return regions


def decompose_nc1(relation: ConstraintRelation) -> list[SimplexRegion]:
    """regions(S): deduplicated union of regions(ψ_i) over all disjuncts."""
    all_regions: list[SimplexRegion] = []
    seen: set[tuple] = set()
    for disjunct_index, poly in enumerate(relation.polyhedra()):
        for region in decompose_disjunct(poly):
            key = region.body.generator_key()
            if key in seen:
                continue
            seen.add(key)
            region.disjunct = disjunct_index
            all_regions.append(region)
    return all_regions


class NC1Decomposition(Decomposition):
    """regions(S) from Appendix A, in the canonical region order."""

    def __init__(self, relation: ConstraintRelation) -> None:
        regions = sort_regions(decompose_nc1(relation))
        for index, region in enumerate(regions):
            region.index = index
        super().__init__(relation, regions)
