"""Diagnostic validation of region decompositions.

A decomposition feeding the two-sorted logics must satisfy structural
invariants; this module checks them explicitly and reports violations —
useful both as a library self-check and for users implementing custom
decompositions against :class:`repro.regions.base.Decomposition`
(Section 8: "other decompositions could also be used, provided ...").

Checked invariants:

* indices are dense and canonical (match the region order);
* every region's sample point lies in the region;
* adjacency is irreflexive, symmetric, and only relates regions of
  different dimensions (the paper's remark after Definition 4.1);
* ``region_subset_of_relation`` is consistent with the geometry
  (region ∖ S empty exactly when reported);
* for *partitioning* decompositions (the arrangement): probe points lie
  in exactly one region and region membership classifies S-membership.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

from repro.regions.base import Decomposition
from repro.regions.ordering import region_sort_key


@dataclass
class ValidationReport:
    """Outcome of a decomposition validation run."""

    violations: list[str] = field(default_factory=list)
    checks: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def note(self, condition: bool, message: str) -> None:
        self.checks += 1
        if not condition:
            self.violations.append(message)

    def __str__(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [f"validation {status}: {self.checks} checks"]
        lines.extend(f"  - {v}" for v in self.violations)
        return "\n".join(lines)


def validate_decomposition(
    decomposition: Decomposition,
    probes: Sequence[tuple[Fraction, ...]] = (),
    expect_partition: bool = False,
) -> ValidationReport:
    """Run the invariant checks; returns a report (never raises)."""
    report = ValidationReport()
    regions = decomposition.regions

    report.note(
        [r.index for r in regions] == list(range(len(regions))),
        "region indices are not dense 0..n-1",
    )
    keys = [region_sort_key(r) for r in regions]
    report.note(
        keys == sorted(keys),
        "regions are not in canonical order",
    )

    for region in regions:
        report.note(
            region.contains(region.sample_point()),
            f"region {region.index}: sample point not in region",
        )
        report.note(
            region.dimension <= region.ambient_dimension,
            f"region {region.index}: dimension exceeds ambient",
        )

    for left in regions:
        report.note(
            not decomposition.adjacent(left.index, left.index),
            f"region {left.index} adjacent to itself",
        )
        for right in regions:
            if left.index >= right.index:
                continue
            forward = decomposition.adjacent(left.index, right.index)
            backward = decomposition.adjacent(right.index, left.index)
            report.note(
                forward == backward,
                f"adjacency asymmetric at ({left.index}, {right.index})",
            )
            if forward:
                report.note(
                    left.dimension != right.dimension,
                    "adjacent regions share a dimension "
                    f"({left.index}, {right.index})",
                )

    relation = decomposition.relation
    for region in regions:
        reported = decomposition.region_subset_of_relation(region.index)
        actual = region.as_relation(
            relation.variables
        ).difference(relation).is_empty()
        report.note(
            reported == actual,
            f"region {region.index}: subset-of-S bit inconsistent",
        )

    for probe in probes:
        holders = decomposition.regions_containing(probe)
        if expect_partition:
            report.note(
                len(holders) == 1,
                f"probe {tuple(map(str, probe))} in {len(holders)} regions "
                "(expected exactly 1)",
            )
            if len(holders) == 1:
                inside = decomposition.region_subset_of_relation(
                    holders[0].index
                )
                report.note(
                    inside == relation.contains(probe),
                    f"probe {tuple(map(str, probe))}: region membership "
                    "does not classify S-membership",
                )
    return report
