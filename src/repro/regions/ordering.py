"""The deterministic total order on regions.

Theorem 6.4's proof orders regions to drive the word encoding of the
database: bounded regions come before unbounded ones; within each class
lower dimensions come first; 0-dimensional regions are ordered by the
lexicographic order of the points they contain.  For higher-dimensional
regions the paper sketches an order via tuples of 0-dimensional regions;
we implement a documented deterministic refinement (see DESIGN.md §5):
the key of a region is

    (unbounded?, dimension, region-specific canonical key)

where the canonical key is the lexicographic sample point for
0-dimensional regions (exactly the paper's order) and the region's
canonical identity key otherwise (position vector for arrangement faces,
sorted generators for simplex regions).  The properties the proofs use —
totality, determinism given the representation, lexicographic order on
0-dimensional regions — all hold.

Keys only ever compare within one decomposition, whose regions share one
representation type, so the mixed tuples stay comparable.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.regions import base

R = TypeVar("R", bound="base.Region")


def region_sort_key(region: "base.Region") -> tuple:
    """The canonical sort key described in the module docstring."""
    if region.dimension == 0:
        anchor: tuple = ("point", region.sample_point())
    else:
        anchor = region.sort_key()
    return (not region.is_bounded(), region.dimension, anchor)


def sort_regions(regions: Sequence[R]) -> list[R]:
    """Regions in the canonical order of the capture construction."""
    return sorted(regions, key=region_sort_key)
