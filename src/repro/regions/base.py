"""The uniform region interface shared by both decompositions.

A :class:`Region` is a connected subset of ℝ^d with the operations the
two-sorted structure and the logics need: exact membership, a defining
quantifier-free formula (so region atoms stay inside FO+LIN), closure
containment (the basis of Definition 4.1's adjacency), and metadata
(dimension, boundedness, a canonical sort key).

A :class:`Decomposition` is a finite, canonically ordered family of
regions over an ambient space, with cached adjacency and relation
containment.
"""

from __future__ import annotations

import abc
from fractions import Fraction
from typing import Iterator, Sequence

from repro.errors import GeometryError
from repro.constraints.formula import Formula
from repro.constraints.relation import ConstraintRelation


class Region(abc.ABC):
    """A connected subset of ℝ^d usable as a second-sort element."""

    index: int

    @property
    @abc.abstractmethod
    def ambient_dimension(self) -> int:
        """The dimension d of the surrounding space."""

    @property
    @abc.abstractmethod
    def dimension(self) -> int:
        """Dimension of the region's affine support."""

    @abc.abstractmethod
    def is_bounded(self) -> bool:
        """Does the region fit inside some hypercube?"""

    @abc.abstractmethod
    def sample_point(self) -> tuple[Fraction, ...]:
        """A rational point of the region."""

    @abc.abstractmethod
    def contains(self, point: Sequence[Fraction]) -> bool:
        """Exact membership of a rational point (the ∈ relation)."""

    @abc.abstractmethod
    def closure_contains_region(self, other: "Region") -> bool:
        """Is ``other`` a subset of this region's closure?"""

    @abc.abstractmethod
    def defining_formula(self, variables: Sequence[str]) -> Formula:
        """A quantifier-free formula defining exactly this region."""

    @abc.abstractmethod
    def sort_key(self) -> tuple:
        """A canonical, deterministic identity/sort key."""

    def as_relation(self, variables: Sequence[str]) -> ConstraintRelation:
        """The region as a constraint relation over ``variables``."""
        return ConstraintRelation.make(
            tuple(variables), self.defining_formula(variables)
        )

    def adjacent_to(self, other: "Region") -> bool:
        """Definition 4.1: adjacency via the closure characterisation."""
        if self is other or self.sort_key() == other.sort_key():
            return False
        return self.closure_contains_region(other) or \
            other.closure_contains_region(self)

    def __str__(self) -> str:
        kind = "bounded" if self.is_bounded() else "unbounded"
        return (
            f"region#{self.index}(dim={self.dimension}, {kind}, "
            f"sample={tuple(map(str, self.sample_point()))})"
        )


class Decomposition(abc.ABC):
    """A finite region family over ℝ^d, derived from one relation."""

    def __init__(
        self, relation: ConstraintRelation, regions: Sequence[Region]
    ) -> None:
        self._relation = relation
        self._regions = tuple(regions)
        self._adjacency: dict[tuple[int, int], bool] = {}
        self._subset_of_relation: dict[int, bool] = {}

    @property
    def relation(self) -> ConstraintRelation:
        """The input relation S the decomposition was derived from."""
        return self._relation

    @property
    def ambient_dimension(self) -> int:
        return self._relation.arity

    @property
    def regions(self) -> tuple[Region, ...]:
        return self._regions

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def region(self, index: int) -> Region:
        return self._regions[index]

    # ------------------------------------------------------------------
    # Cached relations of the two-sorted structure
    # ------------------------------------------------------------------
    def adjacent(self, left: int, right: int) -> bool:
        """The adj relation between region indices (cached, symmetric)."""
        if left == right:
            return False
        key = (min(left, right), max(left, right))
        if key not in self._adjacency:
            self._adjacency[key] = self._regions[key[0]].adjacent_to(
                self._regions[key[1]]
            )
        return self._adjacency[key]

    def region_subset_of_relation(self, index: int) -> bool:
        """Is region ``index`` entirely contained in S?  (Cached.)

        For arrangement faces this is the stored in-or-out bit; the
        generic implementation tests the region against the complement of
        S disjunct by disjunct.
        """
        if index not in self._subset_of_relation:
            self._subset_of_relation[index] = self._compute_subset(index)
        return self._subset_of_relation[index]

    def _compute_subset(self, index: int) -> bool:
        region_rel = self._regions[index].as_relation(
            self._relation.variables
        )
        return region_rel.difference(self._relation).is_empty()

    # ------------------------------------------------------------------
    # Census helpers (used by experiments)
    # ------------------------------------------------------------------
    def count_by_dimension(self) -> dict[int, int]:
        census: dict[int, int] = {}
        for region in self._regions:
            census[region.dimension] = census.get(region.dimension, 0) + 1
        return census

    def zero_dimensional(self) -> list[Region]:
        """0-dimensional regions in their canonical (lexicographic) order."""
        points = [r for r in self._regions if r.dimension == 0]
        return sorted(points, key=lambda r: r.sample_point())

    def regions_containing(self, point: Sequence[Fraction]) -> list[Region]:
        if len(point) != self.ambient_dimension:
            raise GeometryError("point dimension mismatch")
        return [r for r in self._regions if r.contains(point)]

    def covers(self, point: Sequence[Fraction]) -> bool:
        """Does some region contain the point?

        True for every point under the arrangement decomposition (it
        partitions ℝ^d); possibly false under the NC¹ decomposition.
        """
        return bool(self.regions_containing(point))
