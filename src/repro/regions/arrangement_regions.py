"""Arrangement-backed regions (the decomposition of Sections 3-6).

Regions are the faces of A(S).  All region predicates reduce to the
combinatorics of position vectors, so they are fast and exact; the
defining formula of a face is the conjunction of atoms read off its
position vector (as in the proof of Theorem 4.3).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.geometry.hyperplane import Hyperplane
from repro.constraints.formula import Formula
from repro.constraints.relation import ConstraintRelation
from repro.arrangement.adjacency import signs_in_closure
from repro.arrangement.builder import Arrangement, build_arrangement
from repro.arrangement.faces import Face
from repro.regions.base import Decomposition, Region
from repro.regions.ordering import sort_regions


class ArrangementRegion(Region):
    """A face of the arrangement, viewed through the region interface."""

    def __init__(
        self,
        face: Face,
        hyperplanes: tuple[Hyperplane, ...],
    ) -> None:
        self.face = face
        self.index = face.index
        self._hyperplanes = hyperplanes
        self._bounded: bool | None = None

    @property
    def ambient_dimension(self) -> int:
        return len(self.face.sample)

    @property
    def dimension(self) -> int:
        return self.face.dimension

    def is_bounded(self) -> bool:
        if self._bounded is None:
            self._bounded = self.face.polyhedron(
                self._hyperplanes
            ).is_bounded()
        return self._bounded

    def sample_point(self) -> tuple[Fraction, ...]:
        return self.face.sample

    def contains(self, point: Sequence[Fraction]) -> bool:
        return self.face.contains(self._hyperplanes, point)

    def closure_contains_region(self, other: Region) -> bool:
        if isinstance(other, ArrangementRegion):
            return signs_in_closure(other.face.signs, self.face.signs)
        raise TypeError(
            "arrangement regions only relate to arrangement regions"
        )

    def defining_formula(self, variables: Sequence[str]) -> Formula:
        return self.face.defining_formula(self._hyperplanes, variables)

    def sort_key(self) -> tuple:
        return ("face", self.face.signs)

    @property
    def in_relation(self) -> bool:
        """The stored in-or-out bit of the face."""
        return self.face.in_relation


class ArrangementDecomposition(Decomposition):
    """regions(S) = faces of A(S), in the canonical region order."""

    def __init__(self, relation: ConstraintRelation,
                 arrangement: Arrangement | None = None,
                 extra_hyperplanes: "tuple[Hyperplane, ...] | None" = None,
                 ) -> None:
        if arrangement is None:
            arrangement = build_arrangement(
                relation, hyperplanes=extra_hyperplanes
            )
        self.arrangement = arrangement
        wrapped = [
            ArrangementRegion(face, self.arrangement.hyperplanes)
            for face in self.arrangement.faces
        ]
        ordered = sort_regions(wrapped)
        # Re-index in canonical order; keep the face objects intact.
        regions: list[ArrangementRegion] = []
        for index, region in enumerate(ordered):
            fresh = ArrangementRegion(
                region.face, self.arrangement.hyperplanes
            )
            fresh.index = index
            regions.append(fresh)
        super().__init__(relation, regions)

    def _compute_subset(self, index: int) -> bool:
        # Faces are contained in or disjoint from S; the bit is stored.
        region = self.regions[index]
        assert isinstance(region, ArrangementRegion)
        return region.in_relation

    def locate(self, point: Sequence[Fraction]) -> ArrangementRegion:
        """The unique region containing a point (faces partition ℝ^d)."""
        face = self.arrangement.locate(point)
        for region in self.regions:
            assert isinstance(region, ArrangementRegion)
            if region.face.signs == face.signs:
                return region
        raise AssertionError("face missing from decomposition")  # pragma: no cover
