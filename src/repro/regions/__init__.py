"""Region decompositions of the input space.

The paper's two-sorted structures take as second sort a finite set of
*regions* — connected subsets of ℝ^d derived from the input relation.
Two decompositions are used:

* the **arrangement decomposition** (Sections 3-6): regions are the faces
  of the arrangement A(S); they partition ℝ^d and each is contained in or
  disjoint from S (:mod:`repro.regions.arrangement_regions`);
* the **NC¹ decomposition** (Section 7 and Appendix A): regions are open
  convex hulls of vertex tuples (plus rays for unbounded polyhedra),
  computed separately per DNF disjunct; regions may overlap and do not
  cover ℝ^d, but the construction is NC¹-computable
  (:mod:`repro.regions.nc1`).

Both implement the uniform :class:`repro.regions.base.Region` interface
consumed by the two-sorted structure and the logics, plus the
deterministic region ordering (:mod:`repro.regions.ordering`) that rBIT
and the capture encoding rely on.
"""

from repro.regions.base import Decomposition, Region
from repro.regions.arrangement_regions import (
    ArrangementDecomposition,
    ArrangementRegion,
)
from repro.regions.nc1 import NC1Decomposition, SimplexRegion, decompose_nc1
from repro.regions.ordering import region_sort_key, sort_regions
from repro.regions.validate import ValidationReport, validate_decomposition

__all__ = [
    "ValidationReport",
    "validate_decomposition",
    "Decomposition",
    "Region",
    "ArrangementDecomposition",
    "ArrangementRegion",
    "NC1Decomposition",
    "SimplexRegion",
    "decompose_nc1",
    "region_sort_key",
    "sort_regions",
]
