"""Client-side helpers: run a service in-process and drive load at it.

Everything downstream of the server — the concurrency tests, the CI
smoke job and ``benchmarks/bench_server.py`` — needs the same two
things: a way to run a :class:`ConstraintService` on a background
event loop bound to an ephemeral port, and a plain blocking HTTP
client to hit it from worker threads.  Both live here so the bench and
the tests measure the identical code path.

Only the stdlib is used (:mod:`http.client`, :mod:`threading`).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.obs.telemetry import quantile
from repro.server.http import HttpServer
from repro.server.service import ConstraintService, serve


class ServerThread:
    """Run a service on a dedicated event-loop thread (context manager).

    ::

        service = ConstraintService({"db": database})
        with ServerThread(service) as server:
            status, body = post_json(server.port, "/v1/query",
                                     {"query": "S(x0)"})

    The port is ephemeral; ``__enter__`` blocks until it is bound.
    Exit requests a graceful shutdown and joins the thread.
    """

    def __init__(
        self,
        service: ConstraintService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._failure: BaseException | None = None

    def _announce(self, server: HttpServer) -> None:
        self._loop = asyncio.get_running_loop()
        self.port = server.port
        self._ready.set()

    def _run(self) -> None:
        try:
            asyncio.run(
                serve(self.service, self.host, self.port, self._announce)
            )
        except BaseException as error:  # pragma: no cover - startup bugs
            self._failure = error
        finally:
            self._ready.set()  # never leave __enter__ hanging

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._failure is not None:
            raise RuntimeError("server failed to start") from self._failure
        if not self._ready.is_set():  # pragma: no cover - hang guard
            raise RuntimeError("server did not bind within 30s")
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._thread is None:
            return
        # The loop owns the shutdown event; poke it from our thread.
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.service.request_shutdown)
        else:  # pragma: no cover - loop already gone
            self.service.request_shutdown()
        self._thread.join(timeout=30.0)

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"


def request_json(
    port: int,
    method: str,
    path: str,
    payload: Any = None,
    tenant: str | None = None,
    host: str = "127.0.0.1",
    timeout: float = 60.0,
) -> tuple[int, Any]:
    """One blocking HTTP exchange; returns ``(status, parsed body)``."""
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        headers = {"Content-Type": "application/json"}
        if tenant is not None:
            headers["X-Repro-Tenant"] = tenant
        body = None if payload is None else json.dumps(payload)
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        try:
            parsed = json.loads(raw) if raw else {}
        except ValueError:  # pragma: no cover - server always sends JSON
            parsed = {"raw": raw.decode("latin-1")}
        return response.status, parsed
    finally:
        connection.close()


def post_json(
    port: int,
    path: str,
    payload: Any,
    tenant: str | None = None,
    **kwargs: Any,
) -> tuple[int, Any]:
    return request_json(port, "POST", path, payload, tenant, **kwargs)


def get_json(port: int, path: str, **kwargs: Any) -> tuple[int, Any]:
    return request_json(port, "GET", path, None, **kwargs)


def get_text(
    port: int,
    path: str,
    host: str = "127.0.0.1",
    timeout: float = 60.0,
) -> tuple[int, str]:
    """One blocking GET returning the raw text body (no JSON parsing).

    This is how clients scrape ``GET /metrics``, whose body is the
    Prometheus text exposition format, not JSON.
    """
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        connection.close()


def run_load(
    port: int,
    requests: Sequence[dict[str, Any]],
    concurrency: int = 8,
    tenant: str | None = None,
    path: str = "/v1/query",
) -> list[dict[str, Any]]:
    """POST every payload with ``concurrency`` worker threads.

    Returns one record per request, in input order:
    ``{"status", "wall_s", "body"}`` — ``wall_s`` is the client-side
    end-to-end latency of that exchange.
    """
    import time

    def one(payload: dict[str, Any]) -> dict[str, Any]:
        started = time.perf_counter()
        status, body = post_json(port, path, payload, tenant=tenant)
        return {
            "status": status,
            "wall_s": time.perf_counter() - started,
            "body": body,
        }

    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        return list(pool.map(one, requests))


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of raw samples.

    A thin shim over :func:`repro.obs.telemetry.quantile` — the one
    nearest-rank implementation shared with the server's histograms —
    kept under its historical name for existing callers.  Unlike the
    shared helper it still rejects empty input (a load run that
    produced no samples is a bug worth hearing about).
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    return quantile(values, q)


Announce = Callable[[HttpServer], None]
