"""Admission control: per-tenant token buckets and bounded queueing.

The service never "collapses under load" — it sheds it, visibly:

* **per-tenant quotas** — each tenant (the ``X-Repro-Tenant`` header,
  default ``"public"``) owns a token bucket refilled at ``rate``
  requests/second up to ``burst``.  An empty bucket is a **429** with a
  ``retry_after_s`` hint; one tenant's burst cannot starve another's
  bucket.
* **bounded concurrency** — at most ``max_concurrent`` requests
  evaluate at once (queries are CPU-bound; more threads would only
  thrash), with at most ``max_queue`` requests waiting behind them.  A
  full queue is a **503**: the caller learns the depth instead of
  watching a socket time out.

Both rejection paths are structured errors (:class:`QuotaExceeded`,
:class:`Overloaded`) that the HTTP layer renders as JSON, and both are
counted (``server.rejected.quota`` / ``server.rejected.overload``
against ``server.admitted``).
"""

from __future__ import annotations

import asyncio
import time
from contextlib import asynccontextmanager
from typing import AsyncIterator, Callable

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.telemetry import TelemetryRegistry, get_telemetry

#: Tenant used when a request names none.
DEFAULT_TENANT = "public"


class AdmissionError(Exception):
    """Base class for structured admission rejections."""

    status = 503
    code = "rejected"


class QuotaExceeded(AdmissionError):
    """Tenant bucket empty: reject with a retry hint (HTTP 429)."""

    status = 429
    code = "quota_exceeded"

    def __init__(self, tenant: str, retry_after_s: float) -> None:
        super().__init__(
            f"tenant {tenant!r} exceeded its request quota"
        )
        self.tenant = tenant
        self.retry_after_s = round(max(retry_after_s, 0.001), 3)


class Overloaded(AdmissionError):
    """Wait queue full: reject instead of queueing unboundedly (503)."""

    status = 503
    code = "overloaded"

    def __init__(self, queue_depth: int) -> None:
        super().__init__(
            f"server over capacity ({queue_depth} requests already queued)"
        )
        self.queue_depth = queue_depth


class TokenBucket:
    """A classic token bucket (``rate`` tokens/s, ``burst`` capacity).

    ``clock`` is injectable so tests can drive time deterministically.
    Single-threaded use only (the asyncio event loop); no locking.
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive (requests/second)")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self) -> bool:
        """Take one token if available."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after_s(self) -> float:
        """Seconds until one token will be available."""
        self._refill()
        missing = max(0.0, 1.0 - self._tokens)
        return missing / self.rate

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


class AdmissionController:
    """Quota + concurrency + queue-depth gate for the request path."""

    def __init__(
        self,
        max_concurrent: int = 4,
        max_queue: int = 64,
        quota_rate: float = 50.0,
        quota_burst: int = 100,
        metrics: MetricsRegistry | None = None,
        telemetry: TelemetryRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be at least 1")
        if max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.quota_rate = quota_rate
        self.quota_burst = quota_burst
        self._clock = clock
        self._semaphore = asyncio.Semaphore(max_concurrent)
        self._waiting = 0
        self._active = 0
        self._buckets: dict[str, TokenBucket] = {}
        registry = metrics if metrics is not None else get_registry()
        self._c_admitted = registry.counter("server.admitted")
        self._c_quota = registry.counter("server.rejected.quota")
        self._c_overload = registry.counter("server.rejected.overload")
        series = telemetry if telemetry is not None else get_telemetry()
        #: Live admission levels, mirrored as gauges for ``/metrics``.
        self._g_active = series.gauge("server.admission.active")
        self._g_waiting = series.gauge("server.admission.waiting")

    def bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                self.quota_rate, self.quota_burst, clock=self._clock
            )
            self._buckets[tenant] = bucket
        return bucket

    @asynccontextmanager
    async def admit(self, tenant: str = DEFAULT_TENANT) -> AsyncIterator[None]:
        """Admit one request, or raise a structured rejection.

        Quota is charged before queueing (a rejected request must not
        consume a slot), and the queue check counts only requests that
        would actually have to wait.
        """
        bucket = self.bucket(tenant)
        if not bucket.try_acquire():
            self._c_quota.inc()
            raise QuotaExceeded(tenant, bucket.retry_after_s())
        if self._semaphore.locked() and self._waiting >= self.max_queue:
            self._c_overload.inc()
            raise Overloaded(self._waiting)
        self._waiting += 1
        self._g_waiting.set(self._waiting)
        try:
            await self._semaphore.acquire()
        finally:
            self._waiting -= 1
            self._g_waiting.set(self._waiting)
        self._active += 1
        self._g_active.set(self._active)
        self._c_admitted.inc()
        try:
            yield
        finally:
            self._active -= 1
            self._g_active.set(self._active)
            self._semaphore.release()

    def stats(self) -> dict[str, object]:
        return {
            "max_concurrent": self.max_concurrent,
            "max_queue": self.max_queue,
            "quota_rate": self.quota_rate,
            "quota_burst": self.quota_burst,
            "active": self._active,
            "waiting": self._waiting,
            "tenants": sorted(self._buckets),
            "admitted": self._c_admitted.value,
            "rejected_quota": self._c_quota.value,
            "rejected_overload": self._c_overload.value,
        }
