"""Minimal asyncio HTTP/1.1 layer (stdlib only, JSON in/out).

The service needs exactly enough HTTP to speak JSON over TCP with
keep-alive — not a framework.  This module implements that floor by
hand on :mod:`asyncio` streams:

* request line + headers + ``Content-Length`` bodies (no chunked
  uploads, no multipart — the API is small JSON documents);
* bounded header/body sizes and a per-request read timeout, so a slow
  or hostile client cannot pin a connection open forever;
* HTTP/1.1 keep-alive (``Connection: close`` honoured both ways);
* structured JSON errors: every failure the layer itself produces is a
  body of the form ``{"error": {"code": ..., "message": ...}}``.

The handler passed to :class:`HttpServer` is an ``async`` callable
``Request -> Response``; anything it raises that is not an
:class:`HttpError` becomes a 500 with the exception class name.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable
from urllib.parse import parse_qsl, urlsplit

#: Hard caps keeping one request's memory bounded.
MAX_HEADER_BYTES = 32_768
MAX_BODY_BYTES = 4_194_304  # 4 MiB of JSON is far beyond any sane query

#: Seconds a client may take to deliver one full request.
READ_TIMEOUT_S = 30.0

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """An error with an HTTP status and a structured JSON body."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        **extra: Any,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.extra = extra

    def to_response(self) -> "Response":
        body = {"code": self.code, "message": str(self)}
        body.update(self.extra)
        return Response(self.status, {"error": body})


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]  # keys lower-cased
    body: bytes

    def json(self) -> Any:
        """The body as JSON (``{}`` when empty); 400 on malformed input."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as error:
            raise HttpError(
                400, "malformed_json", f"request body is not JSON: {error}"
            ) from None

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class Response:
    """A response: JSON ``payload`` or, when ``text`` is set, raw text.

    ``text`` bypasses JSON serialisation entirely — it is sent verbatim
    as ``text/plain`` (override the content type via ``headers``).  The
    ``/metrics`` endpoint uses this for the Prometheus exposition format.
    """

    status: int = 200
    payload: Any = None
    headers: dict[str, str] = field(default_factory=dict)
    text: str | None = None


def encode(response: Response, keep_alive: bool) -> bytes:
    """Serialise a :class:`Response` to wire bytes."""
    if response.text is not None:
        body = response.text.encode("utf-8")
        content_type = "text/plain; charset=utf-8"
    else:
        body = json.dumps(
            response.payload if response.payload is not None else {},
            default=str,
        ).encode() + b"\n"
        content_type = "application/json"
    reason = REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    headers = {
        "content-type": content_type,
        "content-length": str(len(body)),
        "connection": "keep-alive" if keep_alive else "close",
    }
    headers.update(
        {name.lower(): value for name, value in response.headers.items()}
    )
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request; ``None`` on a clean EOF before any bytes."""
    try:
        header_blob = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), READ_TIMEOUT_S
        )
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean keep-alive close
        raise HttpError(400, "truncated_request", "incomplete request head")
    except asyncio.LimitOverrunError:
        raise HttpError(413, "headers_too_large", "request head too large")
    except asyncio.TimeoutError:
        raise HttpError(408, "timeout", "timed out reading request head")
    if len(header_blob) > MAX_HEADER_BYTES:
        raise HttpError(413, "headers_too_large", "request head too large")
    head = header_blob.decode("latin-1").split("\r\n")
    parts = head[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "bad_request_line", f"bad request line {head[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    headers: dict[str, str] = {}
    for line in head[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, "bad_header", f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "bad_content_length",
                            "content-length is not an integer")
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError(413, "body_too_large",
                            f"body of {length} bytes exceeds the limit")
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), READ_TIMEOUT_S
                )
            except asyncio.IncompleteReadError:
                raise HttpError(400, "truncated_body",
                                "connection closed mid-body")
            except asyncio.TimeoutError:
                raise HttpError(408, "timeout",
                                "timed out reading request body")
    return Request(
        method=method.upper(),
        path=split.path,
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


Handler = Callable[[Request], Awaitable[Response]]


class HttpServer:
    """An asyncio TCP server speaking the JSON dialect above."""

    def __init__(self, handler: Handler, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.handler = handler
        self.host = host
        self.port = port  # 0 = ephemeral; replaced by the bound port
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()

    async def start(self) -> "HttpServer":
        self._server = await asyncio.start_server(
            self._serve_client, self.host, self.port,
            limit=MAX_HEADER_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._connections:
            for task in tuple(self._connections):
                task.cancel()
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
            self._connections.clear()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def _serve_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                keep_alive = False
                try:
                    request = await read_request(reader)
                    if request is None:
                        break
                    keep_alive = request.keep_alive
                    response = await self.handler(request)
                except HttpError as error:
                    response = error.to_response()
                except asyncio.CancelledError:
                    raise
                except Exception as error:  # noqa: BLE001 - boundary
                    response = Response(500, {"error": {
                        "code": "internal_error",
                        "message": f"{type(error).__name__}: {error}",
                    }})
                writer.write(encode(response, keep_alive))
                await writer.drain()
                if not keep_alive or response.status in (400, 408, 413):
                    break  # framing may be lost after a malformed request
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-exchange
        except asyncio.CancelledError:
            # Server shutdown: end the task normally so the streams
            # machinery does not log a spurious CancelledError.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError,
                    BrokenPipeError,
                    OSError):  # pragma: no cover - teardown race
                pass
