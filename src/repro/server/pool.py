"""A pool of warm :class:`QueryEngine` instances over shared caches.

The expensive, immutable artifacts — arrangements, region extensions,
disk-store entries — live in **one** :class:`~repro.engine.EngineCache`
and **one** :class:`~repro.store.disk.DiskStore` shared by every engine
the pool hands out.  The per-engine state (the memoising evaluator and
the per-query answer LRU) is what makes checkout exclusive: an engine
is used by one request at a time, then returned warm, so the next
request against the same database fingerprint inherits its evaluator
memo.  This is the "requests against the same arrangement share a warm
engine" half of request batching; the single-flight build inside
:class:`EngineCache` is the other half.
"""

from __future__ import annotations

import threading

from repro.config import EngineConfig
from repro.constraints.database import ConstraintDatabase
from repro.engine import EngineCache, QueryEngine, database_fingerprint
from repro.obs.metrics import MetricsRegistry, get_registry


class EnginePool:
    """Checkout/checkin of warm engines, keyed by database fingerprint."""

    def __init__(
        self,
        config: EngineConfig,
        cache: EngineCache | None = None,
        metrics: MetricsRegistry | None = None,
        max_idle_per_key: int = 8,
    ) -> None:
        self.config = config
        #: The shared cross-engine cache (explicit — never the implicit
        #: process-global one).
        self.cache = cache if cache is not None else config.make_cache(
            metrics=metrics
        )
        self.max_idle_per_key = max_idle_per_key
        self._idle: dict[tuple, list[QueryEngine]] = {}
        self._lock = threading.Lock()
        registry = metrics if metrics is not None else get_registry()
        self._c_created = registry.counter("server.pool.created")
        self._c_reused = registry.counter("server.pool.reused")

    @staticmethod
    def _key(
        database: ConstraintDatabase, decomposition: str, spatial_name: str
    ) -> tuple:
        return (
            database_fingerprint(database), decomposition, spatial_name
        )

    def checkout(
        self,
        database: ConstraintDatabase,
        decomposition: str = "arrangement",
        spatial_name: str = "S",
    ) -> QueryEngine:
        """An engine for this database — warm if one is idle."""
        key = self._key(database, decomposition, spatial_name)
        with self._lock:
            idle = self._idle.get(key)
            if idle:
                self._c_reused.inc()
                return idle.pop()
        self._c_created.inc()
        return QueryEngine(
            database,
            decomposition,
            spatial_name,
            cache=self.cache,
            config=self.config,
        )

    def checkin(self, engine: QueryEngine) -> None:
        """Return an engine to the idle set (bounded per key)."""
        key = (
            engine.fingerprint, engine.decomposition, engine.spatial_name
        )
        with self._lock:
            idle = self._idle.setdefault(key, [])
            if len(idle) < self.max_idle_per_key:
                idle.append(engine)

    def stats(self) -> dict[str, object]:
        with self._lock:
            idle = {key[0][:12]: len(v) for key, v in self._idle.items()}
        return {
            "created": self._c_created.value,
            "reused": self._c_reused.value,
            "idle": idle,
            "engine_cache": self.cache.stats(),
        }
