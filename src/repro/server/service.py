"""`ConstraintService` — the async multi-tenant query service.

One service owns:

* a set of named, immutable :class:`ConstraintDatabase`\\ s (the first
  one registered is also aliased ``"default"``);
* an :class:`~repro.server.pool.EnginePool` over **one** shared
  :class:`~repro.engine.EngineCache` and disk store;
* an :class:`~repro.server.quota.AdmissionController` (per-tenant token
  buckets, bounded concurrency and queue depth);
* the process journal, scoped per request via
  :func:`repro.obs.journal.journal_context` — every event a request
  causes carries its ``request`` id and ``tenant``, which turns the
  JSONL sink into an audit log.

Endpoints (all JSON; see docs/SERVER.md for full schemas):

=========================  ===========================================
``POST /v1/query``         evaluate a query; body ``{"query": ...,
                           "database": "name"?, "tenant": ...?}``
``POST /v1/explain``       EXPLAIN (ANALYZE) a query; body adds
                           ``{"analyze": bool}``
``POST /v1/update``        apply a write; body ``{"delta":
                           [[action, relation, formula], ...],
                           "database": "name"?}``
``GET /v1/healthz``        liveness + the registered databases
``GET /v1/stats``          admission/pool/cache/store/journal counters,
                           per-tenant SLO burn rates, slow-log status
``GET /metrics``           Prometheus text exposition (counters,
                           gauges, histograms; tenant/endpoint labels)
=========================  ===========================================

Evaluation is CPU-bound exact arithmetic, so requests run on worker
threads (``asyncio.to_thread``) while the event loop keeps accepting
connections; cold arrangement builds are **single-flight** at two
layers (an async future per fingerprint here, a per-key event inside
``EngineCache``), so a thundering herd on one database computes its
region extension exactly once.

Writes go through :meth:`QueryEngine.apply_delta` — incremental view
maintenance, not rebuild-and-swap — serialised behind one update lock
while reads keep flowing: a read resolves its database object once,
and the write path swaps every alias to the post-delta object in one
step, so a concurrent read sees the old version or the new one in
full, never a torn mix (the returned ``fingerprint`` says which).
"""

from __future__ import annotations

import asyncio
import itertools
import time
from typing import Any, Awaitable, Callable, Mapping

from repro.errors import ReproError
from repro.config import (
    EngineConfig,
    resolve_backend,
    resolve_executor,
    resolve_metrics_labels,
    resolve_optimizer,
    resolve_slo_latency_ms,
    resolve_slow_log,
)
from repro.constraints.database import ConstraintDatabase
from repro.engine import QueryEngine
from repro.incremental import Delta, delta_op, make_delta
from repro.geometry import fastlp
from repro.obs.journal import JOURNAL, journal_context
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.telemetry import (
    SloTracker,
    TelemetryRegistry,
    get_telemetry,
    render_prometheus,
)
from repro.server.http import HttpError, HttpServer, Request, Response
from repro.server.pool import EnginePool
from repro.server.quota import (
    DEFAULT_TENANT,
    AdmissionController,
    AdmissionError,
)

#: Header naming the tenant a request is billed to.
TENANT_HEADER = "x-repro-tenant"

#: Cap on sample witness points returned per answer.
SAMPLE_POINTS = 5


class ConstraintService:
    """The HTTP-facing query service over a shared engine pool."""

    def __init__(
        self,
        databases: Mapping[str, ConstraintDatabase],
        config: EngineConfig | None = None,
        *,
        quota_rate: float = 50.0,
        quota_burst: int = 100,
        max_concurrent: int = 4,
        max_queue: int = 64,
        decomposition: str = "arrangement",
        spatial_name: str = "S",
        metrics: MetricsRegistry | None = None,
        telemetry: TelemetryRegistry | None = None,
        max_requests: int | None = None,
    ) -> None:
        if not databases:
            raise ValueError("the service needs at least one database")
        self.config = config if config is not None else EngineConfig.resolve()
        self.databases = dict(databases)
        if "default" not in self.databases:
            first = next(iter(self.databases))
            self.databases["default"] = self.databases[first]
        self.decomposition = decomposition
        self.spatial_name = spatial_name
        self.pool = EnginePool(self.config, metrics=metrics)
        self.admission = AdmissionController(
            max_concurrent=max_concurrent,
            max_queue=max_queue,
            quota_rate=quota_rate,
            quota_burst=quota_burst,
            metrics=metrics,
            telemetry=telemetry,
        )
        self.max_requests = max_requests
        self.requests_handled = 0
        #: Set once ``max_requests`` responses have been sent (or via
        #: :meth:`request_shutdown`); ``serve`` exits when it fires.
        self.shutdown = asyncio.Event()
        self._started = time.monotonic()
        self._request_seq = itertools.count(1)
        #: Async single-flight: one in-flight extension build per
        #: (fingerprint, decomposition, spatial) key.
        self._builds: dict[tuple, asyncio.Future] = {}
        #: EXPLAIN ANALYZE drives the process-global tracer, which is
        #: one collection at a time — explain requests are serialised.
        self._explain_lock = asyncio.Lock()
        #: Writes are serialised (single-flight) while reads keep
        #: flowing; one lock also covers aliases sharing a database
        #: object ("default" and the first registered name).
        self._update_lock = asyncio.Lock()
        registry = metrics if metrics is not None else get_registry()
        self._registry = registry
        self.telemetry = (
            telemetry if telemetry is not None else get_telemetry()
        )
        self._labels_on = (
            resolve_metrics_labels(self.config.metrics_labels) == "on"
        )
        #: Per-tenant SLO burn-rate tracking; the latency objective
        #: doubles as the slow-query capture threshold.
        self.slo = SloTracker(
            latency_ms=resolve_slo_latency_ms(self.config.slo_latency_ms)
        )
        slow_path = resolve_slow_log(self.config.slow_log)
        self.slow_log = (
            SlowQueryLog(slow_path) if slow_path is not None else None
        )
        self._c_requests = registry.counter("server.requests")
        self._c_ok = registry.counter("server.responses.ok")
        self._c_client_err = registry.counter("server.responses.client_error")
        self._c_server_err = registry.counter("server.responses.server_error")
        self._c_build_waits = registry.counter("server.build.coalesced")
        self._routes: dict[str, tuple[str, Callable[..., Awaitable[Response]]]]
        self._routes = {
            "/v1/query": ("POST", self._handle_query),
            "/v1/explain": ("POST", self._handle_explain),
            "/v1/update": ("POST", self._handle_update),
            "/v1/healthz": ("GET", self._handle_healthz),
            "/v1/stats": ("GET", self._handle_stats),
            "/metrics": ("GET", self._handle_metrics),
        }

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def handle(self, request: Request) -> Response:
        """Route one request; every exit path is counted and journaled."""
        self._c_requests.inc()
        request_id = f"req-{next(self._request_seq):08d}"
        tenant = (
            request.header(TENANT_HEADER).strip() or DEFAULT_TENANT
        )
        route = self._routes.get(request.path)
        started = time.perf_counter()
        inflight = self.telemetry.gauge("server.inflight_requests")
        with inflight.track(), journal_context(
            request=request_id, tenant=tenant
        ):
            if JOURNAL.enabled:
                JOURNAL.emit(
                    "request.begin", id=request_id,
                    method=request.method, path=request.path,
                )
            try:
                if route is None:
                    raise HttpError(
                        404, "not_found", f"no route {request.path!r}"
                    )
                method, handler = route
                if request.method != method:
                    raise HttpError(
                        405, "method_not_allowed",
                        f"{request.path} accepts {method} only",
                    )
                response = await handler(request, request_id, tenant)
            except AdmissionError as error:
                response = self._admission_response(error)
            except HttpError as error:
                response = error.to_response()
            except ReproError as error:
                response = Response(400, {"error": {
                    "code": "invalid_query",
                    "message": str(error),
                    "request_id": request_id,
                }})
            if response.status < 400:
                self._c_ok.inc()
            elif response.status < 500:
                self._c_client_err.inc()
            else:  # pragma: no cover - no 5xx path constructs here
                self._c_server_err.inc()
            wall_s = time.perf_counter() - started
            # The endpoint label comes from the route table, never the
            # raw path — an unmatched path must not mint a new series.
            labels = None
            if self._labels_on:
                labels = {
                    "tenant": tenant,
                    "endpoint": (
                        request.path if route is not None else "unknown"
                    ),
                }
            self.telemetry.histogram(
                "server.request_seconds", labels
            ).observe(wall_s)
            alert = self.slo.observe(
                tenant, wall_s * 1000, error=response.status >= 500
            )
            if alert is not None and JOURNAL.enabled:
                JOURNAL.emit("slo.burn", **alert)
            if JOURNAL.enabled:
                JOURNAL.emit(
                    "request.end", id=request_id, status=response.status,
                    wall_ms=round(wall_s * 1000, 3),
                )
        self.requests_handled += 1
        if (
            self.max_requests is not None
            and self.requests_handled >= self.max_requests
        ):
            self.shutdown.set()
        return response

    @staticmethod
    def _admission_response(error: AdmissionError) -> Response:
        body: dict[str, Any] = {
            "code": error.code, "message": str(error),
        }
        if hasattr(error, "retry_after_s"):
            body["retry_after_s"] = error.retry_after_s
        if hasattr(error, "queue_depth"):
            body["queue_depth"] = error.queue_depth
        headers = {}
        if hasattr(error, "retry_after_s"):
            headers["retry-after"] = str(
                max(1, round(error.retry_after_s))
            )
        return Response(error.status, {"error": body}, headers)

    def request_shutdown(self) -> None:
        """Ask :func:`serve` to exit after in-flight work completes."""
        self.shutdown.set()

    # ------------------------------------------------------------------
    # Shared request plumbing
    # ------------------------------------------------------------------
    def _database(self, body: Mapping[str, Any]) -> tuple[str, ConstraintDatabase]:
        name = body.get("database", "default")
        if not isinstance(name, str):
            raise HttpError(400, "bad_database", "database must be a string")
        database = self.databases.get(name)
        if database is None:
            raise HttpError(
                404, "unknown_database",
                f"no database {name!r}; have {sorted(self.databases)}",
            )
        return name, database

    @staticmethod
    def _query_text(body: Mapping[str, Any]) -> str:
        text = body.get("query")
        if not isinstance(text, str) or not text.strip():
            raise HttpError(
                400, "missing_query",
                'the body needs a non-empty string field "query"',
            )
        return text

    async def _ensure_warm(self, engine: QueryEngine) -> str:
        """Single-flight the cold region-extension build for an engine.

        Returns ``"warm"`` (already cached), ``"built"`` (this request
        paid for the build) or ``"coalesced"`` (awaited another
        request's in-flight build).
        """
        if engine.cache.peek_extension(
            engine.database, engine.decomposition, engine.spatial_name
        ):
            # Touch through the cache: a counted hit (and an LRU
            # refresh) for engines that have not memoised it yet.
            engine.extension
            return "warm"
        key = (
            engine.fingerprint, engine.decomposition, engine.spatial_name
        )
        future = self._builds.get(key)
        if future is None:
            future = asyncio.ensure_future(
                asyncio.to_thread(lambda: engine.extension)
            )
            self._builds[key] = future
            future.add_done_callback(
                lambda _done, key=key: self._builds.pop(key, None)
            )
            await asyncio.shield(future)
            return "built"
        self._c_build_waits.inc()
        await asyncio.shield(future)
        return "coalesced"

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    async def _handle_query(
        self, request: Request, request_id: str, tenant: str
    ) -> Response:
        body = request.json()
        name, database = self._database(body)
        text = self._query_text(body)
        async with self.admission.admit(tenant):
            engine = self.pool.checkout(
                database, self.decomposition, self.spatial_name
            )
            try:
                build = await self._ensure_warm(engine)
                started = time.perf_counter()
                answer = await asyncio.to_thread(engine.evaluate, text)
                wall_ms = (time.perf_counter() - started) * 1000
            finally:
                self.pool.checkin(engine)
        executor = resolve_executor(self.config.executor)
        if JOURNAL.enabled:
            JOURNAL.emit(
                "query.answered", id=request_id, database=name,
                executor=executor, wall_ms=round(wall_ms, 3),
            )
        if self.slow_log is not None and wall_ms >= self.slo.latency_ms:
            await self._capture_slow_query(
                request_id, tenant, name, text, wall_ms
            )
        payload: dict[str, Any] = {
            "request_id": request_id,
            "database": name,
            "fingerprint": engine.fingerprint,
            "build": build,
            "executor": executor,
            "wall_ms": round(wall_ms, 3),
            "answer": self._render_answer(answer),
        }
        return Response(200, payload)

    @staticmethod
    def _render_answer(answer) -> dict[str, Any]:
        rendered: dict[str, Any] = {
            "variables": list(answer.variables),
            "empty": answer.is_empty(),
        }
        if answer.arity == 0:
            rendered["truth"] = not answer.is_empty()
        else:
            rendered["formula"] = str(answer.formula)
            rendered["sample_points"] = [
                [str(coordinate) for coordinate in point]
                for point in answer.sample_points()[:SAMPLE_POINTS]
            ]
        return rendered

    async def _capture_slow_query(
        self,
        request_id: str,
        tenant: str,
        name: str,
        text: str,
        wall_ms: float,
    ) -> None:
        """Append an EXPLAIN ANALYZE record for a threshold-crossing query.

        Re-runs the query as ``EXPLAIN ANALYZE`` (serialised behind the
        explain lock — the tracer is process-global) so the record
        carries the full plan tree with measured per-node costs.  The
        capture is diagnostics: any failure is counted, never surfaced
        to the client whose answer already succeeded.
        """
        try:
            database = self.databases[name]
            engine = self.pool.checkout(
                database, self.decomposition, self.spatial_name
            )
            try:
                async with self._explain_lock:
                    result = await asyncio.to_thread(
                        engine.explain, text, True
                    )
            finally:
                self.pool.checkin(engine)
            record = {
                "ts": time.time(),
                "request_id": request_id,
                "tenant": tenant,
                "database": name,
                "query": text,
                "wall_ms": round(wall_ms, 3),
                "threshold_ms": self.slo.latency_ms,
                "explain": result.to_dict(),
            }
            await asyncio.to_thread(self.slow_log.record, record)
            self._registry.counter("server.slow_queries").inc()
            if JOURNAL.enabled:
                JOURNAL.emit(
                    "slowquery.captured", id=request_id, database=name,
                    wall_ms=round(wall_ms, 3),
                    path=str(self.slow_log.path),
                )
        except asyncio.CancelledError:
            raise
        except Exception:  # noqa: BLE001 - diagnostics must not fail reads
            self._registry.counter("server.slow_query_capture_failures").inc()

    async def _handle_explain(
        self, request: Request, request_id: str, tenant: str
    ) -> Response:
        body = request.json()
        name, database = self._database(body)
        text = self._query_text(body)
        analyze = bool(body.get("analyze", False))
        async with self.admission.admit(tenant):
            engine = self.pool.checkout(
                database, self.decomposition, self.spatial_name
            )
            try:
                # EXPLAIN drives the process-global tracer: serialise.
                async with self._explain_lock:
                    result = await asyncio.to_thread(
                        engine.explain, text, analyze
                    )
            finally:
                self.pool.checkin(engine)
        payload = result.to_dict()
        payload["request_id"] = request_id
        payload["database"] = name
        payload["executor"] = resolve_executor(self.config.executor)
        payload["optimizer"] = resolve_optimizer(self.config.optimizer)
        return Response(200, payload)

    @staticmethod
    def _parse_delta(body: Mapping[str, Any]) -> Delta:
        """The request's delta, from triples or op objects."""
        raw = body.get("delta")
        if not isinstance(raw, (list, tuple)) or not raw:
            raise HttpError(
                400, "missing_delta",
                'the body needs a non-empty list field "delta"',
            )
        ops = []
        for entry in raw:
            if isinstance(entry, Mapping):
                triple = (
                    entry.get("action"),
                    entry.get("relation"),
                    entry.get("formula"),
                )
            elif isinstance(entry, (list, tuple)) and len(entry) == 3:
                triple = tuple(entry)
            else:
                raise HttpError(
                    400, "bad_delta",
                    "each delta op is [action, relation, formula] or "
                    '{"action": ..., "relation": ..., "formula": ...}',
                )
            if not all(isinstance(part, str) for part in triple):
                raise HttpError(
                    400, "bad_delta", "delta op fields must be strings"
                )
            ops.append(delta_op(*triple))
        return make_delta(*ops)

    async def _handle_update(
        self, request: Request, request_id: str, tenant: str
    ) -> Response:
        """Apply a write to a named database (incremental maintenance).

        Admission-controlled like a query (writes spend the same tenant
        budget), then serialised behind the update lock.  The database
        name — and every alias sharing its object — is atomically
        rebound to the post-delta version; in-flight reads finish
        against whichever version they resolved.
        """
        body = request.json()
        name, __ = self._database(body)
        delta = self._parse_delta(body)
        async with self.admission.admit(tenant):
            async with self._update_lock:
                # Re-read under the lock: an earlier write may have
                # rebound the name since the validation resolve above.
                database = self.databases[name]
                engine = self.pool.checkout(
                    database, self.decomposition, self.spatial_name
                )
                try:
                    started = time.perf_counter()
                    report = await asyncio.to_thread(
                        engine.apply_delta, delta
                    )
                    wall_ms = (time.perf_counter() - started) * 1000
                finally:
                    # Checkin keys by the engine's *current* fingerprint,
                    # so the maintained engine is pooled under the new
                    # version and the next read reuses it warm.
                    self.pool.checkin(engine)
                aliases = sorted(
                    alias
                    for alias, bound in self.databases.items()
                    if bound is database
                )
                for alias in aliases:
                    self.databases[alias] = engine.database
        if JOURNAL.enabled:
            JOURNAL.emit(
                "update.applied", id=request_id, database=name,
                aliases=",".join(aliases),
                parent=report.parent[:12], child=report.child[:12],
                operations=report.operations,
                planes_inserted=report.planes_inserted,
                planes_retracted=report.planes_retracted,
                wall_ms=round(wall_ms, 3),
            )
        return Response(200, {
            "request_id": request_id,
            "database": name,
            "aliases": aliases,
            "parent": report.parent,
            "fingerprint": report.child,
            "operations": report.operations,
            "relations_changed": list(report.relations_changed),
            "planes_inserted": report.planes_inserted,
            "planes_retracted": report.planes_retracted,
            "lineage_seq": report.lineage_seq,
            "compacted": report.compacted,
            "wall_ms": round(wall_ms, 3),
        })

    async def _handle_healthz(
        self, request: Request, request_id: str, tenant: str
    ) -> Response:
        return Response(200, {
            "status": "ok",
            "databases": sorted(self.databases),
            "uptime_s": round(time.monotonic() - self._started, 3),
        })

    async def _handle_stats(
        self, request: Request, request_id: str, tenant: str
    ) -> Response:
        store = self.config.store()
        return Response(200, {
            "uptime_s": round(time.monotonic() - self._started, 3),
            "requests": {
                "total": self._c_requests.value,
                "ok": self._c_ok.value,
                "client_error": self._c_client_err.value,
                "server_error": self._c_server_err.value,
                "build_coalesced": self._c_build_waits.value,
            },
            "config": self.config.describe(),
            "lp_mode": self.config.lp_mode or fastlp.get_lp_mode(),
            "executor": resolve_executor(self.config.executor),
            "backend": resolve_backend(self.config.backend),
            "optimizer": resolve_optimizer(self.config.optimizer),
            "admission": self.admission.stats(),
            "pool": self.pool.stats(),
            "store": store.stats() if store is not None else None,
            "journal": {
                "enabled": JOURNAL.enabled,
                "events": len(JOURNAL),
                "dropped": JOURNAL.dropped,
                "sink": JOURNAL.sink_path,
            },
            "slo": self.slo.stats(),
            "slow_log": {
                "path": (
                    str(self.slow_log.path)
                    if self.slow_log is not None else None
                ),
                "threshold_ms": self.slo.latency_ms,
                "records": self._registry.get("server.slow_queries"),
            },
            "metrics": self._registry.snapshot(),
        })

    async def _handle_metrics(
        self, request: Request, request_id: str, tenant: str
    ) -> Response:
        """Prometheus text exposition of counters, gauges and histograms."""
        text = render_prometheus(
            self._registry.snapshot(), self.telemetry
        )
        return Response(
            200,
            text=text,
            headers={
                "content-type": "text/plain; version=0.0.4; charset=utf-8"
            },
        )


async def serve(
    service: ConstraintService,
    host: str = "127.0.0.1",
    port: int = 0,
    announce: Callable[[HttpServer], None] | None = None,
) -> None:
    """Run the service until its shutdown event fires.

    ``announce`` is called with the started :class:`HttpServer` (the
    CLI prints the bound address; tests read the ephemeral port).
    """
    server = HttpServer(service.handle, host, port)
    await server.start()
    try:
        if announce is not None:
            announce(server)
        await service.shutdown.wait()
    finally:
        await server.close()
