"""repro.server — the async multi-tenant constraint-query service.

A stdlib-only asyncio HTTP/JSON API over a pool of warm
:class:`~repro.engine.QueryEngine`\\ s sharing one
:class:`~repro.engine.EngineCache` and one disk store:

* :mod:`repro.server.http` — the handcrafted HTTP/1.1 layer;
* :mod:`repro.server.quota` — per-tenant token buckets and bounded
  concurrency/queueing (structured 429/503);
* :mod:`repro.server.pool` — warm-engine checkout by database
  fingerprint;
* :mod:`repro.server.service` — the routes, per-request journal
  scoping and single-flight cold builds;
* :mod:`repro.server.loadgen` — a threaded HTTP client used by the
  tests, the CI smoke job and ``benchmarks/bench_server.py``.

Start one from the CLI with ``repro serve DB.json`` or in-process with
:class:`ServerThread` (see docs/SERVER.md).
"""

from repro.server.http import HttpError, HttpServer, Request, Response
from repro.server.loadgen import (
    ServerThread,
    get_json,
    get_text,
    percentile,
    post_json,
    run_load,
)
from repro.server.pool import EnginePool
from repro.server.quota import (
    DEFAULT_TENANT,
    AdmissionController,
    AdmissionError,
    Overloaded,
    QuotaExceeded,
    TokenBucket,
)
from repro.server.service import ConstraintService, serve

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "ConstraintService",
    "DEFAULT_TENANT",
    "EnginePool",
    "HttpError",
    "HttpServer",
    "Overloaded",
    "QuotaExceeded",
    "Request",
    "Response",
    "ServerThread",
    "TokenBucket",
    "get_json",
    "get_text",
    "percentile",
    "post_json",
    "run_load",
    "serve",
]
