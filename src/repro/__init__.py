"""repro — fixed-point query languages for linear constraint databases.

A faithful, executable reproduction of S. Kreutzer, *Fixed-Point Query
Languages for Linear Constraint Databases* (PODS 2000): linear
constraint databases over (R, <, +), hyperplane arrangements, two-sorted
region extensions, and the query languages RegFO, RegLFP, RegIFP,
RegPFP, RegTC and RegDTC, evaluated exactly over the rationals.

Quickstart::

    from repro import ConstraintDatabase, QueryEngine, parse_formula

    db = ConstraintDatabase.from_formula(
        parse_formula("(0 < x0 & x0 < 1) | (2 < x0 & x0 < 3)"), arity=1
    )
    connected = QueryEngine(db).truth(
        "forall a, b. (S(a) & S(b)) -> (exists RX, RY. (a) in RX & "
        "(b) in RY & [lfp M(R, Rp). ((R = Rp & sub(R, S)) | (exists Z. "
        "M(R, Z) & adj(Z, Rp) & sub(Rp, S)))](RX, RY))"
    )
    assert not connected  # two separated intervals

See DESIGN.md for the architecture and EXPERIMENTS.md for the
reproduction of every construction and theorem in the paper.
"""

from repro.constraints.database import ConstraintDatabase, default_schema
from repro.constraints.parser import parse_formula, parse_term
from repro.constraints.relation import ConstraintRelation
from repro.constraints.terms import LinearTerm
from repro.arrangement.builder import Arrangement, build_arrangement
from repro.arrangement.incidence import IncidenceGraph
from repro.config import EngineConfig
from repro.engine import (
    EngineCache,
    QueryEngine,
    database_fingerprint,
    default_cache,
    invalidate_cache,
    shared_cache,
)
from repro.explain import (
    ExplainResult,
    PlanNode,
    explain_datalog,
    explain_query,
)
from repro.obs import (
    JOURNAL,
    MetricsRegistry,
    Span,
    TRACER,
    get_registry,
    journal_scope,
    replay,
    reset_all,
)
from repro.regions.arrangement_regions import ArrangementDecomposition
from repro.regions.nc1 import NC1Decomposition
from repro.twosorted.structure import RegionExtension
from repro.logic.evaluator import (
    Evaluator,
    evaluate_query,
    query_truth,
)
from repro.logic.parser import parse_query
from repro.logic.properties import has_small_coordinate_property

__version__ = "1.1.0"

__all__ = [
    "ConstraintDatabase",
    "default_schema",
    "parse_formula",
    "parse_term",
    "ConstraintRelation",
    "LinearTerm",
    "Arrangement",
    "build_arrangement",
    "IncidenceGraph",
    "ArrangementDecomposition",
    "NC1Decomposition",
    "RegionExtension",
    "Evaluator",
    "QueryEngine",
    "EngineCache",
    "EngineConfig",
    "database_fingerprint",
    "default_cache",
    "shared_cache",
    "invalidate_cache",
    "MetricsRegistry",
    "Span",
    "TRACER",
    "JOURNAL",
    "get_registry",
    "journal_scope",
    "replay",
    "reset_all",
    "ExplainResult",
    "PlanNode",
    "explain_query",
    "explain_datalog",
    "evaluate_query",
    "query_truth",
    "parse_query",
    "has_small_coordinate_property",
    "__version__",
]
