"""Adaptive knob selection from persisted statistics.

Resolution order per knob, widest authority first::

    explicit config field  >  REPRO_* environment  >  statistics  >  default

Explicit settings and the environment always win — the optimizer only
fills knobs the operator left open, so pinned configurations (CLI
flags, the server's resolved config, CI matrices) behave exactly as
before.  Every choice carries a ``because`` string; ``repro explain``
and ``/v1/explain`` surface the full decision list.

The statistics tiers:

* **lp_mode** — fed by the E3 filter-hit counters under the
  ``global:lp`` pseudo-node: a float-filter fallback rate above 1/2
  means the float tier is wasted work, so choose ``"exact"``;
  otherwise the filtered tier pays for itself.
* **jobs** — fed by the mean observed face count per run under
  ``global:arrangement``: parallel arrangement construction only
  amortises its process startup on big arrangements.
* **executor/backend** — the compiled set-at-a-time tier is the
  measured default (E15: ≥5× on deep fixpoints); sqlite is opt-in via
  environment or explicit config only.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from fractions import Fraction

from repro import config as config_mod
from repro.optimizer.statistics import (
    GLOBAL_ARRANGEMENT,
    GLOBAL_LP,
    Statistics,
)

#: Fallback rate at or above which the float LP filter tier is judged
#: counter-productive and the exact tier is chosen directly.
LP_FALLBACK_THRESHOLD = Fraction(1, 2)

#: Mean faces per run above which parallel arrangement construction
#: (jobs > 1) amortises its worker startup cost.
PARALLEL_FACES_THRESHOLD = Fraction(4096)

#: Worker cap when the statistics ask for parallelism.
PARALLEL_JOBS = 4


@dataclass(frozen=True)
class KnobDecision:
    """One resolved knob with its provenance."""

    name: str
    chosen: str
    because: str
    from_stats: bool = False

    def describe(self) -> dict:
        return {
            "knob": self.name,
            "chosen": self.chosen,
            "because": self.because,
        }


def _env(name: str) -> str | None:
    value = os.environ.get(name, "").strip()
    return value or None


def choose_knobs(
    config, statistics: Statistics | None = None
) -> list[KnobDecision]:
    """Resolve every adaptive knob for one engine.

    ``config`` is the engine's (possibly unresolved) ``EngineConfig``;
    ``statistics`` the persisted measurements, if a store is active.
    """
    stats = statistics or Statistics()
    return [
        _choose_lp_mode(config, stats),
        _choose_jobs(config, stats),
        _choose_executor(config),
        _choose_backend(config),
    ]


def decided(decisions: list[KnobDecision], name: str) -> KnobDecision:
    for decision in decisions:
        if decision.name == name:
            return decision
    raise KeyError(name)


def _choose_lp_mode(config, stats: Statistics) -> KnobDecision:
    if config.lp_mode is not None:
        return KnobDecision(
            "lp_mode", config.lp_mode, "explicit configuration"
        )
    env = _env(config_mod.ENV_LP_MODE)
    if env is not None:
        return KnobDecision(
            "lp_mode", env.lower(), f"{config_mod.ENV_LP_MODE} environment"
        )
    lp = stats.get(GLOBAL_LP)
    if lp is not None:
        hits = lp.counter("lp.filter_hits")
        fallbacks = lp.counter("lp.filter_fallbacks")
        total = hits + fallbacks
        if total > 0:
            rate = fallbacks / total
            if rate >= LP_FALLBACK_THRESHOLD:
                return KnobDecision(
                    "lp_mode",
                    "exact",
                    f"observed filter fallback rate {float(rate):.0%} "
                    "wastes the float tier",
                    from_stats=True,
                )
            return KnobDecision(
                "lp_mode",
                "filtered",
                f"observed filter hit rate {float(1 - rate):.0%} "
                "keeps LP solves in floats",
                from_stats=True,
            )
    return KnobDecision(
        "lp_mode", "filtered", "default float-filter tier (no statistics)"
    )


def _choose_jobs(config, stats: Statistics) -> KnobDecision:
    if config.jobs is not None:
        return KnobDecision(
            "jobs", str(config.jobs), "explicit configuration"
        )
    env = _env(config_mod.ENV_JOBS)
    if env is not None:
        return KnobDecision(
            "jobs", env, f"{config_mod.ENV_JOBS} environment"
        )
    arrangement = stats.get(GLOBAL_ARRANGEMENT)
    if arrangement is not None and arrangement.calls > 0:
        mean_faces = (
            arrangement.counter("arrangement.faces") / arrangement.calls
        )
        if mean_faces >= PARALLEL_FACES_THRESHOLD:
            workers = min(PARALLEL_JOBS, os.cpu_count() or 1)
            if workers > 1:
                return KnobDecision(
                    "jobs",
                    str(workers),
                    f"mean of {int(mean_faces)} faces/run amortises "
                    "parallel workers",
                    from_stats=True,
                )
        return KnobDecision(
            "jobs",
            "1",
            f"mean of {int(mean_faces)} faces/run is below the "
            "parallel threshold",
            from_stats=True,
        )
    return KnobDecision(
        "jobs", "1", "default sequential build (no statistics)"
    )


def _choose_executor(config) -> KnobDecision:
    if config.executor is not None:
        return KnobDecision(
            "executor", config.executor, "explicit configuration"
        )
    env = _env(config_mod.ENV_EXECUTOR)
    if env is not None:
        return KnobDecision(
            "executor", env.lower(), f"{config_mod.ENV_EXECUTOR} environment"
        )
    return KnobDecision(
        "executor",
        "compiled",
        "set-at-a-time IR executor is the measured default "
        "(E15: >=5x on deep fixpoints)",
    )


def _choose_backend(config) -> KnobDecision:
    if config.backend is not None:
        return KnobDecision(
            "backend", config.backend, "explicit configuration"
        )
    env = _env(config_mod.ENV_BACKEND)
    if env is not None:
        return KnobDecision(
            "backend", env.lower(), f"{config_mod.ENV_BACKEND} environment"
        )
    return KnobDecision(
        "backend",
        "memory",
        "in-memory stage sets; sqlite is opt-in for out-of-core runs",
    )
