"""Persisted execution statistics keyed by plan-node fingerprint.

The optimizer's memory.  Every profiled run of the engine harvests the
:class:`~repro.explain.NodeProfiler` measurements (per-node self wall,
LP solves, faces, fixpoint deltas) and the observed cardinalities
(relation representation sizes, disjunct counts, fastlp filter-hit
rates) into a :class:`Statistics` object, which is merged into the
persisted copy in the :class:`~repro.store.disk.DiskStore` with
exponential decay and written back.  The next run — possibly in a
different process — loads it to order conjuncts, pick elimination
orders and choose knobs.

Numbers are exact :class:`~fractions.Fraction` values so the store
codec round-trips them bit-identically (floats from ``perf_counter``
become exact binary rationals); the decay factor is rational too, so
repeated merges stay exact and deterministic.

Node fingerprints are structural: a SHA-256 over the node's type name
and its printed form.  They are stable across processes and
``PYTHONHASHSEED`` values, and identical sub-formulas share statistics
— which is exactly what a cost model wants.

This module deliberately imports nothing from the rest of the package
(the store codec imports it, and everything else imports the store).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

#: Bump on any change to the statistics payload structure; persisted
#: entries with another version are rejected by the codec (and then
#: quarantined by the disk store) instead of feeding a wrong plan.
STATS_VERSION = 1

#: Exponential decay applied to the persisted numbers on every merge:
#: a node's history is worth 3/4 of its previous weight each run, so
#: stale measurements fade while repeated behaviour dominates.
DECAY = Fraction(3, 4)

#: Persisted statistics keep only the hottest nodes (by total wall) so
#: the store entry stays small no matter how many queries run.
MAX_NODES = 512

#: Pseudo-fingerprints for process-wide observations that have no
#: single plan node: the fastlp filter tiers and the arrangement build.
GLOBAL_LP = "global:lp"
GLOBAL_ARRANGEMENT = "global:arrangement"


def node_fingerprint(node: object) -> str:
    """The stable structural fingerprint of one plan node.

    A pure function of the node's type and printed form — identical on
    every process, interpreter and ``PYTHONHASHSEED``.
    """
    digest = hashlib.sha256()
    digest.update(b"stats-node\x00")
    digest.update(type(node).__name__.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(str(node).encode("utf-8"))
    return digest.hexdigest()


def _fraction(value: object) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):
        raise TypeError("boolean is not a statistic")
    if isinstance(value, (int, float)):
        return Fraction(value)
    raise TypeError(f"cannot coerce {value!r} to an exact statistic")


@dataclass(frozen=True)
class NodeStats:
    """Accumulated measurements for one plan node.

    ``calls``/``wall`` come from the profiler (self time, children
    excluded); ``size``/``observations`` accumulate observed result
    cardinalities (``representation_size`` and disjunct counts live in
    ``counters``); ``counters`` holds the profiler's counter deltas
    (``lp.solves``, ``arrangement.faces``,
    ``evaluator.fixpoint_stages``, ``lp.filter_hits``, …).
    """

    calls: Fraction = Fraction(0)
    wall: Fraction = Fraction(0)
    size: Fraction = Fraction(0)
    observations: Fraction = Fraction(0)
    counters: Mapping[str, Fraction] = field(default_factory=dict)

    def counter(self, name: str) -> Fraction:
        return self.counters.get(name, Fraction(0))

    def mean_wall(self) -> Fraction:
        """Decayed-average self seconds per call (0 with no calls)."""
        if self.calls == 0:
            return Fraction(0)
        return self.wall / self.calls

    def mean_size(self) -> Fraction:
        """Decayed-average observed representation size per result."""
        if self.observations == 0:
            return Fraction(0)
        return self.size / self.observations

    def decayed(self, factor: Fraction = DECAY) -> "NodeStats":
        return NodeStats(
            calls=self.calls * factor,
            wall=self.wall * factor,
            size=self.size * factor,
            observations=self.observations * factor,
            counters={
                name: value * factor
                for name, value in self.counters.items()
            },
        )

    def plus(self, other: "NodeStats") -> "NodeStats":
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, Fraction(0)) + value
        return NodeStats(
            calls=self.calls + other.calls,
            wall=self.wall + other.wall,
            size=self.size + other.size,
            observations=self.observations + other.observations,
            counters=counters,
        )


def make_node_stats(
    calls: object = 0,
    wall: object = 0,
    size: object = 0,
    observations: object = 0,
    counters: Mapping[str, object] | None = None,
) -> NodeStats:
    """A :class:`NodeStats` with every number coerced to ``Fraction``."""
    return NodeStats(
        calls=_fraction(calls),
        wall=_fraction(wall),
        size=_fraction(size),
        observations=_fraction(observations),
        counters={
            name: _fraction(value)
            for name, value in (counters or {}).items()
            if _fraction(value) != 0
        },
    )


@dataclass(frozen=True)
class Statistics:
    """The versioned, persisted statistics object.

    ``nodes`` maps plan-node fingerprints to their accumulated
    measurements; ``runs`` counts (decayed) contributing runs.
    """

    nodes: Mapping[str, NodeStats] = field(default_factory=dict)
    runs: Fraction = Fraction(0)
    version: int = STATS_VERSION

    def get(self, fingerprint: str) -> NodeStats | None:
        return self.nodes.get(fingerprint)

    def merge(
        self,
        run_nodes: Mapping[str, NodeStats],
        decay: Fraction = DECAY,
    ) -> "Statistics":
        """Fold one run's measurements in, decaying the history.

        Every persisted node is decayed (so untouched nodes fade out
        too), the run's numbers are added at full weight, and the
        result is pruned to the :data:`MAX_NODES` hottest nodes by
        accumulated wall so the store entry stays bounded.
        """
        merged: dict[str, NodeStats] = {
            fingerprint: stats.decayed(decay)
            for fingerprint, stats in self.nodes.items()
        }
        for fingerprint, stats in run_nodes.items():
            base = merged.get(fingerprint, NodeStats())
            merged[fingerprint] = base.plus(stats)
        if len(merged) > MAX_NODES:
            hottest = sorted(
                merged.items(),
                key=lambda item: (-item[1].wall, item[0]),
            )[:MAX_NODES]
            merged = dict(hottest)
        return Statistics(
            nodes=merged,
            runs=self.runs * decay + 1,
            version=self.version,
        )

    def hottest(self, limit: int = 10) -> list[tuple[str, NodeStats]]:
        """The ``limit`` nodes with the largest accumulated wall."""
        ranked = sorted(
            self.nodes.items(),
            key=lambda item: (-item[1].wall, item[0]),
        )
        return ranked[:limit]


def harvest_profile(
    profile: Mapping[int, Mapping[str, object]],
    counter_names: tuple[str, ...],
    nodes_by_id: Mapping[int, object],
) -> dict[str, NodeStats]:
    """Turn one run's profiler measurements into fingerprinted stats.

    ``profile`` is ``NodeProfiler.stats`` (``id(node)`` → measurement
    dict with ``calls``/``wall_s``/``self_counters`` and, when the
    evaluator reported result cardinalities, ``sizes`` /
    ``observations``); ``counter_names`` names the profiler's counter
    columns; ``nodes_by_id`` maps the same ids back to the plan nodes.
    Nodes that never ran are skipped; identical sub-formulas merge.

    The harvested ``wall`` is the *inclusive* per-node time: the cost
    model asks "what does evaluating this subtree cost", and that is
    what a conjunct-ordering decision pays or saves.
    """
    harvested: dict[str, NodeStats] = {}
    for node_id, node in nodes_by_id.items():
        measured = profile.get(node_id)
        if not measured:
            continue
        counters = dict(
            zip(counter_names, measured.get("self_counters") or ())
        )
        stats = make_node_stats(
            calls=measured.get("calls", 0),
            wall=measured.get("wall_s", 0.0),
            size=measured.get("sizes", 0),
            observations=measured.get("observations", 0),
            counters=counters,
        )
        if stats.calls == 0 and stats.wall == 0:
            continue
        fingerprint = node_fingerprint(node)
        base = harvested.get(fingerprint, NodeStats())
        harvested[fingerprint] = base.plus(stats)
    return harvested
