"""Answer-preserving plan rewrites driven by the cost model.

Every rewrite here commutes with the semantics — conjunction and
disjunction are commutative, adjacent same-sort quantifiers commute,
and the NNF + miniscoping passes of :mod:`repro.logic.transform` are
property-tested to preserve the answer relation exactly.  The ablated
path (``optimizer="off"``) therefore remains the oracle: the rewritten
plan may *represent* the answer differently, but it denotes the same
set, and the interpreted and compiled executors consume the identical
rewritten plan so their stage relations stay byte-identical.

Three levers, in evaluation-impact order:

* **scope minimisation** — ``transform.optimize`` (NNF + miniscoping)
  shrinks quantifier scopes before anything else looks at the plan;
* **conjunct/disjunct ordering** — operands sorted cheapest and most
  decisive first, so the evaluator's boolean short-circuit path stops
  as early as possible (the Grohe–Schwandtner selective-atom-first
  discipline, applied to region logic);
* **elimination ordering** — maximal chains of same-sort element
  quantifiers are rotated so the variable with the fewest atom
  occurrences is eliminated first (min-degree on the coefficient
  occurrence graph — the cheap end of min-fill), bounding the
  Fourier–Motzkin blowup of each projection step.

Each rewrite that changes the plan is recorded as a :class:`Decision`
(``chosen``/``because``), which ``repro explain`` and ``/v1/explain``
attach to the owning plan node.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.logic import ast
from repro.logic.transform import optimize as _scope_optimize
from repro.optimizer.cost import CostModel
from repro.optimizer.statistics import Statistics


@dataclass(frozen=True)
class Decision:
    """One recorded plan decision: what was chosen for which node."""

    node: object
    chosen: str
    because: str

    def describe(self) -> dict:
        return {
            "node": _node_label(self.node),
            "chosen": self.chosen,
            "because": self.because,
        }


def _node_label(node: object) -> str:
    text = str(node)
    return text if len(text) <= 72 else text[:69] + "..."


@dataclass
class RewriteOutcome:
    """The rewritten plan plus the decisions that produced it."""

    formula: ast.RegFormula
    decisions: list[Decision]
    model: CostModel

    @property
    def stats_hits(self) -> int:
        return self.model.stats_hits

    def decisions_for(self, node: object) -> list[Decision]:
        return [d for d in self.decisions if d.node is node]


def rewrite_query(
    formula: ast.RegFormula,
    statistics: Statistics | None = None,
    scope_minimize: bool = True,
) -> RewriteOutcome:
    """Rewrite one query plan; pure, deterministic, answer-preserving."""
    model = CostModel(statistics)
    decisions: list[Decision] = []
    if scope_minimize:
        minimized = _scope_optimize(formula)
        if minimized != formula:
            decisions.append(
                Decision(
                    minimized,
                    "nnf+miniscope",
                    "quantifier scopes minimised before cost ordering",
                )
            )
        formula = minimized
    rewritten = _Rewriter(model, decisions).rewrite(formula)
    # Calibration probe: predict every node of the final plan once so
    # warm runs register their persisted-measurement hits (the
    # ``optimizer.stats_hits`` acceptance signal) and EXPLAIN can show
    # measured-vs-prior costs.  Ordering itself never consults these —
    # see ``CostModel.order_key``.
    for node in _walk(rewritten):
        model.cost(node)
    return RewriteOutcome(rewritten, decisions, model)


def _walk(formula: ast.RegFormula):
    """Every formula node of a plan, root first."""
    yield formula
    for field in dataclasses.fields(formula):
        value = getattr(formula, field.name)
        if isinstance(value, ast.RegFormula):
            yield from _walk(value)
        elif isinstance(value, tuple):
            for part in value:
                if isinstance(part, ast.RegFormula):
                    yield from _walk(part)


class _Rewriter:
    def __init__(self, model: CostModel, decisions: list[Decision]) -> None:
        self.model = model
        self.decisions = decisions

    def rewrite(self, formula: ast.RegFormula) -> ast.RegFormula:
        if isinstance(formula, (ast.RAnd, ast.ROr)):
            return self._connective(formula)
        if isinstance(formula, ast.RNot):
            operand = self.rewrite(formula.operand)
            if operand is formula.operand:
                return formula
            return ast.RNot(operand)
        if isinstance(formula, (ast.ExistsElem, ast.ForallElem)):
            return self._element_chain(formula)
        if isinstance(formula, (ast.ExistsRegion, ast.ForallRegion)):
            body = self.rewrite(formula.body)
            if body is formula.body:
                return formula
            return type(formula)(formula.variable, body)
        if isinstance(
            formula, (ast.Fixpoint, ast.TC, ast.DTC, ast.RBit)
        ):
            body = self.rewrite(formula.body)
            if body is formula.body:
                return formula
            return dataclasses.replace(formula, body=body)
        return formula

    # ------------------------------------------------------------------
    # Conjunct / disjunct ordering
    # ------------------------------------------------------------------
    def _connective(self, formula: ast.RAnd | ast.ROr) -> ast.RegFormula:
        conjunctive = isinstance(formula, ast.RAnd)
        operands = tuple(self.rewrite(op) for op in formula.operands)
        indexed = list(enumerate(operands))
        ordered = sorted(
            indexed,
            key=lambda item: (
                *self.model.order_key(item[1], conjunctive),
                item[0],
            ),
        )
        new_operands = tuple(op for _, op in ordered)
        if new_operands == formula.operands:
            return formula
        rebuilt = type(formula)(new_operands)
        if new_operands != operands:
            permutation = [index for index, _ in ordered]
            self.decisions.append(
                Decision(
                    rebuilt,
                    f"operand order {permutation}",
                    "cheapest/most-selective operand first "
                    "(short-circuit sooner)",
                )
            )
        return rebuilt

    # ------------------------------------------------------------------
    # Element-quantifier chain rotation (FM elimination order)
    # ------------------------------------------------------------------
    def _element_chain(
        self, formula: ast.ExistsElem | ast.ForallElem
    ) -> ast.RegFormula:
        kind = type(formula)
        chain: list[str] = []
        body: ast.RegFormula = formula
        while isinstance(body, kind):
            chain.append(body.variable)
            body = body.body
        body = self.rewrite(body)
        if len(chain) > 1 and len(set(chain)) == len(chain):
            degrees = _occurrence_degrees(body, chain)
            # Projection runs innermost-out, so the lightest variable
            # (fewest atom occurrences) goes innermost and is
            # eliminated first.
            ordered = sorted(
                range(len(chain)),
                key=lambda i: (-degrees[chain[i]], i),
            )
            new_chain = [chain[i] for i in ordered]
        else:
            new_chain = chain
        if new_chain == chain and body is formula.body:
            return formula
        rebuilt = body
        for variable in reversed(new_chain):
            rebuilt = kind(variable, rebuilt)
        if new_chain != chain:
            self.decisions.append(
                Decision(
                    rebuilt,
                    "eliminate " + ", ".join(reversed(new_chain)),
                    "min-degree variable projected first to bound "
                    "Fourier-Motzkin blowup",
                )
            )
        return rebuilt


def _occurrence_degrees(
    body: ast.RegFormula, variables: list[str]
) -> dict[str, int]:
    """How many atoms of ``body`` mention each chain variable."""
    degrees = {variable: 0 for variable in variables}

    def visit(node: ast.RegFormula) -> None:
        if isinstance(
            node, (ast.LinearAtom, ast.RelationAtom, ast.InRegion)
        ):
            for variable in node.free_element_vars():
                if variable in degrees:
                    degrees[variable] += 1
            return
        for field in dataclasses.fields(node):
            value = getattr(node, field.name)
            if isinstance(value, ast.RegFormula):
                visit(value)
            elif isinstance(value, tuple):
                for part in value:
                    if isinstance(part, ast.RegFormula):
                        visit(part)

    visit(body)
    return degrees


# ---------------------------------------------------------------------------
# Datalog rule-body ordering
# ---------------------------------------------------------------------------
def order_rule_body(rule):
    """Reorder one datalog rule's body atoms, selective-atom-first.

    Greedy bound-variable propagation: start from the atom with the
    fewest variables, then repeatedly append the atom sharing the most
    already-bound variables (fewest fresh variables, original position
    as the stable tie-break).  A pure plan rewrite applied once to the
    whole :class:`~repro.datalog.engine.Program`, so the interpreted
    and compiled executors — which both consume the rewritten rules —
    keep byte-identical stage relations.
    """
    body = list(rule.body)
    if len(body) < 2:
        return rule
    remaining = list(enumerate(body))
    bound: set[str] = set()
    ordered: list[tuple[int, object]] = []
    while remaining:
        best = min(
            remaining,
            key=lambda item: (
                -len(set(item[1].variables) & bound),
                len(set(item[1].variables) - bound),
                item[0],
            ),
        )
        remaining.remove(best)
        ordered.append(best)
        bound |= set(best[1].variables)
    new_body = tuple(atom for _, atom in ordered)
    if new_body == rule.body:
        return rule
    return dataclasses.replace(rule, body=new_body)


def order_program(program):
    """Apply :func:`order_rule_body` to every rule of a program."""
    rules = tuple(order_rule_body(rule) for rule in program.rules)
    if rules == program.rules:
        return program
    return dataclasses.replace(program, rules=rules)
