"""A calibrated cost model over region-logic plan nodes.

Static priors give every node type a relative cost (in units of roughly
one microsecond of evaluator work); persisted :class:`Statistics`
override the prior with the measured decayed-average self wall of the
same structural node, so *predictions* calibrate themselves as the
engine runs.  Plan ordering, by contrast, uses only the static prior:
the operand order fixes the answer's syntactic form, which must depend
on the query alone — never on which statistics snapshot a particular
engine loaded.  Giusti–Heintz–Kuijpers frame geometric query cost as
dominated by elimination order and intermediate representation size —
both are exactly what the observed ``size``/``disjunct`` statistics
capture.

Costs are exact :class:`~fractions.Fraction` values so plan ordering is
deterministic across processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

from fractions import Fraction

from repro.logic import ast
from repro.optimizer.statistics import Statistics, node_fingerprint

#: Static per-node priors, in abstract units (~1 µs of evaluator work).
#: Cheap cached bits first, then element-sort atoms that touch the
#: constraint layer, then the quantifier/operator multipliers below.
_ATOM_COST = {
    ast.RTrue: Fraction(0),
    ast.RFalse: Fraction(0),
    ast.SetAtom: Fraction(1),
    ast.RegionEq: Fraction(1),
    ast.Adj: Fraction(2),
    ast.SubsetAtom: Fraction(2),
    ast.InRegion: Fraction(6),
    ast.RelationAtom: Fraction(8),
    ast.LinearAtom: Fraction(8),
}

#: Static selectivity priors — the estimated chance a boolean atom is
#: true.  Lower = more selective = better placed early in a conjunction
#: (short-circuits sooner); used to break cost ties.
_ATOM_SELECTIVITY = {
    ast.RTrue: Fraction(1),
    ast.RFalse: Fraction(0),
    ast.SetAtom: Fraction(3, 10),
    ast.RegionEq: Fraction(1, 10),
    ast.Adj: Fraction(3, 10),
    ast.SubsetAtom: Fraction(1, 2),
    ast.InRegion: Fraction(1, 2),
    ast.RelationAtom: Fraction(1, 2),
    ast.LinearAtom: Fraction(1, 2),
}

#: Prior on the size of the region domain |Reg| (region quantifiers and
#: fixpoint stages iterate over it) when no statistics are available.
REGION_DOMAIN_PRIOR = Fraction(8)

#: Element quantifiers run Fourier–Motzkin projection over the body's
#: disjuncts — substantially more expensive than re-walking the body.
ELEMENT_QUANTIFIER_FACTOR = Fraction(4)

#: Fixpoint/closure operators re-evaluate their body once per stage per
#: region tuple; stages is bounded by |Reg|^arity.
FIXPOINT_FACTOR = Fraction(16)

#: Measured wall seconds → abstract units (1 unit ≈ 1 µs).
_SECONDS_TO_UNITS = Fraction(1_000_000)


class CostModel:
    """Predicted evaluation cost per plan node, statistics-calibrated.

    ``stats_hits`` / ``stats_misses`` count how many node lookups were
    answered by persisted measurements versus the static prior — the
    warm-run acceptance signal (``optimizer.stats_hits > 0``).
    """

    def __init__(self, statistics: Statistics | None = None) -> None:
        self.statistics = statistics or Statistics()
        self.stats_hits = 0
        self.stats_misses = 0
        self._memo: dict[int, Fraction] = {}

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def measured_cost(self, formula: ast.RegFormula) -> Fraction | None:
        """The observed decayed-average cost of this node, if any."""
        stats = self.statistics.get(node_fingerprint(formula))
        if stats is None or stats.calls == 0:
            self.stats_misses += 1
            return None
        self.stats_hits += 1
        return stats.mean_wall() * _SECONDS_TO_UNITS

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def cost(self, formula: ast.RegFormula) -> Fraction:
        """Predicted cost of evaluating ``formula`` once (abstract units).

        A measured statistic for this node wins over the static prior.
        Prediction only — plan *ordering* uses :meth:`static_cost` so
        the rewritten plan is a pure function of the query text, never
        of which statistics snapshot an engine happened to load (two
        engines over one store must produce byte-identical answers).
        """
        memo = self._memo.get(id(formula))
        if memo is not None:
            return memo
        measured = self.measured_cost(formula)
        value = measured if measured is not None else self.static_cost(formula)
        self._memo[id(formula)] = value
        return value

    def static_cost(self, formula: ast.RegFormula) -> Fraction:
        """The uncalibrated recursive prior (deterministic per query)."""
        atom = _ATOM_COST.get(type(formula))
        if atom is not None:
            return atom
        if isinstance(formula, (ast.RAnd, ast.ROr)):
            return Fraction(1) + sum(
                (self.static_cost(op) for op in formula.operands),
                Fraction(0),
            )
        if isinstance(formula, ast.RNot):
            return Fraction(1) + self.static_cost(formula.operand)
        if isinstance(formula, (ast.ExistsElem, ast.ForallElem)):
            return ELEMENT_QUANTIFIER_FACTOR * (
                Fraction(1) + self.static_cost(formula.body)
            )
        if isinstance(formula, (ast.ExistsRegion, ast.ForallRegion)):
            return REGION_DOMAIN_PRIOR * (
                Fraction(1) + self.static_cost(formula.body)
            )
        if isinstance(formula, (ast.Fixpoint, ast.TC, ast.DTC)):
            arity = len(getattr(formula, "bound_vars", ())) or 2
            return FIXPOINT_FACTOR * REGION_DOMAIN_PRIOR ** min(arity, 2) * (
                Fraction(1) + self.static_cost(formula.body)
            )
        if isinstance(formula, ast.RBit):
            return REGION_DOMAIN_PRIOR * (
                Fraction(1) + self.static_cost(formula.body)
            )
        return Fraction(1)

    def selectivity(self, formula: ast.RegFormula) -> Fraction:
        """Estimated chance the node holds (tie-break for conjuncts)."""
        prior = _ATOM_SELECTIVITY.get(type(formula))
        if prior is not None:
            return prior
        if isinstance(formula, ast.RNot):
            return Fraction(1) - self.selectivity(formula.operand)
        if isinstance(formula, ast.RAnd):
            value = Fraction(1)
            for operand in formula.operands:
                value *= self.selectivity(operand)
            return value
        if isinstance(formula, ast.ROr):
            value = Fraction(1)
            for operand in formula.operands:
                value *= Fraction(1) - self.selectivity(operand)
            return Fraction(1) - value
        return Fraction(1, 2)

    def order_key(self, formula: ast.RegFormula, conjunctive: bool):
        """Sort key placing cheap, decisive operands first.

        In a conjunction the most selective (likely-false) operand
        short-circuits the whole node; in a disjunction the least
        selective (likely-true) one does.  Cost dominates, selectivity
        breaks ties.  Deliberately built on :meth:`static_cost`, not
        the calibrated :meth:`cost`: the operand order decides the
        answer's *syntactic* form, which must be identical for every
        engine evaluating the same query — including engines sharing a
        store whose statistics are being updated concurrently.
        """
        selectivity = self.selectivity(formula)
        if not conjunctive:
            selectivity = Fraction(1) - selectivity
        return (self.static_cost(formula), selectivity)
