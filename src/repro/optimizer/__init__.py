"""Cost-based optimizer: persisted statistics, plan rewrites, knobs.

The closed loop over the engine's measured costs:

* :mod:`repro.optimizer.statistics` — the versioned, Fraction-exact
  :class:`Statistics` object persisted in the disk store and merged
  across runs with decay;
* :mod:`repro.optimizer.cost` — the calibrated cost model over plan
  nodes (static priors overridden by observed per-node measurements);
* :mod:`repro.optimizer.rewrite` — answer-preserving plan rewrites:
  NNF + miniscoping, cheapest/most-selective-first conjunct order,
  quantifier-chain elimination order, datalog rule-body atom order;
* :mod:`repro.optimizer.knobs` — adaptive lp_mode/jobs/executor/backend
  selection from the persisted statistics, with ``chosen``/``because``
  decision records surfaced by ``repro explain`` and ``/v1/explain``.

Only the statistics layer is imported eagerly (the store codec depends
on it); the heavier submodules are imported by their consumers.
"""

from repro.optimizer.statistics import (
    DECAY,
    GLOBAL_ARRANGEMENT,
    GLOBAL_LP,
    MAX_NODES,
    STATS_VERSION,
    NodeStats,
    Statistics,
    harvest_profile,
    make_node_stats,
    node_fingerprint,
)

__all__ = [
    "DECAY",
    "GLOBAL_ARRANGEMENT",
    "GLOBAL_LP",
    "MAX_NODES",
    "STATS_VERSION",
    "NodeStats",
    "Statistics",
    "harvest_profile",
    "make_node_stats",
    "node_fingerprint",
]
