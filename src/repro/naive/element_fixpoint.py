"""LFP over element tuples: the naive, non-terminating language.

The induction variable is a *relation over reals*: starting from the
empty relation, each stage evaluates a first-order body over (ℝ, <, +)
extended by the current stage, using quantifier elimination, and checks
convergence by exact relation equivalence.  Monotone bodies whose least
fixed point is semi-linear converge (e.g. bounded saturation); the
paper's ℕ-defining induction adds a new point forever, so the engine
reports non-termination at the stage cap — the observable content of
the introduction's warning.

Body formulas use an ordinary :class:`repro.constraints.formula.Formula`
with a distinguished *relation variable* represented by the reserved
relation name ``X``: atoms ``X(t̄)`` are written via the placeholder
substitution performed here (the constraint-formula language has no
relation symbols, so bodies are supplied as Python callables taking the
current stage and returning a formula).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.constraints.formula import Formula, disjunction
from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.constraints.terms import LinearTerm

StageBody = Callable[[ConstraintRelation], Formula]


@dataclass(frozen=True)
class NaiveLFPResult:
    """Outcome of a naive element-sort induction."""

    fixpoint: ConstraintRelation | None
    stages: int
    converged: bool
    last_stage: ConstraintRelation

    @property
    def diverged(self) -> bool:
        return not self.converged


def naive_lfp(
    schema: Sequence[str],
    body: StageBody,
    max_stages: int = 25,
) -> NaiveLFPResult:
    """Iterate ``X ← { x̄ : body(X) }`` from ∅ with a stage cap.

    ``body`` receives the current stage as a relation and returns a
    formula over ``schema`` (it may consult the stage via
    ``stage.substitute`` to inline ``X(t̄)`` atoms).  Convergence is
    exact relation equivalence; on reaching ``max_stages`` without
    convergence the result reports divergence and exposes the last
    stage for inspection.
    """
    current = ConstraintRelation.empty(tuple(schema))
    for stage in range(1, max_stages + 1):
        updated = ConstraintRelation.make(
            tuple(schema), body(current)
        ).simplify()
        if updated.equivalent(current):
            return NaiveLFPResult(current, stage - 1, True, current)
        current = updated
    return NaiveLFPResult(None, max_stages, False, current)


def membership_formula(
    stage: ConstraintRelation, args: Sequence[LinearTerm]
) -> Formula:
    """The inlined atom ``X(t̄)`` for the current stage."""
    mapping = dict(zip(stage.variables, args))
    return stage.substitute(mapping)


def define_naturals_body(stage: ConstraintRelation) -> Formula:
    """The paper's diverging induction: 0 ∈ X and X + 1 ⊆ X.

    The least fixed point is ℕ — not semi-linear as a subset of ℝ in
    finitely many pieces... it *is* an infinite set of isolated points,
    which no finite DNF of linear constraints over one variable can
    represent, so the stages grow without bound: stage k is
    {0, 1, ..., k-1}.
    """
    x = LinearTerm.variable("n")
    base = parse_formula("n = 0")
    successor = membership_formula(stage, [x - 1])
    return disjunction([base, successor])


def bounded_saturation_body(stage: ConstraintRelation) -> Formula:
    """A converging induction: saturate the interval [0, 1].

    X starts with [0, 1/2] and each stage adds the right-shifted copy
    clipped to [0, 1]; the fixed point [0, 1] is reached after two
    stages — the naive engine is fine when the fixed point is
    semi-linear and reached in finitely many stages.
    """
    x = LinearTerm.variable("n")
    base = parse_formula("0 <= n & 2*n <= 1")
    shifted = membership_formula(stage, [x - LinearTerm.const("1/2")])
    clip = parse_formula("n <= 1")
    from repro.constraints.formula import conjunction

    return disjunction([base, conjunction([shifted, clip])])
