"""Naive element-sort fixed points — the paper's negative motivation.

Section 1: "A naive definition of, e.g., least fixed-point logic leads
to a non-terminating and undecidable language, as it is possible to
define the natural numbers with addition and multiplication by least
fixed-point logic over (ℝ, <, +)."

This package implements exactly that naive language — LFP where the
inductively defined relation ranges over *element tuples* (sets of
reals), not regions — with a stage cap, so the divergence is observable:
the ℕ-defining induction grows a fresh point every stage and never
converges, while the same engine terminates fine on inductions with
semi-linear fixed points.  The region-restricted operators of the main
library (`repro.logic`) are the paper's remedy.
"""

from repro.naive.element_fixpoint import (
    NaiveLFPResult,
    define_naturals_body,
    naive_lfp,
)

__all__ = ["NaiveLFPResult", "define_naturals_body", "naive_lfp"]
