"""`EngineConfig` — one object for every engine knob.

The engine's tuning surface used to be a sprawl: constructor kwargs on
:class:`~repro.engine.QueryEngine` (``lp_mode``, ``jobs``,
``cache_dir``), a second set of CLI flags, and four ``REPRO_*``
environment variables read at different times by different layers.
This module consolidates all of it into a single frozen dataclass with
one documented resolution order:

    **explicit argument > environment variable > built-in default**

=================  =====================  ===========================
field              environment variable   default
=================  =====================  ===========================
``lp_mode``        ``REPRO_LP_MODE``      ``"filtered"``
``jobs``           ``REPRO_JOBS``         ``1`` (sequential)
``cache_dir``      ``REPRO_CACHE_DIR``    ``None`` (no persistence)
``cache_budget``   ``REPRO_CACHE_BUDGET``  ``None`` (unbounded)
``journal``        ``REPRO_JOURNAL``      ``None`` (no journal sink)
``cache_capacity``  —                     ``64`` entries
=================  =====================  ===========================

Two construction styles, for two lifetimes:

* :meth:`EngineConfig.resolve` applies the resolution order **once, at
  construction** — the environment is snapshotted and the resulting
  config is fully pinned.  This is what the CLI, the benchmarks and the
  server use: a long-lived process should not change behaviour because
  an environment variable moved under it.
* ``EngineConfig(...)`` with ``None`` fields keeps the legacy *deferred*
  semantics: a ``None`` field means "consult the environment at use
  time", exactly as the old per-kwarg plumbing did.  This is what the
  :class:`~repro.engine.QueryEngine` deprecation shim builds, so
  existing callers observe identical behaviour.

Consumers::

    from repro.config import EngineConfig

    config = EngineConfig.resolve(jobs=4)        # env fills the rest
    engine = QueryEngine(db, config=config)
    store = config.store()                        # the pinned DiskStore
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.geometry import fastlp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store.disk import DiskStore

#: Environment variable names, in one place (the store/journal modules
#: remain the authoritative readers for their own deferred paths).
ENV_LP_MODE = "REPRO_LP_MODE"
ENV_JOBS = "REPRO_JOBS"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE_BUDGET = "REPRO_CACHE_BUDGET"
ENV_JOURNAL = "REPRO_JOURNAL"

#: Default in-memory LRU capacity of an :class:`~repro.engine.EngineCache`.
DEFAULT_CACHE_CAPACITY = 64


@dataclass(frozen=True)
class EngineConfig:
    """Frozen bundle of every engine/runtime knob.

    ``None`` means *unresolved* (defer to the environment at use time)
    for every field except ``cache_capacity``, which always has a
    concrete value.  Use :meth:`resolve` to pin everything now.
    """

    #: LP tier: ``"filtered"`` or ``"exact"`` (``None`` = env at use).
    lp_mode: str | None = None
    #: Worker processes for arrangement construction (``None`` = env at
    #: use time; ``1`` = sequential).
    jobs: int | None = None
    #: Disk warm-start directory or a :class:`DiskStore` instance
    #: (``None`` = env at use time, which may also mean no persistence).
    cache_dir: "DiskStore | str | os.PathLike[str] | None" = None
    #: Byte budget for the disk store's LRU eviction (``None`` = env at
    #: use time, else unbounded).
    cache_budget: int | None = None
    #: JSONL journal sink path (``None`` = env at use time, else none).
    journal: str | None = None
    #: In-memory LRU capacity of the engine cache.
    cache_capacity: int = DEFAULT_CACHE_CAPACITY

    def __post_init__(self) -> None:
        if self.lp_mode is not None and self.lp_mode not in fastlp.LP_MODES:
            raise ValueError(
                f"lp_mode must be one of {fastlp.LP_MODES}, "
                f"got {self.lp_mode!r}"
            )
        if self.jobs is not None and int(self.jobs) < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs!r}")
        if self.cache_budget is not None and self.cache_budget <= 0:
            raise ValueError(
                f"cache_budget must be positive bytes, "
                f"got {self.cache_budget!r}"
            )
        if self.cache_capacity < 1:
            raise ValueError(
                f"cache_capacity must be >= 1, got {self.cache_capacity!r}"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def resolve(cls, **overrides: Any) -> "EngineConfig":
        """A fully pinned config: explicit arg > environment > default.

        The environment is read exactly once, here; the returned config
        never consults it again.  Unknown keyword names raise
        ``TypeError`` (same contract as the dataclass constructor).
        """
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(overrides) - known
        if unknown:
            raise TypeError(
                f"unknown EngineConfig field(s): {sorted(unknown)}"
            )

        def pick(name: str, from_env, default):
            value = overrides.get(name)
            if value is not None:
                return value
            env_value = from_env()
            return env_value if env_value is not None else default

        from repro.arrangement.parallel import resolve_jobs

        lp_mode = pick(
            "lp_mode",
            lambda: os.environ.get(ENV_LP_MODE, "").strip().lower() or None,
            "filtered",
        )
        jobs = overrides.get("jobs")
        jobs = resolve_jobs(jobs if jobs is not None else None)
        cache_dir = pick(
            "cache_dir",
            lambda: os.environ.get(ENV_CACHE_DIR, "").strip() or None,
            None,
        )
        cache_budget = pick("cache_budget", _env_cache_budget, None)
        journal = pick(
            "journal",
            lambda: os.environ.get(ENV_JOURNAL, "").strip() or None,
            None,
        )
        capacity = overrides.get("cache_capacity")
        if capacity is None:
            capacity = DEFAULT_CACHE_CAPACITY
        return cls(
            lp_mode=lp_mode,
            jobs=jobs,
            cache_dir=cache_dir,
            cache_budget=cache_budget,
            journal=journal,
            cache_capacity=capacity,
        )

    def with_overrides(self, **changes: Any) -> "EngineConfig":
        """A copy with some fields replaced (the config itself is frozen)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Derived resources
    # ------------------------------------------------------------------
    def store(self) -> "DiskStore | None":
        """The disk store this config pins (``None`` when unresolved
        *and* the environment names no directory)."""
        from repro import store as store_pkg

        if self.cache_dir is None:
            return store_pkg.active_store()
        return store_pkg.resolve_store(
            self.cache_dir, size_budget=self.cache_budget
        )

    def make_cache(self, metrics=None) -> "Any":
        """A fresh :class:`~repro.engine.EngineCache` honouring this
        config's capacity and store pinning."""
        from repro.engine import EngineCache

        return EngineCache(
            capacity=self.cache_capacity,
            metrics=metrics,
            store=self.store() if self.cache_dir is not None else None,
        )

    def describe(self) -> dict[str, Any]:
        """A JSON-ready rendering (for ``/v1/stats`` and bench records)."""
        cache_dir = self.cache_dir
        if cache_dir is not None and not isinstance(cache_dir, str):
            root = getattr(cache_dir, "root", None)
            cache_dir = str(root if root is not None else cache_dir)
        return {
            "lp_mode": self.lp_mode,
            "jobs": self.jobs,
            "cache_dir": cache_dir,
            "cache_budget": self.cache_budget,
            "journal": self.journal,
            "cache_capacity": self.cache_capacity,
        }


def _env_cache_budget() -> int | None:
    """``REPRO_CACHE_BUDGET`` as a positive int, or ``None``."""
    raw = os.environ.get(ENV_CACHE_BUDGET, "").strip()
    if not raw:
        return None
    try:
        budget = int(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_CACHE_BUDGET} must be an integer byte count, got {raw!r}"
        ) from None
    return budget if budget > 0 else None
