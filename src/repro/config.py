"""`EngineConfig` — one object for every engine knob.

The engine's tuning surface used to be a sprawl: constructor kwargs on
:class:`~repro.engine.QueryEngine` (``lp_mode``, ``jobs``,
``cache_dir``), a second set of CLI flags, and four ``REPRO_*``
environment variables read at different times by different layers.
This module consolidates all of it into a single frozen dataclass with
one documented resolution order:

    **explicit argument > environment variable > built-in default**

=================  =====================  ===========================
field              environment variable   default
=================  =====================  ===========================
``lp_mode``        ``REPRO_LP_MODE``      ``"filtered"``
``jobs``           ``REPRO_JOBS``         ``1`` (sequential)
``executor``       ``REPRO_EXECUTOR``     ``"compiled"``
``backend``        ``REPRO_BACKEND``      ``"memory"``
``cache_dir``      ``REPRO_CACHE_DIR``    ``None`` (no persistence)
``cache_budget``   ``REPRO_CACHE_BUDGET``  ``None`` (unbounded)
``journal``        ``REPRO_JOURNAL``      ``None`` (no journal sink)
``optimizer``      ``REPRO_OPTIMIZER``    ``"on"`` (cost-based rewrites)
``slow_log``       ``REPRO_SLOW_LOG``     ``None`` (no slow-query log)
``slo_latency_ms``  ``REPRO_SLO_LATENCY_MS``  ``250.0`` ms objective
``metrics_labels``  ``REPRO_METRICS_LABELS``  ``"on"`` (labeled series)
``cache_capacity``  —                     ``64`` entries
=================  =====================  ===========================

Two construction styles, for two lifetimes:

* :meth:`EngineConfig.resolve` applies the resolution order **once, at
  construction** — the environment is snapshotted and the resulting
  config is fully pinned.  This is what the CLI, the benchmarks and the
  server use: a long-lived process should not change behaviour because
  an environment variable moved under it.
* ``EngineConfig(...)`` with ``None`` fields keeps the legacy *deferred*
  semantics: a ``None`` field means "consult the environment at use
  time", exactly as the old per-kwarg plumbing did.  This is what the
  :class:`~repro.engine.QueryEngine` deprecation shim builds, so
  existing callers observe identical behaviour.

Consumers::

    from repro.config import EngineConfig

    config = EngineConfig.resolve(jobs=4)        # env fills the rest
    engine = QueryEngine(db, config=config)
    store = config.store()                        # the pinned DiskStore
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.geometry import fastlp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store.disk import DiskStore

#: Environment variable names, in one place (the store/journal modules
#: remain the authoritative readers for their own deferred paths).
ENV_LP_MODE = "REPRO_LP_MODE"
ENV_JOBS = "REPRO_JOBS"
ENV_EXECUTOR = "REPRO_EXECUTOR"
ENV_BACKEND = "REPRO_BACKEND"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE_BUDGET = "REPRO_CACHE_BUDGET"
ENV_JOURNAL = "REPRO_JOURNAL"
ENV_OPTIMIZER = "REPRO_OPTIMIZER"
ENV_SLOW_LOG = "REPRO_SLOW_LOG"
ENV_SLO_LATENCY_MS = "REPRO_SLO_LATENCY_MS"
ENV_METRICS_LABELS = "REPRO_METRICS_LABELS"

#: Default in-memory LRU capacity of an :class:`~repro.engine.EngineCache`.
DEFAULT_CACHE_CAPACITY = 64

#: Fixpoint executor tiers.  ``"compiled"`` lowers datalog rule bodies
#: and ground RegLFP stage formulas to the relational-algebra IR of
#: :mod:`repro.ir` (set-at-a-time evaluation, memoised decision kernels);
#: ``"interpreted"`` keeps the per-stage AST walk and is the oracle the
#: equivalence suite checks the compiled tier against.  Both produce
#: byte-identical stage relations.
EXECUTORS = ("compiled", "interpreted")

#: Ground-fixpoint storage backends.  ``"memory"`` evaluates compiled
#: ground (finite, region-sort) fixpoint stages with python sets;
#: ``"sqlite"`` lowers them to SQL over a SQLite database (recursive
#: CTEs for linear plans) for out-of-core evaluation.
BACKENDS = ("memory", "sqlite")

#: Cost-based optimizer switch.  ``"on"`` applies the answer-preserving
#: plan rewrites of :mod:`repro.optimizer` (NNF + miniscoping,
#: cost-ordered conjuncts, statistics-fed knob selection) inside
#: :class:`~repro.engine.QueryEngine`; ``"off"`` is the ablated oracle
#: path the equivalence suite compares against.
OPTIMIZERS = ("on", "off")

#: Labeled-telemetry switch.  ``"on"`` lets the engine and server attach
#: low-cardinality labels (``tenant``, ``endpoint``, ``executor``,
#: ``lp_mode``) to histogram/gauge series; ``"off"`` keeps every series
#: unlabeled (one aggregate per family) for minimal scrape size.
METRICS_LABELS = ("on", "off")

#: Default per-request latency objective, milliseconds.  Feeds both the
#: per-tenant SLO burn-rate tracker and the slow-query capture threshold.
DEFAULT_SLO_LATENCY_MS = 250.0


def resolve_metrics_labels(metrics_labels: "str | None" = None) -> str:
    """Effective label mode: explicit > ``REPRO_METRICS_LABELS`` > on.

    The deferred twin of the ``metrics_labels`` field, mirroring
    :func:`resolve_optimizer` for call sites that receive ``None``.
    """
    if metrics_labels is None:
        metrics_labels = (
            os.environ.get(ENV_METRICS_LABELS, "").strip().lower() or "on"
        )
    if metrics_labels not in METRICS_LABELS:
        raise ValueError(
            f"metrics_labels must be one of {METRICS_LABELS}, "
            f"got {metrics_labels!r}"
        )
    return metrics_labels


def resolve_slow_log(slow_log: "str | None" = None) -> "str | None":
    """Effective slow-log path: explicit > ``REPRO_SLOW_LOG`` > none."""
    if slow_log is not None:
        return slow_log
    return os.environ.get(ENV_SLOW_LOG, "").strip() or None


def resolve_slo_latency_ms(slo_latency_ms: "float | None" = None) -> float:
    """Effective latency objective: explicit > env > 250 ms."""
    if slo_latency_ms is not None:
        latency = float(slo_latency_ms)
        if latency <= 0:
            raise ValueError(
                f"slo_latency_ms must be positive, got {slo_latency_ms!r}"
            )
        return latency
    env_value = _env_slo_latency_ms()
    return env_value if env_value is not None else DEFAULT_SLO_LATENCY_MS


def resolve_optimizer(optimizer: "str | None" = None) -> str:
    """The effective optimizer mode: explicit > ``REPRO_OPTIMIZER`` > on.

    The deferred twin of the ``optimizer`` field, mirroring
    :func:`resolve_executor` for call sites that receive ``None``.
    """
    if optimizer is None:
        optimizer = (
            os.environ.get(ENV_OPTIMIZER, "").strip().lower() or "on"
        )
    if optimizer not in OPTIMIZERS:
        raise ValueError(
            f"optimizer must be one of {OPTIMIZERS}, got {optimizer!r}"
        )
    return optimizer


def resolve_executor(executor: "str | None" = None) -> str:
    """The effective executor: explicit arg > ``REPRO_EXECUTOR`` > default.

    The deferred twin of the ``executor`` field for code paths that
    receive ``None`` (legacy call sites without a config object).
    """
    if executor is None:
        executor = (
            os.environ.get(ENV_EXECUTOR, "").strip().lower() or "compiled"
        )
    if executor not in EXECUTORS:
        raise ValueError(
            f"executor must be one of {EXECUTORS}, got {executor!r}"
        )
    return executor


def resolve_backend(backend: "str | None" = None) -> str:
    """The effective backend: explicit arg > ``REPRO_BACKEND`` > default."""
    if backend is None:
        backend = (
            os.environ.get(ENV_BACKEND, "").strip().lower() or "memory"
        )
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )
    return backend


@dataclass(frozen=True)
class EngineConfig:
    """Frozen bundle of every engine/runtime knob.

    ``None`` means *unresolved* (defer to the environment at use time)
    for every field except ``cache_capacity``, which always has a
    concrete value.  Use :meth:`resolve` to pin everything now.
    """

    #: LP tier: ``"filtered"`` or ``"exact"`` (``None`` = env at use).
    lp_mode: str | None = None
    #: Worker processes for arrangement construction (``None`` = env at
    #: use time; ``1`` = sequential).
    jobs: int | None = None
    #: Fixpoint executor: ``"compiled"`` (relational-algebra IR,
    #: set-at-a-time) or ``"interpreted"`` (per-stage AST walk, the
    #: oracle).  ``None`` = consult ``REPRO_EXECUTOR`` at use time.
    executor: str | None = None
    #: Ground-fixpoint backend: ``"memory"`` or ``"sqlite"``
    #: (``None`` = consult ``REPRO_BACKEND`` at use time).
    backend: str | None = None
    #: Disk warm-start directory or a :class:`DiskStore` instance
    #: (``None`` = env at use time, which may also mean no persistence).
    cache_dir: "DiskStore | str | os.PathLike[str] | None" = None
    #: Byte budget for the disk store's LRU eviction (``None`` = env at
    #: use time, else unbounded).
    cache_budget: int | None = None
    #: JSONL journal sink path (``None`` = env at use time, else none).
    journal: str | None = None
    #: Cost-based optimizer: ``"on"`` or ``"off"`` (``None`` = consult
    #: ``REPRO_OPTIMIZER`` at use time; the built-in default is on).
    optimizer: str | None = None
    #: Slow-query log JSONL path (``None`` = env at use time, else no
    #: slow-query capture).
    slow_log: str | None = None
    #: Per-request latency objective in milliseconds; feeds the SLO
    #: burn-rate tracker and the slow-query capture threshold (``None``
    #: = env at use time, else :data:`DEFAULT_SLO_LATENCY_MS`).
    slo_latency_ms: float | None = None
    #: Labeled telemetry series: ``"on"`` or ``"off"`` (``None`` =
    #: consult ``REPRO_METRICS_LABELS`` at use time; default on).
    metrics_labels: str | None = None
    #: In-memory LRU capacity of the engine cache.
    cache_capacity: int = DEFAULT_CACHE_CAPACITY

    def __post_init__(self) -> None:
        if self.lp_mode is not None and self.lp_mode not in fastlp.LP_MODES:
            raise ValueError(
                f"lp_mode must be one of {fastlp.LP_MODES}, "
                f"got {self.lp_mode!r}"
            )
        if self.jobs is not None and int(self.jobs) < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs!r}")
        if self.executor is not None and self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, "
                f"got {self.executor!r}"
            )
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.optimizer is not None and self.optimizer not in OPTIMIZERS:
            raise ValueError(
                f"optimizer must be one of {OPTIMIZERS}, "
                f"got {self.optimizer!r}"
            )
        if self.slo_latency_ms is not None and float(self.slo_latency_ms) <= 0:
            raise ValueError(
                f"slo_latency_ms must be positive milliseconds, "
                f"got {self.slo_latency_ms!r}"
            )
        if (
            self.metrics_labels is not None
            and self.metrics_labels not in METRICS_LABELS
        ):
            raise ValueError(
                f"metrics_labels must be one of {METRICS_LABELS}, "
                f"got {self.metrics_labels!r}"
            )
        if self.cache_budget is not None and self.cache_budget <= 0:
            raise ValueError(
                f"cache_budget must be positive bytes, "
                f"got {self.cache_budget!r}"
            )
        if self.cache_capacity < 1:
            raise ValueError(
                f"cache_capacity must be >= 1, got {self.cache_capacity!r}"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def resolve(cls, **overrides: Any) -> "EngineConfig":
        """A fully pinned config: explicit arg > environment > default.

        The environment is read exactly once, here; the returned config
        never consults it again.  Unknown keyword names raise
        ``TypeError`` (same contract as the dataclass constructor).
        """
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(overrides) - known
        if unknown:
            raise TypeError(
                f"unknown EngineConfig field(s): {sorted(unknown)}"
            )

        def pick(name: str, from_env, default):
            value = overrides.get(name)
            if value is not None:
                return value
            env_value = from_env()
            return env_value if env_value is not None else default

        from repro.arrangement.parallel import resolve_jobs

        lp_mode = pick(
            "lp_mode",
            lambda: os.environ.get(ENV_LP_MODE, "").strip().lower() or None,
            "filtered",
        )
        jobs = overrides.get("jobs")
        jobs = resolve_jobs(jobs if jobs is not None else None)
        executor = resolve_executor(overrides.get("executor"))
        backend = resolve_backend(overrides.get("backend"))
        cache_dir = pick(
            "cache_dir",
            lambda: os.environ.get(ENV_CACHE_DIR, "").strip() or None,
            None,
        )
        cache_budget = pick("cache_budget", _env_cache_budget, None)
        journal = pick(
            "journal",
            lambda: os.environ.get(ENV_JOURNAL, "").strip() or None,
            None,
        )
        optimizer = resolve_optimizer(overrides.get("optimizer"))
        slow_log = pick(
            "slow_log",
            lambda: os.environ.get(ENV_SLOW_LOG, "").strip() or None,
            None,
        )
        slo_latency_ms = pick(
            "slo_latency_ms", _env_slo_latency_ms, DEFAULT_SLO_LATENCY_MS
        )
        metrics_labels = resolve_metrics_labels(
            overrides.get("metrics_labels")
        )
        capacity = overrides.get("cache_capacity")
        if capacity is None:
            capacity = DEFAULT_CACHE_CAPACITY
        return cls(
            lp_mode=lp_mode,
            jobs=jobs,
            executor=executor,
            backend=backend,
            cache_dir=cache_dir,
            cache_budget=cache_budget,
            journal=journal,
            optimizer=optimizer,
            slow_log=slow_log,
            slo_latency_ms=slo_latency_ms,
            metrics_labels=metrics_labels,
            cache_capacity=capacity,
        )

    def with_overrides(self, **changes: Any) -> "EngineConfig":
        """A copy with some fields replaced (the config itself is frozen)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Derived resources
    # ------------------------------------------------------------------
    def store(self) -> "DiskStore | None":
        """The disk store this config pins (``None`` when unresolved
        *and* the environment names no directory)."""
        from repro import store as store_pkg

        if self.cache_dir is None:
            return store_pkg.active_store()
        return store_pkg.resolve_store(
            self.cache_dir, size_budget=self.cache_budget
        )

    def make_cache(self, metrics=None) -> "Any":
        """A fresh :class:`~repro.engine.EngineCache` honouring this
        config's capacity and store pinning."""
        from repro.engine import EngineCache

        return EngineCache(
            capacity=self.cache_capacity,
            metrics=metrics,
            store=self.store() if self.cache_dir is not None else None,
        )

    def describe(self) -> dict[str, Any]:
        """A JSON-ready rendering (for ``/v1/stats`` and bench records)."""
        cache_dir = self.cache_dir
        if cache_dir is not None and not isinstance(cache_dir, str):
            root = getattr(cache_dir, "root", None)
            cache_dir = str(root if root is not None else cache_dir)
        return {
            "lp_mode": self.lp_mode,
            "jobs": self.jobs,
            "executor": self.executor,
            "backend": self.backend,
            "cache_dir": cache_dir,
            "cache_budget": self.cache_budget,
            "journal": self.journal,
            "optimizer": self.optimizer,
            "slow_log": self.slow_log,
            "slo_latency_ms": self.slo_latency_ms,
            "metrics_labels": self.metrics_labels,
            "cache_capacity": self.cache_capacity,
        }


def _env_cache_budget() -> int | None:
    """``REPRO_CACHE_BUDGET`` as a positive int, or ``None``."""
    raw = os.environ.get(ENV_CACHE_BUDGET, "").strip()
    if not raw:
        return None
    try:
        budget = int(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_CACHE_BUDGET} must be an integer byte count, got {raw!r}"
        ) from None
    return budget if budget > 0 else None


def _env_slo_latency_ms() -> float | None:
    """``REPRO_SLO_LATENCY_MS`` as a positive float, or ``None``."""
    raw = os.environ.get(ENV_SLO_LATENCY_MS, "").strip()
    if not raw:
        return None
    try:
        latency = float(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_SLO_LATENCY_MS} must be a millisecond count, got {raw!r}"
        ) from None
    return latency if latency > 0 else None
