"""Text syntax for spatial datalog programs.

One rule per line (blank lines and ``%`` / ``#`` comments ignored;
``#`` also starts a trailing comment after a rule)::

    Reach(x) :- S(x), x = 0.
    Reach(y) :- Reach(x), S(y), y - x <= 1, x - y <= 1.

A body item is a relation atom when it looks like ``Name(v1, .., vk)``
with a capitalised name and bare lower-case variables; anything else is
parsed as a constraint formula (so ``x = 0`` and ``y - x <= 1`` are
constraints).  Multiple constraint items are conjoined.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.constraints.formula import conjunction
from repro.constraints.parser import parse_formula
from repro.datalog.engine import Atom, Program, Rule

_ATOM_RE = re.compile(
    r"^([A-Z][A-Za-z0-9_]*)\s*\(\s*([a-z][A-Za-z0-9_]*"
    r"(?:\s*,\s*[a-z][A-Za-z0-9_]*)*)\s*\)$"
)


def _parse_atom(text: str) -> Atom | None:
    match = _ATOM_RE.match(text.strip())
    if match is None:
        return None
    variables = tuple(
        part.strip() for part in match.group(2).split(",")
    )
    return Atom(match.group(1), variables)


def _split_body(text: str) -> list[str]:
    """Split on commas that are not inside parentheses."""
    items: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            items.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        items.append("".join(current))
    return [item.strip() for item in items if item.strip()]


def parse_rule(text: str) -> Rule:
    """Parse one rule (with or without the trailing period)."""
    cleaned = text.strip()
    if cleaned.endswith("."):
        cleaned = cleaned[:-1]
    if ":-" not in cleaned:
        raise ParseError(f"rule needs ':-': {text!r}")
    head_text, body_text = cleaned.split(":-", 1)
    head = _parse_atom(head_text)
    if head is None:
        raise ParseError(f"malformed rule head: {head_text.strip()!r}")
    atoms: list[Atom] = []
    negated: list[Atom] = []
    constraints = []
    for item in _split_body(body_text):
        if item.startswith("!"):
            atom = _parse_atom(item[1:])
            if atom is None:
                raise ParseError(
                    f"'!' must prefix a relation atom: {item!r}"
                )
            negated.append(atom)
            continue
        atom = _parse_atom(item)
        if atom is not None:
            atoms.append(atom)
        else:
            constraints.append(parse_formula(item))
    if not atoms and not negated and not constraints:
        raise ParseError(f"rule has an empty body: {text!r}")
    constraint = conjunction(constraints) if constraints else None
    return Rule(head, tuple(atoms), constraint, tuple(negated))


def parse_program(text: str) -> Program:
    """Parse a whole program (one rule per line)."""
    rules = []
    for line in text.splitlines():
        stripped = line.split("#", 1)[0].strip()
        if not stripped or stripped.startswith("%"):
            continue
        rules.append(parse_rule(stripped))
    if not rules:
        raise ParseError("program has no rules")
    return Program(tuple(rules))
