"""Bottom-up evaluation of positive spatial datalog.

A program is a set of rules

    head(v̄) :- lit_1, ..., lit_k.

where every literal is either a *relation atom* ``p(v1, .., vm)`` (p an
EDB relation of the database or an IDB predicate of the program, the
arguments rule variables) or a *constraint* — an arbitrary
quantifier-free formula over the rule's variables (this is what makes
the datalog "spatial": arithmetic talks about real-valued variables
directly).

Evaluation is the standard immediate-consequence iteration, computed
with the relation algebra: the body literals are cylindrified to the
rule's variable schema and intersected; the result is projected onto
the head variables; the head predicate accumulates the union.  Because
IDB relations are constraint relations (possibly infinite sets), a
fixed point need not exist — the engine checks convergence by exact
equivalence and stops at a stage cap, reporting divergence, exactly the
behaviour the paper's discussion of [5] describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import EvaluationError
from repro.constraints.database import ConstraintDatabase
from repro.constraints.formula import Formula
from repro.constraints.relation import (
    ConstraintRelation,
    intersect_relations,
    union_relations,
)
from repro.obs.metrics import get_registry
from repro.obs.tracing import TRACER

#: Immediate-consequence telemetry (Grohe–Schwandtner-style stage counts).
_DATALOG_RUNS = get_registry().counter("datalog.runs")
_DATALOG_STAGES = get_registry().counter("datalog.stages")


@dataclass(frozen=True)
class Atom:
    """A relation literal ``predicate(v1, .., vm)`` in a rule body/head."""

    predicate: str
    variables: tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.predicate}({', '.join(self.variables)})"


@dataclass(frozen=True)
class Rule:
    """``head :- body_atoms, !negated_atoms, constraint``.

    ``constraint`` is an optional quantifier-free formula over the
    rule's variables (TRUE when omitted).  ``negated`` atoms are
    interpreted under stratified negation: their predicates must be
    fully computed in a strictly lower stratum.
    """

    head: Atom
    body: tuple[Atom, ...]
    constraint: Formula | None = None
    negated: tuple[Atom, ...] = ()

    def variables(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for variable in self.head.variables:
            seen[variable] = None
        for atom in self.body + self.negated:
            for variable in atom.variables:
                seen[variable] = None
        if self.constraint is not None:
            for variable in sorted(self.constraint.free_variables()):
                seen[variable] = None
        return tuple(seen)

    def __str__(self) -> str:
        parts = [str(atom) for atom in self.body]
        parts.extend(f"!{atom}" for atom in self.negated)
        if self.constraint is not None:
            parts.append(str(self.constraint))
        return f"{self.head} :- {', '.join(parts)}."


@dataclass(frozen=True)
class Program:
    """A positive spatial datalog program."""

    rules: tuple[Rule, ...]

    def idb_predicates(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for rule in self.rules:
            seen[rule.head.predicate] = None
        return tuple(seen)

    def arity_of(self, predicate: str) -> int:
        for rule in self.rules:
            if rule.head.predicate == predicate:
                return len(rule.head.variables)
        raise EvaluationError(f"no rule defines {predicate!r}")

    def validate(self, database: ConstraintDatabase) -> None:
        """Check arity consistency of every literal."""
        idb = set(self.idb_predicates())
        arities: dict[str, int] = {}
        for rule in self.rules:
            arities.setdefault(
                rule.head.predicate, len(rule.head.variables)
            )
            if arities[rule.head.predicate] != len(rule.head.variables):
                raise EvaluationError(
                    f"inconsistent arity for {rule.head.predicate!r}"
                )
        for rule in self.rules:
            for atom in rule.body + rule.negated:
                if atom.predicate in idb:
                    if len(atom.variables) != arities[atom.predicate]:
                        raise EvaluationError(
                            f"arity mismatch in {atom}"
                        )
                elif atom.predicate in database:
                    expected = database.relation(atom.predicate).arity
                    if len(atom.variables) != expected:
                        raise EvaluationError(
                            f"arity mismatch in {atom} "
                            f"(EDB arity {expected})"
                        )
                else:
                    raise EvaluationError(
                        f"unknown predicate {atom.predicate!r}"
                    )

    def strata(self) -> list[tuple[str, ...]]:
        """Predicate strata for stratified negation.

        Positive dependencies may stay inside a stratum; a negated
        dependency forces the negated predicate into a strictly lower
        stratum.  Raises :class:`EvaluationError` when negation sits on
        a dependency cycle (the program is not stratifiable).
        """
        idb = set(self.idb_predicates())
        level: dict[str, int] = {p: 0 for p in idb}
        # Levels only legitimately reach |IDB|; each sweep raises at
        # least one level, so |IDB|² + 1 sweeps suffice to stabilise or
        # expose a negative cycle.
        for __ in range(len(idb) ** 2 + 2):
            changed = False
            for rule in self.rules:
                head = rule.head.predicate
                for atom in rule.body:
                    if atom.predicate in idb:
                        required = level[atom.predicate]
                        if level[head] < required:
                            level[head] = required
                            changed = True
                for atom in rule.negated:
                    if atom.predicate in idb:
                        required = level[atom.predicate] + 1
                        if level[head] < required:
                            level[head] = required
                            changed = True
            if not changed:
                break
        else:
            raise EvaluationError(
                "program is not stratifiable (negation on a cycle)"
            )
        if any(value > len(idb) for value in level.values()):
            raise EvaluationError(
                "program is not stratifiable (negation on a cycle)"
            )
        buckets: dict[int, list[str]] = {}
        for predicate in self.idb_predicates():
            buckets.setdefault(level[predicate], []).append(predicate)
        return [
            tuple(buckets[index]) for index in sorted(buckets)
        ]

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)


@dataclass
class EvaluationOutcome:
    """Result of running a program: IDB relations plus telemetry."""

    relations: dict[str, ConstraintRelation]
    stages: int
    converged: bool
    stage_sizes: list[int] = field(default_factory=list)

    def __getitem__(self, predicate: str) -> ConstraintRelation:
        return self.relations[predicate]


def _rule_once(
    rule: Rule,
    database: ConstraintDatabase,
    idb: Mapping[str, ConstraintRelation],
    body_sources: Sequence[ConstraintRelation | None] | None = None,
) -> ConstraintRelation:
    """One application of a rule: the derived head relation.

    ``body_sources`` optionally overrides the relation joined for each
    body atom (by position); the semi-naive evaluator passes the
    last-stage delta for one occurrence at a time.
    """
    schema = rule.variables()
    pieces: list[ConstraintRelation] = []
    for position, atom in enumerate(rule.body):
        override = (
            body_sources[position] if body_sources is not None else None
        )
        if override is not None:
            source = override
        elif atom.predicate in idb:
            source = idb[atom.predicate]
        else:
            source = database.relation(atom.predicate)
        if len(set(atom.variables)) != len(atom.variables):
            # Repeated variables: rename to fresh then add equalities via
            # the constraint path — keep it simple by rejecting for now.
            raise EvaluationError(
                f"repeated variables in {atom}; use an explicit "
                "equality constraint instead"
            )
        renamed = source.rename_to(atom.variables)
        pieces.append(
            ConstraintRelation.make(schema, renamed.formula)
        )
    for atom in rule.negated:
        if atom.predicate in idb:
            source = idb[atom.predicate]
        else:
            source = database.relation(atom.predicate)
        if len(set(atom.variables)) != len(atom.variables):
            raise EvaluationError(
                f"repeated variables in {atom}; use an explicit "
                "equality constraint instead"
            )
        renamed = source.rename_to(atom.variables).complement()
        pieces.append(ConstraintRelation.make(schema, renamed.formula))
    if rule.constraint is not None:
        pieces.append(ConstraintRelation.make(schema, rule.constraint))
    if not pieces:
        raise EvaluationError(f"rule {rule} has an empty body")
    joined = intersect_relations(pieces)
    result = joined
    for variable in schema:
        if variable not in rule.head.variables:
            result = result.project_out(variable)
    return result.rename_to(rule.head.variables)


def evaluate_program(
    program: Program,
    database: ConstraintDatabase,
    max_stages: int = 25,
    strategy: str = "seminaive",
    executor: str | None = None,
    optimizer: str | None = None,
) -> EvaluationOutcome:
    """Stratified immediate-consequence iteration, exact convergence.

    Negation is stratified: predicates are grouped into strata
    (:meth:`Program.strata`) and each stratum is run to its fixed point
    before the next starts, so a negated atom always refers to a
    completed relation.  Within a stratum the iteration returns the
    fixed point when reached; otherwise evaluation stops at the stage
    cap with ``converged=False`` — the observable form of spatial
    datalog's non-termination.

    ``strategy`` selects the iteration scheme: ``"seminaive"`` (the
    default — delta-relation immediate consequence, see
    :mod:`repro.datalog.seminaive`) or ``"naive"`` (re-derive the whole
    IDB every stage; kept as the reference implementation and the
    baseline of the E15 benchmark).  Both compute the same relations.

    ``executor`` picks how the semi-naive strategy is run: ``"compiled"``
    (rules compiled once to relational-algebra IR, evaluated through
    memoised kernels — see :mod:`repro.datalog.compile`) or
    ``"interpreted"`` (the rule-at-a-time oracle).  ``None`` defers to
    ``REPRO_EXECUTOR`` / the config default.  Both executors produce
    byte-identical stage relations; the naive strategy is always
    interpreted.

    ``optimizer`` gates the cost-based body-atom reordering of
    :func:`repro.optimizer.rewrite.order_program` (``None`` defers to
    ``REPRO_OPTIMIZER``, default on).  The rewrite is applied once to
    the whole program *before* any executor sees it, so the compiled
    and interpreted tiers keep byte-identical stage relations; the
    ablated program (``optimizer="off"``) is the semantic oracle.
    """
    from repro.config import resolve_optimizer

    if resolve_optimizer(optimizer) == "on":
        from repro.optimizer.rewrite import order_program

        program = order_program(program)
    if strategy == "seminaive":
        from repro.config import resolve_executor

        if resolve_executor(executor) == "compiled":
            from repro.datalog.compile import evaluate_program_compiled

            return evaluate_program_compiled(program, database, max_stages)
        from repro.datalog.seminaive import evaluate_program_seminaive

        return evaluate_program_seminaive(program, database, max_stages)
    if strategy != "naive":
        raise EvaluationError(
            f"unknown datalog strategy {strategy!r} "
            "(expected 'seminaive' or 'naive')"
        )
    return _evaluate_naive(program, database, max_stages)


def _evaluate_naive(
    program: Program,
    database: ConstraintDatabase,
    max_stages: int,
) -> EvaluationOutcome:
    """The reference evaluator: full re-derivation at every stage."""
    program.validate(database)
    _DATALOG_RUNS.inc()
    idb: dict[str, ConstraintRelation] = {}
    for predicate in program.idb_predicates():
        arity = program.arity_of(predicate)
        schema = tuple(f"v{i}" for i in range(arity))
        idb[predicate] = ConstraintRelation.empty(schema)

    sizes: list[int] = []
    total_stages = 0
    with TRACER.span("datalog.run") as run_span:
        for stratum in program.strata():
            members = set(stratum)
            for __ in range(1, max_stages + 1):
                with TRACER.span("datalog.stage", aggregate=True):
                    updated = dict(idb)
                    for predicate in stratum:
                        current = idb[predicate]
                        derived = [current]
                        for rule in program.rules:
                            if rule.head.predicate != predicate:
                                continue
                            derived.append(
                                _rule_once(rule, database, idb).rename_to(
                                    current.variables
                                )
                            )
                        updated[predicate] = union_relations(
                            derived
                        ).simplify()
                    sizes.append(
                        sum(
                            updated[p].representation_size()
                            for p in stratum
                        )
                    )
                    converged_now = all(
                        updated[p].equivalent(idb[p]) for p in members
                    )
                    idb = updated
                if converged_now:
                    break
                total_stages += 1
                _DATALOG_STAGES.inc()
            else:
                run_span.set("stages", total_stages)
                return EvaluationOutcome(idb, total_stages, False, sizes)
        run_span.set("stages", total_stages)
    return EvaluationOutcome(idb, total_stages, True, sizes)
