"""Semi-naive (delta-driven) evaluation of spatial datalog.

The naive immediate-consequence iteration re-derives the entire IDB at
every stage: each rule re-joins the *full* accumulated relations, and
the convergence check re-simplifies and compares relations that did not
change — the classic waste that semi-naive evaluation removes.

Here every stratum keeps, per predicate, the accumulated relation and
the last stage's **delta** (the genuinely new part).  After the first
stage a rule only fires once per recursive body occurrence, with that
occurrence bound to the delta and the remaining occurrences bound to
the accumulator — any fact derivable from at least one new fact is
found, and facts derivable from old facts alone were found in an
earlier stage (the operator is monotone within a stratum because
negated atoms live in strictly lower, already-fixed strata).  The new
stage's delta is the derived relation minus the accumulator; the
stratum has converged exactly when every delta is empty, so no
relation-equivalence checks — and no re-simplification of unchanged
relations — happen at all.

Telemetry: ``datalog.delta_disjuncts`` counts the DNF disjuncts flowing
through deltas (the semi-naive analogue of "tuples inserted"), and
``datalog.seminaive_runs`` counts evaluations; both appear in ``repro
profile`` output next to the shared ``datalog.runs`` / ``datalog.stages``
counters.
"""

from __future__ import annotations

from repro.constraints.database import ConstraintDatabase
from repro.constraints.relation import (
    ConstraintRelation,
    union_relations,
)
from repro.obs.journal import JOURNAL
from repro.obs.metrics import get_registry
from repro.obs.tracing import TRACER

from repro.datalog.engine import (
    EvaluationOutcome,
    Program,
    Rule,
    _DATALOG_RUNS,
    _DATALOG_STAGES,
    _rule_once,
)

_SEMINAIVE_RUNS = get_registry().counter("datalog.seminaive_runs")
_DELTA_DISJUNCTS = get_registry().counter("datalog.delta_disjuncts")


def _recursive_positions(rule: Rule, members: set[str]) -> list[int]:
    """Body positions whose predicate belongs to the current stratum."""
    return [
        position
        for position, atom in enumerate(rule.body)
        if atom.predicate in members
    ]


def evaluate_program_seminaive(
    program: Program,
    database: ConstraintDatabase,
    max_stages: int = 25,
) -> EvaluationOutcome:
    """Stratified semi-naive iteration; same answers as the naive engine.

    Outcome shape matches :func:`repro.datalog.engine.evaluate_program`
    with ``strategy="naive"``: ``stages`` counts the stages that changed
    something, ``stage_sizes`` records the accumulated representation
    size per stage, and hitting ``max_stages`` with a non-empty delta
    reports divergence.
    """
    program.validate(database)
    _DATALOG_RUNS.inc()
    _SEMINAIVE_RUNS.inc()
    idb: dict[str, ConstraintRelation] = {}
    for predicate in program.idb_predicates():
        arity = program.arity_of(predicate)
        schema = tuple(f"v{i}" for i in range(arity))
        idb[predicate] = ConstraintRelation.empty(schema)

    sizes: list[int] = []
    total_stages = 0
    with TRACER.span("datalog.run") as run_span:
        run_span.set("strategy", "seminaive")
        run_span.set("executor", "interpreted")
        for stratum in program.strata():
            members = set(stratum)
            rules_of = {
                predicate: [
                    rule
                    for rule in program.rules
                    if rule.head.predicate == predicate
                ]
                for predicate in stratum
            }
            delta: dict[str, ConstraintRelation] | None = None
            for stage in range(1, max_stages + 1):
                with TRACER.span("datalog.stage", aggregate=True):
                    new_delta: dict[str, ConstraintRelation] = {}
                    for predicate in stratum:
                        current = idb[predicate]
                        derived: list[ConstraintRelation] = []
                        for rule in rules_of[predicate]:
                            recursive = _recursive_positions(rule, members)
                            if delta is None:
                                # First stage: every rule fires in full.
                                derived.append(
                                    _rule_once(
                                        rule, database, idb
                                    ).rename_to(current.variables)
                                )
                                continue
                            # Later stages: one firing per recursive
                            # occurrence, that occurrence bound to the
                            # last delta.  Rules without recursive
                            # occurrences can derive nothing new.
                            for position in recursive:
                                body_delta = delta[
                                    rule.body[position].predicate
                                ]
                                if body_delta.is_empty():
                                    continue
                                sources: list[ConstraintRelation | None]
                                sources = [None] * len(rule.body)
                                sources[position] = body_delta
                                derived.append(
                                    _rule_once(
                                        rule,
                                        database,
                                        idb,
                                        body_sources=sources,
                                    ).rename_to(current.variables)
                                )
                        if derived:
                            fresh = (
                                union_relations(derived)
                                .difference(current)
                                .simplify()
                            )
                        else:
                            fresh = ConstraintRelation.empty(
                                current.variables
                            )
                        new_delta[predicate] = fresh
                        _DELTA_DISJUNCTS.inc(len(fresh.disjuncts()))
                    # Apply all deltas after the derivation sweep, so
                    # every rule in a stage reads the previous stage
                    # (matching the naive engine's synchronous update);
                    # empty deltas leave the accumulator object — and
                    # its cached canonical form — untouched.
                    for predicate in stratum:
                        fresh = new_delta[predicate]
                        if not fresh.is_empty():
                            idb[predicate] = union_relations(
                                [idb[predicate], fresh]
                            ).simplify()
                    sizes.append(
                        sum(
                            idb[p].representation_size()
                            for p in stratum
                        )
                    )
                    delta = new_delta
                    converged_now = all(
                        fresh.is_empty() for fresh in new_delta.values()
                    )
                    if JOURNAL.enabled:
                        JOURNAL.emit(
                            "datalog.stage",
                            strategy="seminaive",
                            executor="interpreted",
                            stage=stage,
                            deltas={
                                predicate: len(
                                    new_delta[predicate].disjuncts()
                                )
                                for predicate in stratum
                            },
                        )
                if converged_now:
                    break
                total_stages += 1
                _DATALOG_STAGES.inc()
            else:
                run_span.set("stages", total_stages)
                return EvaluationOutcome(idb, total_stages, False, sizes)
        run_span.set("stages", total_stages)
    return EvaluationOutcome(idb, total_stages, True, sizes)
