"""Spatial datalog over linear constraint databases.

The paper's related work (Geerts & Kuijpers [5]) studies *spatial
datalog*: datalog whose relations are constraint relations over the
reals.  Connectivity is expressible by a program that terminates on
every input of a suitable class, but spatial datalog programs in
general "will not terminate on every input" — the same phenomenon the
region restriction fixes.

This package implements positive spatial datalog with semi-naive-style
bottom-up evaluation over :class:`~repro.constraints.relation.
ConstraintRelation` values, exact convergence checks, and a stage cap
so divergence is observable rather than fatal.
"""

from repro.datalog.engine import (
    Atom as DatalogAtom,
    EvaluationOutcome,
    Program,
    Rule,
    evaluate_program,
)
from repro.datalog.seminaive import evaluate_program_seminaive

__all__ = [
    "DatalogAtom",
    "EvaluationOutcome",
    "Program",
    "Rule",
    "evaluate_program",
    "evaluate_program_seminaive",
]
