"""Compilation of datalog rules to relational-algebra IR.

The interpreted engines (:mod:`repro.datalog.engine`,
:mod:`repro.datalog.seminaive`) re-walk every rule at every stage:
re-renaming EDB relations, re-cylindrifying, re-complementing negated
atoms, and re-deciding the same LP feasibility questions.  This module
compiles each stratum **once** into plans over the IR of
:mod:`repro.ir.nodes`:

* per rule, a *full* plan (used at stage 1) and one *delta* plan per
  recursive body occurrence (stage ≥ 2, that occurrence bound to the
  last delta and guarded on its non-emptiness);
* per predicate, a stage combiner
  ``Simplify(Diff(Union(firings), Scan(idb)))`` — the semi-naive
  "derived minus accumulator" as an IR diff — and an accumulate
  combiner ``Simplify(Union(Scan(idb), Scan(fresh)))``;
* EDB pieces, rule constraints and negated atoms (whose predicates are
  final by stratification when the stratum starts) are hoisted into
  :class:`~repro.ir.nodes.Const` nodes, out of the stage loop entirely.

The driver :func:`evaluate_program_compiled` then mirrors
:func:`repro.datalog.seminaive.evaluate_program_seminaive` line for
line — same stage structure, same synchronous delta application, same
counters, journal events and divergence behaviour — but evaluates plans
through the memoised kernels of :mod:`repro.ir.kernels`.  Stage
relations are byte-identical to the interpreted engine by construction
(the kernels run the same pruned-DNF control flow); the equivalence
fuzz suite enforces this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EvaluationError
from repro.constraints.database import ConstraintDatabase
from repro.constraints.relation import ConstraintRelation
from repro.obs.journal import JOURNAL
from repro.obs.metrics import get_registry
from repro.obs.tracing import TRACER

from repro.datalog.engine import (
    EvaluationOutcome,
    Program,
    Rule,
    _DATALOG_RUNS,
    _DATALOG_STAGES,
)
from repro.datalog.seminaive import (
    _DELTA_DISJUNCTS,
    _SEMINAIVE_RUNS,
    _recursive_positions,
)
from repro.ir import nodes as ir
from repro.ir.executor import ExecutionContext, execute
from repro.ir.kernels import KernelCache

_COMPILED_RUNS = get_registry().counter("datalog.compiled_runs")


def _check_atom(atom) -> None:
    if len(set(atom.variables)) != len(atom.variables):
        raise EvaluationError(
            f"repeated variables in {atom}; use an explicit "
            "equality constraint instead"
        )


def _compile_rule(
    rule: Rule,
    database: ConstraintDatabase,
    idb_predicates: set[str],
    members: set[str],
    idb: dict[str, ConstraintRelation] | None,
    head_schema: tuple[str, ...],
    delta_position: int | None,
) -> ir.IRNode:
    """One rule firing as a plan (optionally delta-bound at a position).

    Mirrors :func:`repro.datalog.engine._rule_once` exactly: body pieces
    in order, then negated pieces, then the constraint; join; project
    out non-head variables in schema order; rename to the head, then to
    the predicate's canonical ``v0..vn`` schema.
    """
    schema = rule.variables()
    pieces: list[ir.IRNode] = []
    for position, atom in enumerate(rule.body):
        _check_atom(atom)
        if delta_position is not None and position == delta_position:
            source: ir.IRNode = ir.Scan("delta", atom.predicate)
            pieces.append(
                ir.Widen(ir.Rename(source, atom.variables), schema)
            )
        elif atom.predicate in idb_predicates:
            source = ir.Scan("idb", atom.predicate)
            pieces.append(
                ir.Widen(ir.Rename(source, atom.variables), schema)
            )
        else:
            hoisted = database.relation(atom.predicate).rename_to(
                atom.variables
            )
            pieces.append(
                ir.Const(
                    ConstraintRelation.make(schema, hoisted.formula),
                    note=str(atom),
                )
            )
    for atom in rule.negated:
        _check_atom(atom)
        if atom.predicate in idb_predicates:
            if atom.predicate in members:
                raise EvaluationError(
                    f"negated atom {atom} inside its own stratum"
                )
            if idb is None:
                # Symbolic plan (explain): keep the complement in the IR.
                negated: ir.IRNode = ir.Widen(
                    ir.Complement(
                        ir.Rename(
                            ir.Scan("idb", atom.predicate), atom.variables
                        )
                    ),
                    schema,
                )
                pieces.append(negated)
                continue
            source_rel = idb[atom.predicate]
        else:
            source_rel = database.relation(atom.predicate)
        # Stratification makes the negated relation final before this
        # stratum runs, so its complement hoists out of the stage loop.
        complemented = source_rel.rename_to(atom.variables).complement()
        pieces.append(
            ir.Const(
                ConstraintRelation.make(schema, complemented.formula),
                note=f"!{atom}",
            )
        )
    if rule.constraint is not None:
        pieces.append(
            ir.Const(
                ConstraintRelation.make(schema, rule.constraint),
                note=str(rule.constraint),
            )
        )
    if not pieces:
        raise EvaluationError(f"rule {rule} has an empty body")
    plan: ir.IRNode = ir.Join(pieces)
    plan = ir.Project(plan, rule.head.variables)
    plan = ir.Rename(plan, rule.head.variables)
    plan = ir.Rename(plan, head_schema)
    if delta_position is not None:
        plan = ir.Guard(plan, rule.body[delta_position].predicate)
    return plan


@dataclass
class CompiledStratum:
    """Per-predicate plans for one stratum."""

    predicates: tuple[str, ...]
    #: Stage-1 combiner per predicate: every rule fires in full.
    stage_one: dict[str, ir.IRNode] = field(default_factory=dict)
    #: Stage ≥ 2 combiner: one guarded firing per recursive occurrence.
    stage_next: dict[str, ir.IRNode] = field(default_factory=dict)
    #: Accumulate combiner, run only when the stage's delta is non-empty.
    accumulate: dict[str, ir.IRNode] = field(default_factory=dict)


def compile_stratum(
    program: Program,
    stratum: tuple[str, ...],
    database: ConstraintDatabase,
    idb: dict[str, ConstraintRelation] | None,
) -> CompiledStratum:
    """Compile one stratum's rules into stage plans.

    ``idb`` supplies the (final) relations of lower strata so negated
    atoms hoist into constants; pass ``None`` for a symbolic plan (used
    by ``repro explain --datalog``), which keeps complements in the IR.
    """
    idb_predicates = set(program.idb_predicates())
    members = set(stratum)
    compiled = CompiledStratum(predicates=tuple(stratum))
    for predicate in stratum:
        arity = program.arity_of(predicate)
        head_schema = tuple(f"v{i}" for i in range(arity))
        rules = [
            rule
            for rule in program.rules
            if rule.head.predicate == predicate
        ]
        full = [
            _compile_rule(
                rule, database, idb_predicates, members, idb,
                head_schema, None,
            )
            for rule in rules
        ]
        deltas = [
            _compile_rule(
                rule, database, idb_predicates, members, idb,
                head_schema, position,
            )
            for rule in rules
            for position in _recursive_positions(rule, members)
        ]
        accumulator = ir.Scan("idb", predicate)
        compiled.stage_one[predicate] = ir.Simplify(
            ir.Diff(ir.Union(full), accumulator)
        )
        compiled.stage_next[predicate] = ir.Simplify(
            ir.Diff(ir.Union(deltas), accumulator)
        )
        compiled.accumulate[predicate] = ir.Simplify(
            ir.Union([ir.Scan("idb", predicate), ir.Scan("fresh", predicate)])
        )
    return compiled


def compile_program(
    program: Program, database: ConstraintDatabase
) -> list[CompiledStratum]:
    """Symbolic plans for every stratum (for plan rendering)."""
    program.validate(database)
    return [
        compile_stratum(program, stratum, database, None)
        for stratum in program.strata()
    ]


def evaluate_program_compiled(
    program: Program,
    database: ConstraintDatabase,
    max_stages: int = 25,
    profiler=None,
    kernels: KernelCache | None = None,
    compiled_strata: "list[CompiledStratum] | None" = None,
    stratum_hook=None,
) -> EvaluationOutcome:
    """Semi-naive evaluation through compiled IR plans.

    Outcome, stage structure, counters and journal events match
    :func:`~repro.datalog.seminaive.evaluate_program_seminaive`; only
    the per-stage work is set-at-a-time over the compiled plans.  The
    ``datalog.seminaive_runs`` counter is incremented here too — the
    compiled executor *is* the semi-naive strategy, differently
    executed — plus ``datalog.compiled_runs`` to tell the tiers apart.

    ``compiled_strata`` optionally supplies pre-built plans (aligned
    with :meth:`Program.strata`): ``repro explain --datalog`` passes the
    symbolic plans it renders, so :class:`~repro.explain.NodeProfiler`
    costs key to the exact node objects shown in the plan tree.
    Symbolic plans keep negated atoms as in-loop :class:`ir.Complement`
    nodes instead of hoisted constants; the relations computed are
    identical.

    ``stratum_hook`` (when given) is applied to each freshly compiled
    stratum before it runs.  Incremental maintenance
    (:mod:`repro.incremental.fixpoint`) uses it to intern the hoisted
    constants of every plan through one cross-version
    :class:`~repro.incremental.interning.Interner`, so a persistent
    kernel's identity-keyed memos keep hitting after a database delta.
    The hook must be structure-preserving (it may substitute
    structurally equal objects only); the evaluation control flow is
    byte-for-byte the one above either way.
    """
    program.validate(database)
    _DATALOG_RUNS.inc()
    _SEMINAIVE_RUNS.inc()
    _COMPILED_RUNS.inc()
    if kernels is None:
        kernels = KernelCache()
    idb: dict[str, ConstraintRelation] = {}
    for predicate in program.idb_predicates():
        arity = program.arity_of(predicate)
        schema = tuple(f"v{i}" for i in range(arity))
        idb[predicate] = ConstraintRelation.empty(schema)

    sizes: list[int] = []
    total_stages = 0
    context = ExecutionContext(idb=idb, delta={}, fresh={})
    with TRACER.span("datalog.run") as run_span:
        run_span.set("strategy", "seminaive")
        run_span.set("executor", "compiled")
        for position, stratum in enumerate(program.strata()):
            if compiled_strata is not None:
                compiled = compiled_strata[position]
            else:
                compiled = compile_stratum(program, stratum, database, idb)
                if stratum_hook is not None:
                    compiled = stratum_hook(compiled)
            first_stage = True
            for stage in range(1, max_stages + 1):
                with TRACER.span("datalog.stage", aggregate=True):
                    new_delta: dict[str, ConstraintRelation] = {}
                    for predicate in stratum:
                        plan = (
                            compiled.stage_one[predicate]
                            if first_stage
                            else compiled.stage_next[predicate]
                        )
                        fresh = execute(plan, context, kernels, profiler)
                        if fresh is None:
                            fresh = ConstraintRelation.empty(
                                idb[predicate].variables
                            )
                        new_delta[predicate] = fresh
                        _DELTA_DISJUNCTS.inc(len(fresh.disjuncts()))
                    # Synchronous delta application, as in the
                    # interpreted engine: every rule in a stage reads
                    # the previous stage's accumulators.
                    for predicate in stratum:
                        fresh = new_delta[predicate]
                        if not fresh.is_empty():
                            context.fresh[predicate] = fresh
                            idb[predicate] = execute(
                                compiled.accumulate[predicate],
                                context,
                                kernels,
                                profiler,
                            )
                            del context.fresh[predicate]
                    sizes.append(
                        sum(
                            idb[p].representation_size()
                            for p in stratum
                        )
                    )
                    context.delta = new_delta
                    first_stage = False
                    converged_now = all(
                        fresh.is_empty() for fresh in new_delta.values()
                    )
                    if JOURNAL.enabled:
                        JOURNAL.emit(
                            "datalog.stage",
                            strategy="seminaive",
                            executor="compiled",
                            stage=stage,
                            deltas={
                                predicate: len(
                                    new_delta[predicate].disjuncts()
                                )
                                for predicate in stratum
                            },
                        )
                if converged_now:
                    break
                total_stages += 1
                _DATALOG_STAGES.inc()
            else:
                run_span.set("stages", total_stages)
                return EvaluationOutcome(idb, total_stages, False, sizes)
        run_span.set("stages", total_stages)
    return EvaluationOutcome(idb, total_stages, True, sizes)
