"""Negation and disjunctive normal forms for quantifier-free formulas.

DNF is the paper's canonical representation shape: every database relation
is stored as ``⋁_i ⋀_j φ_ij`` with atomic ``φ_ij`` (Section 2).  The
conversion here is exact and negation-free in its output — negated atoms
are rewritten using the complemented comparison operators, with ``¬(t = 0)``
split into ``t < 0 ∨ t > 0``.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import FormulaError
from repro.constraints.atoms import Atom
from repro.constraints.formula import (
    And,
    AtomFormula,
    FalseFormula,
    Formula,
    Not,
    Or,
    TrueFormula,
    conjunction,
    disjunction,
    FALSE,
    TRUE,
)

Disjunct = tuple[Atom, ...]


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form of a quantifier-free formula.

    The result contains no :class:`Not` nodes at all: negation is pushed
    to the atoms and absorbed into complemented operators.
    """
    return _nnf(formula, negate=False)


def _nnf(formula: Formula, negate: bool) -> Formula:
    if isinstance(formula, TrueFormula):
        return FALSE if negate else TRUE
    if isinstance(formula, FalseFormula):
        return TRUE if negate else FALSE
    if isinstance(formula, AtomFormula):
        if not negate:
            return formula
        return disjunction(
            AtomFormula(a) for a in formula.atom.negated_atoms()
        )
    if isinstance(formula, Not):
        return _nnf(formula.operand, not negate)
    if isinstance(formula, And):
        parts = tuple(_nnf(f, negate) for f in formula.operands)
        return disjunction(parts) if negate else conjunction(parts)
    if isinstance(formula, Or):
        parts = tuple(_nnf(f, negate) for f in formula.operands)
        return conjunction(parts) if negate else disjunction(parts)
    raise FormulaError(
        f"to_nnf expects a quantifier-free formula, got {type(formula).__name__}"
    )


def to_dnf(formula: Formula) -> list[Disjunct]:
    """Disjunctive normal form as a list of atom conjunctions.

    Each disjunct is a tuple of atoms (its conjunction); the formula is
    the disjunction of all disjuncts.  An empty list is ⊥; a list holding
    an empty tuple contains ⊤ as a disjunct.  Trivially-false disjuncts
    (e.g. containing ``0 > 1``) are dropped; trivially-true atoms are
    removed from their disjuncts; duplicate atoms are collapsed.
    """
    nnf = to_nnf(formula)
    raw = _dnf(nnf)
    cleaned: list[Disjunct] = []
    seen: set[Disjunct] = set()
    for disjunct in raw:
        reduced = _clean_disjunct(disjunct)
        if reduced is None:
            continue
        if reduced not in seen:
            seen.add(reduced)
            cleaned.append(reduced)
    return cleaned


def _dnf(formula: Formula) -> list[Disjunct]:
    if isinstance(formula, TrueFormula):
        return [()]
    if isinstance(formula, FalseFormula):
        return []
    if isinstance(formula, AtomFormula):
        return [(formula.atom,)]
    if isinstance(formula, Or):
        result: list[Disjunct] = []
        for operand in formula.operands:
            result.extend(_dnf(operand))
        return result
    if isinstance(formula, And):
        result = [()]
        for operand in formula.operands:
            operand_dnf = _dnf(operand)
            result = [
                left + right for left in result for right in operand_dnf
            ]
            if not result:
                return []
        return result
    raise FormulaError(
        f"unexpected node in NNF: {type(formula).__name__}"
    )


def _clean_disjunct(disjunct: Disjunct) -> Disjunct | None:
    """Drop trivially-true atoms; None when a trivially-false atom occurs."""
    kept: list[Atom] = []
    seen: set[Atom] = set()
    for atom in disjunct:
        if atom.is_trivial():
            if not atom.trivial_truth():
                return None
            continue
        if atom not in seen:
            seen.add(atom)
            kept.append(atom)
    return tuple(kept)


def dnf_to_formula(disjuncts: Sequence[Disjunct]) -> Formula:
    """Rebuild a formula from DNF disjuncts."""
    return disjunction(
        conjunction(AtomFormula(a) for a in disjunct)
        for disjunct in disjuncts
    )
