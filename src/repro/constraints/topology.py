"""Topological operators on linear constraint relations.

Closure, interior and boundary are first-order definable over (ℝ, <, +)
via ε-neighbourhoods (the same device Definition 4.1 uses for
adjacency):

    closure(S)  = { x : ∀ε>0 ∃y (S(y) ∧ ⋀_i |x_i − y_i| < ε) }
    interior(S) = { x : ∃ε>0 ∀y (⋀_i |x_i − y_i| < ε → S(y)) }
    boundary(S) = closure(S) ∖ interior(S)

Quantifier elimination turns each into a quantifier-free relation, so
the operators stay inside the linear constraint class — a small
showcase of FO+LIN's closure properties, and the basis for the
ε-neighbourhood validation of the adjacency relation in the tests.
"""

from __future__ import annotations

from repro.constraints.formula import (
    AtomFormula,
    Exists,
    Forall,
    Formula,
    Not,
    conjunction,
    fresh_variable,
)
from repro.constraints.atoms import Atom, Op
from repro.constraints.relation import ConstraintRelation
from repro.constraints.terms import LinearTerm


def _box_formula(
    xs: tuple[str, ...], ys: tuple[str, ...], epsilon: str
) -> Formula:
    """⋀_i |x_i − y_i| < ε."""
    eps = LinearTerm.variable(epsilon)
    parts = []
    for x_name, y_name in zip(xs, ys):
        diff = LinearTerm.variable(x_name) - LinearTerm.variable(y_name)
        parts.append(AtomFormula(Atom.compare(diff, Op.LT, eps)))
        parts.append(AtomFormula(Atom.compare(-diff, Op.LT, eps)))
    return conjunction(parts)


def _fresh_tuple(taken: set[str], arity: int, stem: str) -> tuple[str, ...]:
    names = []
    for __ in range(arity):
        name = fresh_variable(taken, stem)
        taken.add(name)
        names.append(name)
    return tuple(names)


def closure(relation: ConstraintRelation) -> ConstraintRelation:
    """The topological closure, as a quantifier-free relation."""
    xs = relation.variables
    taken = set(xs)
    ys = _fresh_tuple(taken, relation.arity, "y")
    epsilon = fresh_variable(taken, "eps")
    membership = relation.substitute(
        {x: LinearTerm.variable(y) for x, y in zip(xs, ys)}
    )
    eps_positive = AtomFormula(
        Atom.compare(LinearTerm.const(0), Op.LT,
                     LinearTerm.variable(epsilon))
    )
    near = _box_formula(xs, ys, epsilon)
    inner: Formula = conjunction([membership, near])
    for y in ys:
        inner = Exists(y, inner)
    body = Forall(
        epsilon,
        Not(eps_positive) | inner,
    )
    return ConstraintRelation.make(xs, body).simplify()


def interior(relation: ConstraintRelation) -> ConstraintRelation:
    """The topological interior (w.r.t. the ambient space ℝ^d)."""
    xs = relation.variables
    taken = set(xs)
    ys = _fresh_tuple(taken, relation.arity, "y")
    epsilon = fresh_variable(taken, "eps")
    membership = relation.substitute(
        {x: LinearTerm.variable(y) for x, y in zip(xs, ys)}
    )
    eps_positive = AtomFormula(
        Atom.compare(LinearTerm.const(0), Op.LT,
                     LinearTerm.variable(epsilon))
    )
    near = _box_formula(xs, ys, epsilon)
    implication: Formula = Not(near) | membership
    for y in ys:
        implication = Forall(y, implication)
    body = Exists(epsilon, conjunction([eps_positive, implication]))
    return ConstraintRelation.make(xs, body).simplify()


def boundary(relation: ConstraintRelation) -> ConstraintRelation:
    """closure(S) minus interior(S)."""
    return closure(relation).difference(interior(relation)).simplify()


def is_closed(relation: ConstraintRelation) -> bool:
    """Is S topologically closed?"""
    return closure(relation).equivalent(relation)


def is_open(relation: ConstraintRelation) -> bool:
    """Is S topologically open (in the ambient space)?"""
    return interior(relation).equivalent(relation)
