"""Pruned DNF algebra — the engine behind polynomial-time evaluation.

Boolean operations on DNF-represented relations distribute conjunctions
over disjunctions; done naively the intermediate representation explodes
exponentially in the number of disjuncts (think of negating a union over
all region pairs).  The classical remedy, and what makes the PTIME bound
of Theorem 4.3 real in an implementation, is *incremental pruning*: while
multiplying factors out, discard every partial conjunction that is
already infeasible over (ℝ, <, +).  Each surviving conjunction denotes a
non-empty set, and distinct surviving conjunctions of atoms over the same
hyperplanes denote distinct cells of the atom arrangement — so the number
of survivors is bounded by the cell count O(m^k) for m atoms in k
variables, polynomial for fixed arity.

The functions here work on the ``Disjunct`` representation of
:mod:`repro.constraints.normal_forms` (tuples of atoms, conjunction
implied, list = disjunction).

Every pruning entry point accepts an optional ``feasibility`` callable
(``Disjunct -> bool``) replacing the default exact LP decision
:func:`disjunct_feasible`.  The compiled executor
(:mod:`repro.ir.kernels`) passes a memoised, prefiltered — but
observationally identical — decision procedure this way, so both
executors run the *same* control flow over the same disjunct orders and
produce byte-identical formulas; only who pays for each feasibility
verdict differs.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.geometry.simplex import feasible
from repro.constraints.atoms import Atom
from repro.constraints.normal_forms import Disjunct

#: Signature of a pluggable feasibility decision over a conjunction.
FeasibilityFn = Callable[[Disjunct], bool]


def disjunct_feasible(disjunct: Disjunct) -> bool:
    """Exact non-emptiness of a conjunction of atoms."""
    live = []
    for atom in disjunct:
        if atom.is_trivial():
            if not atom.trivial_truth():
                return False
            continue
        live.append(atom)
    if not live:
        return True
    variables = sorted({v for atom in live for v in atom.variables})
    system = [atom.to_linear_constraint(variables) for atom in live]
    return feasible(system, dimension=len(variables))


def _normalise(disjunct: Disjunct) -> Disjunct | None:
    """Dedupe atoms, drop trivially-true ones; None if trivially false."""
    kept: list[Atom] = []
    seen: set[Atom] = set()
    for atom in disjunct:
        if atom.is_trivial():
            if not atom.trivial_truth():
                return None
            continue
        if atom not in seen:
            seen.add(atom)
            kept.append(atom)
    return tuple(kept)


def prune_disjuncts(
    disjuncts: Sequence[Disjunct],
    *,
    feasibility: FeasibilityFn = disjunct_feasible,
) -> list[Disjunct]:
    """Normalise, dedupe and drop infeasible disjuncts."""
    output: list[Disjunct] = []
    seen: set[Disjunct] = set()
    for disjunct in disjuncts:
        reduced = _normalise(disjunct)
        if reduced is None or reduced in seen:
            continue
        seen.add(reduced)
        if feasibility(reduced):
            output.append(reduced)
    return output


def dnf_product(
    factors: Sequence[Sequence[Disjunct]],
    *,
    feasibility: FeasibilityFn = disjunct_feasible,
) -> list[Disjunct]:
    """Conjunction of several DNFs, distributed with incremental pruning.

    Returns the DNF of ``⋀_i ⋁_j C_ij``; every partial product that
    becomes infeasible is cut immediately, so intermediate size never
    exceeds the true cell count times the branching factor.
    """
    partial: list[Disjunct] = [()]
    for factor in factors:
        grown: list[Disjunct] = []
        seen: set[Disjunct] = set()
        for prefix in partial:
            for disjunct in factor:
                candidate = _normalise(prefix + disjunct)
                if candidate is None or candidate in seen:
                    continue
                seen.add(candidate)
                if feasibility(candidate):
                    grown.append(candidate)
        partial = grown
        if not partial:
            return []
    return partial


def remove_redundant_atoms(
    disjunct: Disjunct,
    *,
    feasibility: FeasibilityFn = disjunct_feasible,
) -> Disjunct:
    """Drop atoms implied by the rest of their conjunction.

    Atom a is redundant in C iff (C ∖ {a}) ∧ ¬a is infeasible.  Greedy
    left-to-right removal; the result denotes the same set with a
    minimal-ish representation.  Used by explicit simplification, not by
    the hot evaluation paths.
    """
    kept = list(disjunct)
    index = 0
    while index < len(kept):
        candidate = kept[index]
        rest = kept[:index] + kept[index + 1:]
        negated_feasible = any(
            feasibility(tuple(rest) + (negated,))
            for negated in candidate.negated_atoms()
        )
        if not negated_feasible:
            kept.pop(index)
        else:
            index += 1
    return tuple(kept)


def merge_equality_pairs(disjunct: Disjunct) -> Disjunct:
    """Replace complementary bound pairs ``t ≤ 0 ∧ t ≥ 0`` by ``t = 0``.

    Sign-vector cells express equalities as two opposite non-strict
    bounds; merging them makes simplified output read naturally.
    """
    from repro.constraints.atoms import Op

    atoms = list(disjunct)
    result: list = []
    consumed: set[int] = set()
    for i, atom in enumerate(atoms):
        if i in consumed:
            continue
        partner = None
        if atom.op in (Op.LE, Op.GE):
            for j in range(i + 1, len(atoms)):
                if j in consumed:
                    continue
                other = atoms[j]
                if other.op not in (Op.LE, Op.GE):
                    continue
                if other.term == atom.term and other.op is not atom.op:
                    partner = j
                    break
                if other.term == -atom.term and other.op is atom.op:
                    partner = j
                    break
        if partner is not None:
            from repro.constraints.atoms import Atom

            consumed.add(partner)
            term = atom.term
            if term.coefficients and term.coefficients[0][1] < 0:
                term = -term
            result.append(Atom(term, Op.EQ))
        else:
            result.append(atom)
    return tuple(result)


def _subsumed(
    smaller: Disjunct,
    larger: Disjunct,
    *,
    feasibility: FeasibilityFn = disjunct_feasible,
) -> bool:
    """Does ``larger`` contain ``smaller`` as a set (smaller ⟹ larger)?"""
    return all(
        not feasibility(smaller + (negated,))
        for atom in larger
        for negated in atom.negated_atoms()
    )


def minimise_dnf(
    disjuncts: Sequence[Disjunct],
    *,
    feasibility: FeasibilityFn = disjunct_feasible,
    reduce_disjunct=None,
    subsumes=None,
) -> list[Disjunct]:
    """Feasibility-prune, remove redundant atoms, drop subsumed disjuncts.

    ``reduce_disjunct`` and ``subsumes`` optionally replace the
    per-disjunct reduction (redundant-atom removal + equality merging)
    and the pairwise subsumption test with observationally identical
    implementations — the compiled executor passes memoised versions,
    since fixpoint accumulators re-minimise mostly unchanged disjunct
    sets stage after stage.
    """
    if reduce_disjunct is None:
        def reduce_disjunct(d: Disjunct) -> Disjunct:
            return merge_equality_pairs(
                remove_redundant_atoms(d, feasibility=feasibility)
            )
    if subsumes is None:
        def subsumes(smaller: Disjunct, larger: Disjunct) -> bool:
            return _subsumed(smaller, larger, feasibility=feasibility)
    cleaned = [
        reduce_disjunct(d)
        for d in prune_disjuncts(disjuncts, feasibility=feasibility)
    ]
    cleaned = prune_disjuncts(cleaned, feasibility=feasibility)
    survivors: list[Disjunct] = []
    for index, disjunct in enumerate(cleaned):
        absorbed = False
        for other_index, other in enumerate(cleaned):
            if other_index == index:
                continue
            # Keep the earlier disjunct on mutual subsumption.
            if subsumes(disjunct, other) and not (
                other_index > index and subsumes(other, disjunct)
            ):
                absorbed = True
                break
        if not absorbed:
            survivors.append(disjunct)
    return survivors


def to_dnf_pruned(formula) -> list[Disjunct]:
    """DNF conversion with feasibility pruning at every distribution.

    The naive ``to_dnf`` distributes blindly and can explode on
    conjunctions of disjunctions (e.g. negated unions inside quantifier
    elimination).  This version converts to NNF first and then builds
    the DNF bottom-up, running every conjunction through
    :func:`dnf_product` so infeasible partial products die immediately.
    Output is semantically equal to ``to_dnf`` (trivially-false
    disjuncts dropped either way).
    """
    from repro.constraints.formula import (
        And,
        AtomFormula,
        FalseFormula,
        Or,
        TrueFormula,
    )
    from repro.constraints.normal_forms import to_nnf
    from repro.errors import FormulaError

    def convert(node) -> list[Disjunct]:
        if isinstance(node, TrueFormula):
            return [()]
        if isinstance(node, FalseFormula):
            return []
        if isinstance(node, AtomFormula):
            return [(node.atom,)]
        if isinstance(node, Or):
            collected: list[Disjunct] = []
            for operand in node.operands:
                collected.extend(convert(operand))
            return prune_disjuncts(collected)
        if isinstance(node, And):
            return dnf_product([convert(op) for op in node.operands])
        raise FormulaError(
            f"unexpected node in NNF: {type(node).__name__}"
        )

    return convert(to_nnf(formula))


def negate_disjunct(disjunct: Disjunct) -> list[Disjunct]:
    """¬(a_1 ∧ .. ∧ a_m) as a DNF: one disjunct per complemented atom."""
    result: list[Disjunct] = []
    for atom in disjunct:
        for negated in atom.negated_atoms():
            result.append((negated,))
    return result


def negate_dnf(
    disjuncts: Sequence[Disjunct],
    *,
    feasibility: FeasibilityFn = disjunct_feasible,
) -> list[Disjunct]:
    """Complement of a DNF, with pruning (¬⋁_i C_i = ⋀_i ¬C_i)."""
    if not disjuncts:
        return [()]
    factors = [negate_disjunct(d) for d in disjuncts]
    return dnf_product(factors, feasibility=feasibility)


def cell_complement(
    disjuncts: Sequence[Disjunct],
    variables: Sequence[str],
    *,
    enumerate_cells=None,
    disjunct_holds=None,
    face_atoms=None,
) -> list[Disjunct]:
    """Complement via the arrangement of the formula's own atoms.

    The truth of a DNF is constant on every face of the arrangement of
    the hyperplanes induced by its atoms (the same observation Section 3
    makes for database representations).  So the complement is exactly
    the union of the faces whose witness point falsifies the formula —
    one pointwise evaluation per face instead of an exponential product.
    The face count is O(m^k) for m distinct hyperplanes in k variables,
    so this is the polynomially-bounded path for large disjunct counts.

    ``enumerate_cells`` optionally replaces the cell enumeration: a
    callable ``(planes, k) -> iterable[(signs, witness)]`` that must
    yield the faces ``enumerate_sign_vectors(planes, k)`` would, in the
    same order (witnesses may be any point of the face — truth is
    constant per face).  ``disjunct_holds(disjunct, order, witness)``
    and ``face_atoms(planes, signs, order)`` optionally replace the
    per-face truth test and the face-to-atoms rendering with
    observationally identical implementations.  The compiled executor
    passes an incremental cell index and memoised versions of all
    three — fixpoint accumulators re-complement mostly unchanged
    arrangements stage after stage.
    """
    from repro.arrangement.builder import enumerate_sign_vectors
    from repro.arrangement.faces import sign_vector_constraints
    from repro.constraints.atoms import atom_from_constraint

    if enumerate_cells is None:
        enumerate_cells = enumerate_sign_vectors
    if disjunct_holds is None:
        assignments: dict = {}

        def disjunct_holds(disjunct, order_, witness):
            assignment = assignments.get(witness)
            if assignment is None:
                assignment = dict(zip(order_, witness))
                assignments[witness] = assignment
            return all(a.holds_at(assignment) for a in disjunct)
    if face_atoms is None:
        def face_atoms(planes_, signs, order_):
            rows = sign_vector_constraints(planes_, signs)
            return tuple(
                atom_from_constraint(row, order_) for row in rows
            )

    order = list(variables)
    k = len(order)
    if k == 0:
        # Nullary relation: complement is TRUE iff the DNF is empty.
        return [()] if not disjuncts else []
    plane_set = {}
    for disjunct in disjuncts:
        for atom in disjunct:
            plane = atom.hyperplane(order)
            if plane is not None:
                plane_set[plane] = None
    planes = sorted(plane_set, key=lambda h: (h.normal, h.offset))

    order_t = tuple(order)
    output: list[Disjunct] = []
    for signs, witness in enumerate_cells(planes, k):
        if any(
            disjunct_holds(disjunct, order_t, witness)
            for disjunct in disjuncts
        ):
            continue
        output.append(face_atoms(planes, signs, order_t))
    return output
