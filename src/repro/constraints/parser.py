"""Text front end for linear constraint formulas.

The grammar (loosest to tightest binding)::

    formula   := implies ( "<->" implies )*
    implies   := or ( "->" implies )?
    or        := and ( "|" and )*
    and       := unary ( "&" unary )*
    unary     := "!" unary
               | ("EXISTS" | "FORALL") var ("," var)* "." formula
               | "(" formula ")"
               | "true" | "false"
               | comparison
    comparison:= term ( OP term )+          with OP in  < <= = != >= >
    term      := product ( ("+" | "-") product )*
    product   := factor ( "*" factor )*     (must stay linear)
    factor    := NUMBER | IDENT | "(" term ")" | "-" factor

Numbers are integers or rationals written ``p/q``.  Comparison chains like
``0 <= x < 1`` expand to conjunctions; ``!=`` expands to ``< ∨ >``.
Keywords are case-insensitive.
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import NamedTuple

from repro.errors import ParseError
from repro.constraints.atoms import Atom, Op
from repro.constraints.formula import (
    AtomFormula,
    Exists,
    Forall,
    Formula,
    Not,
    conjunction,
    disjunction,
    FALSE,
    TRUE,
)
from repro.constraints.terms import LinearTerm


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(?:/\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><->|->|<=|>=|!=|<|>|=|&|\||!|\(|\)|\.|,|\+|-|\*)
    """,
    re.VERBOSE,
)

_COMPARISONS = {"<", "<=", "=", "!=", ">=", ">"}
_OP_FOR = {
    "<": Op.LT,
    "<=": Op.LE,
    "=": Op.EQ,
    ">=": Op.GE,
    ">": Op.GT,
}


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r}", position, text
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append(_Token(kind, match.group(), match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers -------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def accept(self, text: str) -> bool:
        if self.peek().text == text and self.peek().kind != "eof":
            self.advance()
            return True
        return False

    def expect(self, text: str) -> _Token:
        token = self.peek()
        if token.text != text or token.kind == "eof":
            raise ParseError(
                f"expected {text!r}, found {token.text or 'end of input'!r}",
                token.position,
                self.text,
            )
        return self.advance()

    def _keyword(self) -> str | None:
        token = self.peek()
        if token.kind == "ident":
            lowered = token.text.lower()
            if lowered in ("exists", "forall", "true", "false"):
                return lowered
        return None

    # -- formula levels --------------------------------------------------
    def parse_formula(self) -> Formula:
        left = self.parse_implies()
        while self.accept("<->"):
            right = self.parse_implies()
            left = disjunction(
                [
                    conjunction([left, right]),
                    conjunction([Not(left), Not(right)]),
                ]
            )
        return left

    def parse_implies(self) -> Formula:
        left = self.parse_or()
        if self.accept("->"):
            right = self.parse_implies()
            return disjunction([Not(left), right])
        return left

    def parse_or(self) -> Formula:
        parts = [self.parse_and()]
        while self.accept("|"):
            parts.append(self.parse_and())
        return disjunction(parts)

    def parse_and(self) -> Formula:
        parts = [self.parse_unary()]
        while self.accept("&"):
            parts.append(self.parse_unary())
        return conjunction(parts)

    def parse_unary(self) -> Formula:
        if self.accept("!"):
            return Not(self.parse_unary())
        keyword = self._keyword()
        if keyword in ("exists", "forall"):
            self.advance()
            names = [self._expect_ident()]
            while self.accept(","):
                names.append(self._expect_ident())
            self.expect(".")
            body = self.parse_formula()
            wrapper = Exists if keyword == "exists" else Forall
            for name in reversed(names):
                body = wrapper(name, body)
            return body
        if keyword == "true":
            self.advance()
            return TRUE
        if keyword == "false":
            self.advance()
            return FALSE
        if self.peek().text == "(":
            # Could be a parenthesised formula or a parenthesised term that
            # begins a comparison.  Try the formula reading first and fall
            # back on term parsing.
            saved = self.index
            self.advance()
            try:
                inner = self.parse_formula()
                self.expect(")")
            except ParseError:
                self.index = saved
                return self.parse_comparison()
            if self.peek().text in _COMPARISONS:
                # `(term) < ...`: re-parse as a comparison.
                self.index = saved
                return self.parse_comparison()
            return inner
        return self.parse_comparison()

    def parse_comparison(self) -> Formula:
        terms = [self.parse_term()]
        operators: list[str] = []
        while self.peek().text in _COMPARISONS:
            operators.append(self.advance().text)
            terms.append(self.parse_term())
        if not operators:
            token = self.peek()
            raise ParseError(
                "expected a comparison operator", token.position, self.text
            )
        parts: list[Formula] = []
        for left, op_text, right in zip(terms, operators, terms[1:]):
            if op_text == "!=":
                parts.append(
                    disjunction(
                        [
                            AtomFormula(Atom.compare(left, Op.LT, right)),
                            AtomFormula(Atom.compare(left, Op.GT, right)),
                        ]
                    )
                )
            else:
                parts.append(
                    AtomFormula(Atom.compare(left, _OP_FOR[op_text], right))
                )
        return conjunction(parts)

    # -- terms -----------------------------------------------------------
    def parse_term(self) -> LinearTerm:
        term = self.parse_product()
        while self.peek().text in ("+", "-"):
            if self.accept("+"):
                term = term + self.parse_product()
            else:
                self.advance()
                term = term - self.parse_product()
        return term

    def parse_product(self) -> LinearTerm:
        term = self.parse_factor()
        while self.accept("*"):
            term = term * self.parse_factor()
        return term

    def parse_factor(self) -> LinearTerm:
        token = self.peek()
        if token.text == "-":
            self.advance()
            return -self.parse_factor()
        if token.kind == "number":
            self.advance()
            return LinearTerm.const(Fraction(token.text))
        if token.kind == "ident":
            if self._keyword() is not None:
                raise ParseError(
                    f"keyword {token.text!r} cannot be a variable",
                    token.position,
                    self.text,
                )
            self.advance()
            return LinearTerm.variable(token.text)
        if token.text == "(":
            self.advance()
            inner = self.parse_term()
            self.expect(")")
            return inner
        raise ParseError(
            f"expected a term, found {token.text or 'end of input'!r}",
            token.position,
            self.text,
        )

    def _expect_ident(self) -> str:
        token = self.peek()
        if token.kind != "ident" or self._keyword() is not None:
            raise ParseError(
                "expected a variable name", token.position, self.text
            )
        return self.advance().text


def parse_formula(text: str) -> Formula:
    """Parse a constraint formula from text."""
    parser = _Parser(text)
    formula = parser.parse_formula()
    trailing = parser.peek()
    if trailing.kind != "eof":
        raise ParseError(
            f"unexpected trailing input {trailing.text!r}",
            trailing.position,
            text,
        )
    return formula


def parse_term(text: str) -> LinearTerm:
    """Parse a linear term from text."""
    parser = _Parser(text)
    term = parser.parse_term()
    trailing = parser.peek()
    if trailing.kind != "eof":
        raise ParseError(
            f"unexpected trailing input {trailing.text!r}",
            trailing.position,
            text,
        )
    return term
