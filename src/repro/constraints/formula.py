"""First-order formulas over the context structure (ℝ, <, +).

The AST is a small immutable class hierarchy: truth constants, atoms,
boolean connectives and real-sort quantifiers.  Formulas support free
variable computation, capture-avoiding substitution of linear terms for
variables, renaming, and exact evaluation of quantifier-free formulas at
rational points.  Quantifier elimination lives in
:mod:`repro.constraints.qelim`; normal forms in
:mod:`repro.constraints.normal_forms`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping

from repro.errors import FormulaError
from repro.constraints.atoms import Atom, Op
from repro.constraints.terms import LinearTerm


class Formula:
    """Abstract base of all first-order formulas over (ℝ, <, +)."""

    def free_variables(self) -> frozenset[str]:
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, LinearTerm]) -> "Formula":
        """Simultaneous, capture-avoiding substitution of terms."""
        raise NotImplementedError

    def evaluate(self, assignment: Mapping[str, Fraction]) -> bool:
        """Exact truth value; only quantifier-free formulas support this."""
        raise NotImplementedError

    def is_quantifier_free(self) -> bool:
        raise NotImplementedError

    def atoms(self) -> frozenset[Atom]:
        """All atoms occurring in the formula."""
        raise NotImplementedError

    def size(self) -> int:
        """Representation size: nodes + atom variable occurrences.

        This is the paper's size measure |𝔅| specialised to single
        formulas (Section 2: the size of a database is the sum of the
        lengths of its representing formulas).
        """
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Formula":
        """Rename free variables (bound variables are untouched)."""
        return self.substitute(
            {old: LinearTerm.variable(new) for old, new in mapping.items()}
        )

    # Convenience connective constructors --------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class TrueFormula(Formula):
    """The constant ⊤."""

    def free_variables(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, mapping: Mapping[str, LinearTerm]) -> Formula:
        return self

    def evaluate(self, assignment: Mapping[str, Fraction]) -> bool:
        return True

    def is_quantifier_free(self) -> bool:
        return True

    def atoms(self) -> frozenset[Atom]:
        return frozenset()

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseFormula(Formula):
    """The constant ⊥."""

    def free_variables(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, mapping: Mapping[str, LinearTerm]) -> Formula:
        return self

    def evaluate(self, assignment: Mapping[str, Fraction]) -> bool:
        return False

    def is_quantifier_free(self) -> bool:
        return True

    def atoms(self) -> frozenset[Atom]:
        return frozenset()

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return "false"


TRUE = TrueFormula()
FALSE = FalseFormula()


@dataclass(frozen=True)
class AtomFormula(Formula):
    """A single atomic constraint."""

    atom: Atom

    @staticmethod
    def compare(lhs: LinearTerm, op: Op, rhs: LinearTerm) -> "AtomFormula":
        return AtomFormula(Atom.compare(lhs, op, rhs))

    def free_variables(self) -> frozenset[str]:
        return frozenset(self.atom.variables)

    def substitute(self, mapping: Mapping[str, LinearTerm]) -> Formula:
        return AtomFormula(self.atom.substitute(mapping))

    def evaluate(self, assignment: Mapping[str, Fraction]) -> bool:
        return self.atom.holds_at(assignment)

    def is_quantifier_free(self) -> bool:
        return True

    def atoms(self) -> frozenset[Atom]:
        return frozenset({self.atom})

    def size(self) -> int:
        return 1 + len(self.atom.variables)

    def __str__(self) -> str:
        return str(self.atom)


@dataclass(frozen=True)
class And(Formula):
    """Conjunction of zero or more formulas (empty = ⊤)."""

    operands: tuple[Formula, ...]

    def free_variables(self) -> frozenset[str]:
        return frozenset().union(*(f.free_variables() for f in self.operands)) \
            if self.operands else frozenset()

    def substitute(self, mapping: Mapping[str, LinearTerm]) -> Formula:
        return And(tuple(f.substitute(mapping) for f in self.operands))

    def evaluate(self, assignment: Mapping[str, Fraction]) -> bool:
        return all(f.evaluate(assignment) for f in self.operands)

    def is_quantifier_free(self) -> bool:
        return all(f.is_quantifier_free() for f in self.operands)

    def atoms(self) -> frozenset[Atom]:
        return frozenset().union(*(f.atoms() for f in self.operands)) \
            if self.operands else frozenset()

    def size(self) -> int:
        return 1 + sum(f.size() for f in self.operands)

    def __str__(self) -> str:
        if not self.operands:
            return "true"
        return "(" + " & ".join(str(f) for f in self.operands) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction of zero or more formulas (empty = ⊥)."""

    operands: tuple[Formula, ...]

    def free_variables(self) -> frozenset[str]:
        return frozenset().union(*(f.free_variables() for f in self.operands)) \
            if self.operands else frozenset()

    def substitute(self, mapping: Mapping[str, LinearTerm]) -> Formula:
        return Or(tuple(f.substitute(mapping) for f in self.operands))

    def evaluate(self, assignment: Mapping[str, Fraction]) -> bool:
        return any(f.evaluate(assignment) for f in self.operands)

    def is_quantifier_free(self) -> bool:
        return all(f.is_quantifier_free() for f in self.operands)

    def atoms(self) -> frozenset[Atom]:
        return frozenset().union(*(f.atoms() for f in self.operands)) \
            if self.operands else frozenset()

    def size(self) -> int:
        return 1 + sum(f.size() for f in self.operands)

    def __str__(self) -> str:
        if not self.operands:
            return "false"
        return "(" + " | ".join(str(f) for f in self.operands) + ")"


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    operand: Formula

    def free_variables(self) -> frozenset[str]:
        return self.operand.free_variables()

    def substitute(self, mapping: Mapping[str, LinearTerm]) -> Formula:
        return Not(self.operand.substitute(mapping))

    def evaluate(self, assignment: Mapping[str, Fraction]) -> bool:
        return not self.operand.evaluate(assignment)

    def is_quantifier_free(self) -> bool:
        return self.operand.is_quantifier_free()

    def atoms(self) -> frozenset[Atom]:
        return self.operand.atoms()

    def size(self) -> int:
        return 1 + self.operand.size()

    def __str__(self) -> str:
        return f"!{self.operand}"


class _Quantifier(Formula):
    """Shared behaviour of ∃ and ∀."""

    variable: str
    body: Formula

    def free_variables(self) -> frozenset[str]:
        return self.body.free_variables() - {self.variable}

    def _substitute_body(
        self, mapping: Mapping[str, LinearTerm]
    ) -> tuple[str, Formula]:
        """Capture-avoiding substitution under the binder."""
        relevant = {
            name: term
            for name, term in mapping.items()
            if name != self.variable and name in self.body.free_variables()
        }
        if not relevant:
            return self.variable, self.body
        clashing = {
            v for term in relevant.values() for v in term.variables
        }
        variable = self.variable
        body = self.body
        if variable in clashing:
            fresh = fresh_variable(
                clashing | body.free_variables() | set(relevant), variable
            )
            body = body.substitute({variable: LinearTerm.variable(fresh)})
            variable = fresh
        return variable, body.substitute(relevant)

    def evaluate(self, assignment: Mapping[str, Fraction]) -> bool:
        raise FormulaError(
            "cannot evaluate a quantified formula pointwise; "
            "run quantifier elimination first"
        )

    def is_quantifier_free(self) -> bool:
        return False

    def atoms(self) -> frozenset[Atom]:
        return self.body.atoms()

    def size(self) -> int:
        return 2 + self.body.size()


@dataclass(frozen=True)
class Exists(_Quantifier):
    """Existential quantification over the real sort."""

    variable: str
    body: Formula

    def substitute(self, mapping: Mapping[str, LinearTerm]) -> Formula:
        variable, body = self._substitute_body(mapping)
        return Exists(variable, body)

    def __str__(self) -> str:
        return f"(EXISTS {self.variable}. {self.body})"


@dataclass(frozen=True)
class Forall(_Quantifier):
    """Universal quantification over the real sort."""

    variable: str
    body: Formula

    def substitute(self, mapping: Mapping[str, LinearTerm]) -> Formula:
        variable, body = self._substitute_body(mapping)
        return Forall(variable, body)

    def __str__(self) -> str:
        return f"(FORALL {self.variable}. {self.body})"


def conjunction(formulas: Iterable[Formula]) -> Formula:
    """N-ary conjunction with constant folding."""
    flat: list[Formula] = []
    for f in formulas:
        if isinstance(f, FalseFormula):
            return FALSE
        if isinstance(f, TrueFormula):
            continue
        if isinstance(f, And):
            flat.extend(f.operands)
        else:
            flat.append(f)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disjunction(formulas: Iterable[Formula]) -> Formula:
    """N-ary disjunction with constant folding."""
    flat: list[Formula] = []
    for f in formulas:
        if isinstance(f, TrueFormula):
            return TRUE
        if isinstance(f, FalseFormula):
            continue
        if isinstance(f, Or):
            flat.extend(f.operands)
        else:
            flat.append(f)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def fresh_variable(taken: Iterable[str], stem: str = "v") -> str:
    """A variable name not in ``taken``, derived from ``stem``."""
    taken_set = set(taken)
    for index in itertools.count():
        candidate = f"{stem}_{index}"
        if candidate not in taken_set:
            return candidate
    raise AssertionError("unreachable")  # pragma: no cover
