"""Quantifier elimination for first-order logic over (ℝ, <, +).

The context structure of the paper admits elimination of quantifiers —
this is what makes FO+LIN a closed query language (Section 2).  The
procedure is the textbook one: work innermost-out; for an existential
quantifier put the (already quantifier-free) body in DNF and apply exact
Fourier–Motzkin elimination per disjunct; handle ∀ as ¬∃¬.
"""

from __future__ import annotations

from repro.errors import FormulaError
from repro.geometry.fourier_motzkin import (
    eliminate_variable,
    simplify_system,
)
from repro.constraints.atoms import atom_from_constraint
from repro.constraints.formula import (
    And,
    AtomFormula,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Not,
    Or,
    TrueFormula,
    conjunction,
    disjunction,
    TRUE,
)
from repro.constraints.normal_forms import Disjunct


def eliminate_quantifiers(formula: Formula) -> Formula:
    """An equivalent quantifier-free formula over the same free variables."""
    if isinstance(formula, (TrueFormula, FalseFormula, AtomFormula)):
        return formula
    if isinstance(formula, Not):
        return Not(eliminate_quantifiers(formula.operand))
    if isinstance(formula, And):
        return conjunction(
            eliminate_quantifiers(f) for f in formula.operands
        )
    if isinstance(formula, Or):
        return disjunction(
            eliminate_quantifiers(f) for f in formula.operands
        )
    if isinstance(formula, Exists):
        body = eliminate_quantifiers(formula.body)
        return _eliminate_exists(formula.variable, body)
    if isinstance(formula, Forall):
        body = eliminate_quantifiers(formula.body)
        return Not(_eliminate_exists(formula.variable, Not(body)))
    raise FormulaError(f"unknown formula node {type(formula).__name__}")


def _eliminate_exists(variable: str, body: Formula) -> Formula:
    """Eliminate ``∃ variable`` from a quantifier-free body.

    The body is put into DNF with feasibility pruning (negations inside
    ∀-as-¬∃¬ rewritings would otherwise explode the distribution), then
    Fourier–Motzkin projects each disjunct.
    """
    from repro.constraints.simplify import to_dnf_pruned
    from repro.obs.tracing import TRACER

    with TRACER.span("fm.eliminate", aggregate=True) as fm_span:
        disjuncts = to_dnf_pruned(body)
        fm_span.add("disjuncts", len(disjuncts))
        surviving: list[Formula] = []
        for disjunct in disjuncts:
            projected = _project_disjunct(disjunct, variable)
            if projected is not None:
                surviving.append(projected)
        return disjunction(surviving)


def _project_disjunct(disjunct: Disjunct, variable: str) -> Formula | None:
    """FM-project one conjunction of atoms; ``None`` when it collapses to ⊥."""
    if not disjunct:
        return TRUE
    variables = sorted(
        {v for atom in disjunct for v in atom.variables} | {variable}
    )
    if variable not in {v for atom in disjunct for v in atom.variables}:
        # The variable does not occur: ∃x just drops.
        return conjunction(AtomFormula(a) for a in disjunct)
    index = variables.index(variable)
    system = [atom.to_linear_constraint(variables) for atom in disjunct]
    projected = eliminate_variable(system, index)
    cleaned = simplify_system(projected)
    if cleaned is None:
        return None
    if not cleaned:
        return TRUE
    remaining = [v for v in variables if v != variable]
    atoms = []
    for row in cleaned:
        reduced_coeffs = tuple(
            c for i, c in enumerate(row.coeffs) if i != index
        )
        atoms.append(
            atom_from_constraint(
                type(row)(reduced_coeffs, row.rel, row.rhs), remaining
            )
        )
    return conjunction(AtomFormula(a) for a in atoms)


def is_satisfiable_qf(formula: Formula) -> bool:
    """Exact satisfiability of a quantifier-free formula over (ℝ, <, +).

    The pruned DNF conversion only keeps feasible disjuncts, so the
    formula is satisfiable iff any disjunct survives.
    """
    from repro.constraints.simplify import to_dnf_pruned

    return bool(to_dnf_pruned(formula))


def is_valid_qf(formula: Formula) -> bool:
    """Exact validity (truth at every point) of a quantifier-free formula."""
    return not is_satisfiable_qf(Not(formula))


def formulas_equivalent(left: Formula, right: Formula) -> bool:
    """Do two formulas define the same relation over (ℝ, <, +)?

    Both formulas may contain quantifiers; they are eliminated first.
    This implements the paper's 𝔄-equivalence of representations.
    """
    left_qf = eliminate_quantifiers(left)
    right_qf = eliminate_quantifiers(right)
    differs = Or(
        (
            And((left_qf, Not(right_qf))),
            And((right_qf, Not(left_qf))),
        )
    )
    return not is_satisfiable_qf(differs)
