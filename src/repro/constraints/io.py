"""Textual serialisation of relations and databases.

A deterministic, human-readable format that round-trips through the
constraint parser — the on-disk analogue of the paper's "standard
encoding of constraint databases by the formulae of their
representation" (Section 2):

.. code-block:: text

    # repro database v1
    RELATION S (x0, x1)
    ((-x0 <= 0 & -x1 <= 0 & x0 + x1 <= 1))
    RELATION Zone (x0, x1)
    ...

One ``RELATION <name> (<schema>)`` header per relation, followed by one
line holding the representing formula.  Relation names must be valid
upper-case-initial identifiers so they can be referenced from queries.
"""

from __future__ import annotations

import pathlib
import re

from repro.errors import ParseError
from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation

_HEADER = "# repro database v1"
_RELATION_RE = re.compile(
    r"^RELATION\s+([A-Z][A-Za-z0-9_]*)\s*\(([^)]*)\)\s*$"
)


def dump_relation(relation: ConstraintRelation) -> str:
    """The formula line of a relation (re-parseable)."""
    return str(relation.formula)


def dumps_database(database: ConstraintDatabase) -> str:
    """Serialise a database to the textual format."""
    lines = [_HEADER]
    for name, relation in database:
        schema = ", ".join(relation.variables)
        lines.append(f"RELATION {name} ({schema})")
        lines.append(dump_relation(relation))
    return "\n".join(lines) + "\n"


def loads_database(text: str) -> ConstraintDatabase:
    """Parse the textual format back into a database."""
    lines = [
        line.strip()
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith("#")
    ]
    relations: dict[str, ConstraintRelation] = {}
    index = 0
    while index < len(lines):
        match = _RELATION_RE.match(lines[index])
        if match is None:
            raise ParseError(
                f"expected a RELATION header, got {lines[index]!r}"
            )
        name = match.group(1)
        schema = tuple(
            part.strip()
            for part in match.group(2).split(",")
            if part.strip()
        )
        if not schema:
            raise ParseError(f"relation {name!r} has an empty schema")
        if name in relations:
            raise ParseError(f"duplicate relation {name!r}")
        index += 1
        if index >= len(lines):
            raise ParseError(f"relation {name!r} has no formula line")
        formula = parse_formula(lines[index])
        relations[name] = ConstraintRelation.make(schema, formula)
        index += 1
    if not relations:
        raise ParseError("no relations found")
    return ConstraintDatabase.make(relations)


def save_database(
    database: ConstraintDatabase, path: str | pathlib.Path
) -> None:
    """Write a database to a file."""
    pathlib.Path(path).write_text(dumps_database(database))


def load_database(path: str | pathlib.Path) -> ConstraintDatabase:
    """Read a database from a file."""
    return loads_database(pathlib.Path(path).read_text())
