"""Finitely represented relations over (ℝ, <, +).

A :class:`ConstraintRelation` pairs an ordered variable schema with a
quantifier-free formula over those variables, the paper's representation
of an (in general infinite) relation (Section 2).  The class offers the
full first-order algebra — intersection, union, complement, projection
(∃), renaming — with every operation returning a quantifier-free result,
plus the exact semantic predicates (membership, emptiness, equivalence)
the rest of the library needs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from repro.errors import FormulaError
from repro.geometry.polyhedron import Polyhedron
from repro.constraints.atoms import Atom
from repro.constraints.formula import (
    Exists,
    Formula,
    FALSE,
    TRUE,
)
from repro.constraints.normal_forms import (
    Disjunct,
    dnf_to_formula,
    to_dnf,
)
from repro.constraints.qelim import (
    eliminate_quantifiers,
    is_satisfiable_qf,
)
from repro.constraints.terms import LinearTerm


@dataclass(frozen=True)
class ConstraintRelation:
    """A relation over schema ``variables`` represented by ``formula``."""

    variables: tuple[str, ...]
    formula: Formula
    _cache: dict = field(
        default_factory=dict, compare=False, repr=False, hash=False
    )

    @staticmethod
    def make(
        variables: Sequence[str], formula: Formula
    ) -> "ConstraintRelation":
        """Validating constructor: formula must be QF over the schema."""
        schema = tuple(variables)
        if len(set(schema)) != len(schema):
            raise FormulaError(f"duplicate variables in schema {schema}")
        if not formula.is_quantifier_free():
            formula = eliminate_quantifiers(formula)
        stray = formula.free_variables() - set(schema)
        if stray:
            raise FormulaError(
                f"formula mentions variables outside the schema: {sorted(stray)}"
            )
        return ConstraintRelation(schema, formula)

    @staticmethod
    def empty(variables: Sequence[str]) -> "ConstraintRelation":
        return ConstraintRelation.make(variables, FALSE)

    @staticmethod
    def universe(variables: Sequence[str]) -> "ConstraintRelation":
        return ConstraintRelation.make(variables, TRUE)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        return len(self.variables)

    def disjuncts(self) -> list[Disjunct]:
        """The DNF representation ``⋁_i ⋀_j φ_ij`` (cached)."""
        if "disjuncts" not in self._cache:
            self._cache["disjuncts"] = to_dnf(self.formula)
        return self._cache["disjuncts"]

    def polyhedra(self) -> list[Polyhedron]:
        """One polyhedron per DNF disjunct, over the schema order."""
        result = []
        for disjunct in self.disjuncts():
            constraints = [
                atom.to_linear_constraint(self.variables) for atom in disjunct
            ]
            result.append(Polyhedron.make(self.arity, constraints))
        return result

    def all_atoms(self) -> frozenset[Atom]:
        return self.formula.atoms()

    def representation_size(self) -> int:
        """The paper's size measure: length of the representing formula."""
        return self.formula.size()

    def fingerprint(self) -> str:
        """Canonical SHA-256 digest of schema + structural formula.

        The digest depends only on the ordered schema and the formula's
        deterministic structural rendering — never on object identity,
        dict/set iteration order or ``PYTHONHASHSEED`` — so it is safe
        as a cross-process disk key (:mod:`repro.store`).  Cached, since
        engine caches and the disk store recompute it on every lookup.
        """
        cached = self._cache.get("fingerprint")
        if cached is None:
            digest = hashlib.sha256()
            digest.update(",".join(self.variables).encode())
            digest.update(b"\x00")
            digest.update(str(self.formula).encode())
            cached = digest.hexdigest()
            self._cache["fingerprint"] = cached
        return cached

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def contains(self, point: Sequence[Fraction]) -> bool:
        """Exact membership of a rational point (ordered by schema)."""
        if len(point) != self.arity:
            raise FormulaError(
                f"point arity {len(point)} != relation arity {self.arity}"
            )
        assignment = dict(zip(self.variables, point))
        return self.formula.evaluate(assignment)

    def is_empty(self) -> bool:
        """True iff no point satisfies the formula (exact)."""
        if "is_empty" not in self._cache:
            self._cache["is_empty"] = not is_satisfiable_qf(self.formula)
        return self._cache["is_empty"]

    def is_universal(self) -> bool:
        """True iff every point satisfies the formula (exact)."""
        return self.complement().is_empty()

    def equivalent(self, other: "ConstraintRelation") -> bool:
        """Do both representations define the same relation?

        Schemas are aligned positionally: the other relation's variables
        are renamed to this schema first.  Decided as emptiness of both
        differences, which routes through the pruned/cell-based
        complement and stays polynomial even for large representations.
        """
        aligned = self._aligned(other)
        if self.formula == aligned.formula:
            return True
        return (
            self.difference(aligned).is_empty()
            and aligned.difference(self).is_empty()
        )

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _aligned(self, other: "ConstraintRelation") -> "ConstraintRelation":
        if other.variables == self.variables:
            return other
        if other.arity != self.arity:
            raise FormulaError(
                f"arity mismatch: {self.arity} vs {other.arity}"
            )
        return other.rename_to(self.variables)

    def intersect(self, other: "ConstraintRelation") -> "ConstraintRelation":
        """Intersection, built as a pruned DNF product.

        Infeasible cross-products of disjuncts are discarded during
        distribution, keeping the representation polynomial (see
        :mod:`repro.constraints.simplify`).
        """
        from repro.constraints.simplify import dnf_product

        aligned = self._aligned(other)
        product = dnf_product([self.disjuncts(), aligned.disjuncts()])
        return relation_from_disjuncts(self.variables, product)

    def union(self, other: "ConstraintRelation") -> "ConstraintRelation":
        from repro.constraints.simplify import prune_disjuncts

        aligned = self._aligned(other)
        merged = prune_disjuncts(
            list(self.disjuncts()) + list(aligned.disjuncts())
        )
        return relation_from_disjuncts(self.variables, merged)

    # Above this many disjuncts, complement switches from the pruned
    # product (compact output, exponential worst case) to enumeration of
    # the atoms' arrangement cells (output and time both bounded by the
    # cell count O(m^k)).
    _COMPLEMENT_PRODUCT_LIMIT = 4

    def complement(self) -> "ConstraintRelation":
        """Complement, staying polynomial in the representation size.

        Small DNFs are negated by pruned distribution (¬⋁_i C_i = ⋀_i
        ¬C_i with infeasible partial products cut immediately), which
        yields compact output.  Large DNFs — typically unions over region
        pairs produced by region quantifiers — are complemented by
        enumerating the faces of the arrangement of their own atoms and
        keeping the falsifying ones; truth is constant per face, so this
        is exact and bounded by the cell count.
        """
        from repro.constraints.simplify import cell_complement, negate_dnf

        disjuncts = self.disjuncts()
        if len(disjuncts) <= self._COMPLEMENT_PRODUCT_LIMIT:
            negated = negate_dnf(disjuncts)
        else:
            negated = cell_complement(disjuncts, self.variables)
        return relation_from_disjuncts(self.variables, negated)

    def difference(self, other: "ConstraintRelation") -> "ConstraintRelation":
        return self.intersect(other.complement())

    def project_out(self, variable: str) -> "ConstraintRelation":
        """Existential projection: ``∃ variable . formula``.

        The variable leaves the schema; the result is quantifier-free by
        construction (Fourier–Motzkin).
        """
        if variable not in self.variables:
            raise FormulaError(f"{variable!r} is not in the schema")
        eliminated = eliminate_quantifiers(Exists(variable, self.formula))
        remaining = tuple(v for v in self.variables if v != variable)
        return ConstraintRelation.make(remaining, eliminated)

    def rename_to(self, new_variables: Sequence[str]) -> "ConstraintRelation":
        """Positional schema rename."""
        schema = tuple(new_variables)
        if len(schema) != self.arity:
            raise FormulaError("renaming must preserve arity")
        if schema == self.variables:
            return self
        # Two-step rename through fresh names avoids collisions when the
        # old and new schemas overlap.
        temp = tuple(f"__tmp_{i}" for i in range(self.arity))
        step1 = self.formula.rename(dict(zip(self.variables, temp)))
        step2 = step1.rename(dict(zip(temp, schema)))
        return ConstraintRelation.make(schema, step2)

    def substitute(
        self, mapping: Mapping[str, LinearTerm]
    ) -> Formula:
        """The formula with schema variables replaced by arbitrary terms.

        This is how the evaluator instantiates ``S(t̄)`` and ``t̄ ∈ R``
        atoms: the defining formula with the tuple's terms plugged in.
        """
        return self.formula.substitute(mapping)

    # ------------------------------------------------------------------
    # Simplification
    # ------------------------------------------------------------------
    def simplify(self) -> "ConstraintRelation":
        """A leaner, equivalent representation (cached).

        Drops LP-infeasible disjuncts, removes atoms implied by the rest
        of their conjunction, and eliminates disjuncts subsumed by
        others (see :func:`repro.constraints.simplify.minimise_dnf`).
        The canonical form is memoised on the relation — and on the
        result itself — so fixpoint engines that re-touch unchanged
        relations never re-minimise them.
        """
        cached = self._cache.get("simplified")
        if cached is not None:
            return cached
        from repro.constraints.simplify import minimise_dnf

        result = ConstraintRelation.make(
            self.variables, dnf_to_formula(minimise_dnf(self.disjuncts()))
        )
        result._cache["simplified"] = result
        self._cache["simplified"] = result
        return result

    def sample_points(self) -> list[tuple[Fraction, ...]]:
        """One rational witness per non-empty disjunct."""
        witnesses = []
        for polyhedron in self.polyhedra():
            point = polyhedron.feasible_point()
            if point is not None:
                witnesses.append(point)
        return witnesses

    def __str__(self) -> str:
        schema = ", ".join(self.variables)
        return f"{{({schema}) : {self.formula}}}"


def relation_from_disjuncts(
    variables: Sequence[str], disjuncts: Iterable[Disjunct]
) -> ConstraintRelation:
    """Build a relation directly from DNF disjuncts."""
    return ConstraintRelation.make(
        variables, dnf_to_formula(list(disjuncts))
    )


def union_relations(
    relations: Sequence[ConstraintRelation],
) -> ConstraintRelation:
    """N-ary union over one schema, pruned once.

    Much cheaper than folding binary unions, which would re-prune the
    accumulated disjunct list quadratically.
    """
    from repro.constraints.simplify import prune_disjuncts

    if not relations:
        raise FormulaError("union of no relations is undefined")
    schema = relations[0].variables
    collected: list[Disjunct] = []
    for relation in relations:
        if relation.variables != schema:
            raise FormulaError("union requires identical schemas")
        collected.extend(relation.disjuncts())
    return relation_from_disjuncts(schema, prune_disjuncts(collected))


def intersect_relations(
    relations: Sequence[ConstraintRelation],
) -> ConstraintRelation:
    """N-ary intersection over one schema as a single pruned product."""
    from repro.constraints.simplify import dnf_product

    if not relations:
        raise FormulaError("intersection of no relations is undefined")
    schema = relations[0].variables
    factors = []
    for relation in relations:
        if relation.variables != schema:
            raise FormulaError("intersection requires identical schemas")
        factors.append(relation.disjuncts())
    return relation_from_disjuncts(schema, dnf_product(factors))
