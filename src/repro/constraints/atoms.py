"""Atomic linear constraints ``term ⋈ 0`` over named variables.

Following the paper's convention (Section 2) the representation relations
use {<, <=, =, >=, >}; negation is avoided by closing the atom set under
complement, and ``≠`` is handled at the formula level by splitting into
``< ∨ >``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

from repro.geometry.fourier_motzkin import LinearConstraint, Rel
from repro.geometry.hyperplane import Hyperplane
from repro.constraints.terms import LinearTerm


class Op(enum.Enum):
    """Comparison operator of an atom ``lhs OP rhs``."""

    LT = "<"
    LE = "<="
    EQ = "="
    GE = ">="
    GT = ">"

    def complement(self) -> "Op | None":
        """The operator of the negated atom; ``None`` for EQ (splits)."""
        return {
            Op.LT: Op.GE,
            Op.LE: Op.GT,
            Op.GE: Op.LT,
            Op.GT: Op.LE,
            Op.EQ: None,
        }[self]

    def flipped(self) -> "Op":
        """The operator with sides swapped (``a < b`` ⇔ ``b > a``)."""
        return {
            Op.LT: Op.GT,
            Op.LE: Op.GE,
            Op.EQ: Op.EQ,
            Op.GE: Op.LE,
            Op.GT: Op.LT,
        }[self]

    def holds(self, value: Fraction) -> bool:
        """Does ``value OP 0`` hold?"""
        if self is Op.LT:
            return value < 0
        if self is Op.LE:
            return value <= 0
        if self is Op.EQ:
            return value == 0
        if self is Op.GE:
            return value >= 0
        return value > 0

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Atom:
    """The atomic constraint ``term OP 0``."""

    term: LinearTerm
    op: Op

    @staticmethod
    def compare(lhs: LinearTerm, op: Op, rhs: LinearTerm) -> "Atom":
        """Build the atom ``lhs OP rhs`` as ``(lhs - rhs) OP 0``."""
        return Atom(lhs - rhs, op)

    @property
    def variables(self) -> tuple[str, ...]:
        return self.term.variables

    def holds_at(self, assignment: Mapping[str, Fraction]) -> bool:
        """Exact truth value at a rational assignment."""
        return self.op.holds(self.term.evaluate(assignment))

    def negated_atoms(self) -> tuple["Atom", ...]:
        """Atoms whose disjunction is the negation of this atom.

        A single atom except for ``=``, which negates to ``< ∨ >``.
        """
        complement = self.op.complement()
        if complement is not None:
            return (Atom(self.term, complement),)
        return (Atom(self.term, Op.LT), Atom(self.term, Op.GT))

    def substitute(self, mapping: Mapping[str, LinearTerm]) -> "Atom":
        return Atom(self.term.substitute(mapping), self.op)

    def rename(self, mapping: Mapping[str, str]) -> "Atom":
        return Atom(self.term.rename(mapping), self.op)

    def to_linear_constraint(
        self, variable_order: Sequence[str]
    ) -> LinearConstraint:
        """Vector form over a variable order: ``coeffs . x REL -constant``."""
        coeffs, constant = self.term.to_vector(variable_order)
        return LinearConstraint.make(coeffs, self.op.value, -constant)

    def hyperplane(self, variable_order: Sequence[str]) -> Hyperplane | None:
        """The boundary hyperplane (paper's 𝕳 construction).

        ``None`` when the atom has no variables (a trivial atom).
        """
        coeffs, constant = self.term.to_vector(variable_order)
        if all(c == 0 for c in coeffs):
            return None
        return Hyperplane.make(coeffs, -constant)

    def is_trivial(self) -> bool:
        """True iff the atom mentions no variables."""
        return self.term.is_constant()

    def trivial_truth(self) -> bool:
        """Truth value of a trivial atom."""
        if not self.is_trivial():
            raise ValueError("atom is not trivial")
        return self.op.holds(self.term.constant)

    def __str__(self) -> str:
        # Present as `linear-part OP -constant` for readability.
        linear = LinearTerm(self.term.coefficients, Fraction(0))
        return f"{linear} {self.op.value} {-self.term.constant}"


def atom_from_constraint(
    constraint: LinearConstraint, variable_order: Sequence[str]
) -> Atom:
    """Convert a vector-form constraint back to a named atom."""
    rel_to_op = {Rel.LE: Op.LE, Rel.LT: Op.LT, Rel.EQ: Op.EQ}
    term = LinearTerm.from_vector(
        constraint.coeffs, -constraint.rhs, variable_order
    )
    return Atom(term, rel_to_op[constraint.rel])
