"""Linear terms over named real variables.

A :class:`LinearTerm` is an immutable linear expression ``Σ c_v · v + k``
with rational coefficients over string-named variables.  Terms support
exact arithmetic (+, -, rational scaling), substitution of terms for
variables, renaming, evaluation at rational points, and conversion to the
positional vector form used by the geometry layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from repro.errors import NonLinearTermError
from repro.geometry.linalg import Vector, as_fraction

ZERO = Fraction(0)


@dataclass(frozen=True)
class LinearTerm:
    """The linear expression ``Σ coefficients[v] * v + constant``.

    ``coefficients`` is stored as a sorted tuple of (variable, coefficient)
    pairs with zero coefficients dropped, so structurally equal terms
    compare and hash equal.
    """

    coefficients: tuple[tuple[str, Fraction], ...]
    constant: Fraction

    @staticmethod
    def make(
        coefficients: Mapping[str, object] | None = None,
        constant: object = 0,
    ) -> "LinearTerm":
        """Normalising constructor; drops zero coefficients, sorts names."""
        items: list[tuple[str, Fraction]] = []
        for name, value in (coefficients or {}).items():
            coeff = as_fraction(value)
            if coeff != 0:
                items.append((name, coeff))
        items.sort()
        return LinearTerm(tuple(items), as_fraction(constant))

    @staticmethod
    def variable(name: str) -> "LinearTerm":
        """The term consisting of a single variable."""
        return LinearTerm(((name, Fraction(1)),), ZERO)

    @staticmethod
    def const(value: object) -> "LinearTerm":
        """A constant term."""
        return LinearTerm((), as_fraction(value))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def variables(self) -> tuple[str, ...]:
        """Variable names with non-zero coefficients, sorted."""
        return tuple(name for name, __ in self.coefficients)

    def coefficient(self, name: str) -> Fraction:
        """Coefficient of ``name`` (zero when absent)."""
        for var, coeff in self.coefficients:
            if var == name:
                return coeff
        return ZERO

    def is_constant(self) -> bool:
        """True iff the term mentions no variable."""
        return not self.coefficients

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _combine(self, other: "LinearTerm", sign: int) -> "LinearTerm":
        merged: dict[str, Fraction] = dict(self.coefficients)
        for name, coeff in other.coefficients:
            merged[name] = merged.get(name, ZERO) + sign * coeff
        return LinearTerm.make(merged, self.constant + sign * other.constant)

    def __add__(self, other: object) -> "LinearTerm":
        return self._combine(_coerce(other), 1)

    def __radd__(self, other: object) -> "LinearTerm":
        return self.__add__(other)

    def __sub__(self, other: object) -> "LinearTerm":
        return self._combine(_coerce(other), -1)

    def __rsub__(self, other: object) -> "LinearTerm":
        return _coerce(other)._combine(self, -1)

    def __neg__(self) -> "LinearTerm":
        return self.scale(Fraction(-1))

    def scale(self, factor: object) -> "LinearTerm":
        """Multiply the whole term by a rational scalar."""
        scalar = as_fraction(factor)
        return LinearTerm.make(
            {name: scalar * coeff for name, coeff in self.coefficients},
            scalar * self.constant,
        )

    def __mul__(self, other: object) -> "LinearTerm":
        if isinstance(other, LinearTerm):
            if other.is_constant():
                return self.scale(other.constant)
            if self.is_constant():
                return other.scale(self.constant)
            raise NonLinearTermError(
                "product of two non-constant terms is not linear"
            )
        return self.scale(other)

    def __rmul__(self, other: object) -> "LinearTerm":
        return self.__mul__(other)

    # ------------------------------------------------------------------
    # Substitution / evaluation
    # ------------------------------------------------------------------
    def substitute(self, mapping: Mapping[str, "LinearTerm"]) -> "LinearTerm":
        """Replace variables by terms (simultaneously)."""
        result = LinearTerm.const(self.constant)
        for name, coeff in self.coefficients:
            replacement = mapping.get(name)
            if replacement is None:
                result = result + LinearTerm.variable(name).scale(coeff)
            else:
                result = result + replacement.scale(coeff)
        return result

    def rename(self, mapping: Mapping[str, str]) -> "LinearTerm":
        """Rename variables (must be injective on this term's variables)."""
        targets = [mapping.get(v, v) for v in self.variables]
        if len(set(targets)) != len(targets):
            raise NonLinearTermError("variable renaming must be injective")
        return LinearTerm.make(
            {mapping.get(name, name): coeff for name, coeff in self.coefficients},
            self.constant,
        )

    def evaluate(self, assignment: Mapping[str, Fraction]) -> Fraction:
        """Exact value at a rational assignment covering all variables."""
        total = self.constant
        for name, coeff in self.coefficients:
            total += coeff * assignment[name]
        return total

    def to_vector(self, variable_order: Sequence[str]) -> tuple[Vector, Fraction]:
        """Positional form ``(coeff_vector, constant)`` for the geometry layer.

        Every variable of the term must appear in ``variable_order``.
        """
        order = list(variable_order)
        missing = [v for v in self.variables if v not in order]
        if missing:
            raise NonLinearTermError(
                f"term mentions variables outside the order: {missing}"
            )
        return (
            tuple(self.coefficient(v) for v in order),
            self.constant,
        )

    @staticmethod
    def from_vector(
        coeffs: Sequence[Fraction],
        constant: Fraction,
        variable_order: Sequence[str],
    ) -> "LinearTerm":
        """Inverse of :meth:`to_vector`."""
        return LinearTerm.make(
            dict(zip(variable_order, coeffs)), constant
        )

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        parts: list[str] = []
        for name, coeff in self.coefficients:
            if coeff == 1:
                parts.append(name)
            elif coeff == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{coeff}*{name}")
        if self.constant != 0 or not parts:
            parts.append(str(self.constant))
        text = " + ".join(parts)
        return text.replace("+ -", "- ")


def _coerce(value: object) -> LinearTerm:
    if isinstance(value, LinearTerm):
        return value
    return LinearTerm.const(value)


def term_sum(terms: Iterable[LinearTerm]) -> LinearTerm:
    """Sum of a (possibly empty) collection of terms."""
    total = LinearTerm.const(0)
    for term in terms:
        total = total + term
    return total
