"""Linear constraint formulas, relations and databases over (ℝ, <, +).

This package implements the paper's data model (Section 2): database
relations are infinite subsets of ℝ^d finitely represented by
quantifier-free formulas in disjunctive normal form, built from linear
(in)equalities with integer (rational) coefficients.  First-order logic
over the context structure (ℝ, <, +) admits quantifier elimination, which
:mod:`repro.constraints.qelim` implements via Fourier–Motzkin.

Public surface:

* :class:`~repro.constraints.terms.LinearTerm` — linear expressions over
  named variables.
* :class:`~repro.constraints.atoms.Atom` and
  :class:`~repro.constraints.atoms.Op` — atomic constraints.
* :mod:`~repro.constraints.formula` — the first-order formula AST.
* :func:`~repro.constraints.qelim.eliminate_quantifiers` — exact QE.
* :class:`~repro.constraints.relation.ConstraintRelation` — finitely
  represented relations with a full algebra.
* :class:`~repro.constraints.database.ConstraintDatabase` — a named
  collection of relations (the paper's σ-expansion of the context).
* :func:`~repro.constraints.parser.parse_formula` — a text front end.
"""

from repro.constraints.atoms import Atom, Op
from repro.constraints.database import ConstraintDatabase
from repro.constraints.formula import (
    And,
    AtomFormula,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Not,
    Or,
    TrueFormula,
    conjunction,
    disjunction,
)
from repro.constraints.normal_forms import to_dnf, to_nnf
from repro.constraints.parser import parse_formula, parse_term
from repro.constraints.qelim import eliminate_quantifiers
from repro.constraints.relation import ConstraintRelation
from repro.constraints.terms import LinearTerm
from repro.constraints.io import (
    dumps_database,
    load_database,
    loads_database,
    save_database,
)
from repro.constraints.topology import (
    boundary,
    closure,
    interior,
    is_closed,
    is_open,
)

__all__ = [
    "Atom",
    "Op",
    "ConstraintDatabase",
    "And",
    "AtomFormula",
    "Exists",
    "FalseFormula",
    "Forall",
    "Formula",
    "Not",
    "Or",
    "TrueFormula",
    "conjunction",
    "disjunction",
    "to_dnf",
    "to_nnf",
    "parse_formula",
    "parse_term",
    "eliminate_quantifiers",
    "ConstraintRelation",
    "LinearTerm",
    "dumps_database",
    "load_database",
    "loads_database",
    "save_database",
    "boundary",
    "closure",
    "interior",
    "is_closed",
    "is_open",
]
