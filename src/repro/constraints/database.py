"""Constraint databases: σ-expansions of the context structure (ℝ, <, +).

A :class:`ConstraintDatabase` is a named collection of finitely
represented relations.  The paper restricts attention to databases with a
single spatial relation ``S`` ("this restriction is not crucial but helps
to simplify the presentation"); we support any number of relations and
provide :meth:`ConstraintDatabase.single` for the paper's setting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.errors import FormulaError
from repro.constraints.formula import Formula
from repro.constraints.relation import ConstraintRelation


def default_schema(arity: int) -> tuple[str, ...]:
    """The canonical column names ``x0 .. x{d-1}``."""
    return tuple(f"x{i}" for i in range(arity))


@dataclass(frozen=True)
class ConstraintDatabase:
    """A linear constraint database over (ℝ, <, +)."""

    relations: tuple[tuple[str, ConstraintRelation], ...]

    @staticmethod
    def make(
        relations: Mapping[str, ConstraintRelation]
    ) -> "ConstraintDatabase":
        if not relations:
            raise FormulaError("a database needs at least one relation")
        return ConstraintDatabase(tuple(sorted(relations.items())))

    @staticmethod
    def single(
        relation: ConstraintRelation, name: str = "S"
    ) -> "ConstraintDatabase":
        """The paper's setting: one spatial relation, named ``S``."""
        return ConstraintDatabase.make({name: relation})

    @staticmethod
    def from_formula(
        formula: Formula, arity: int, name: str = "S"
    ) -> "ConstraintDatabase":
        """Convenience: wrap a formula over ``x0..x{arity-1}`` as ``S``."""
        relation = ConstraintRelation.make(default_schema(arity), formula)
        return ConstraintDatabase.single(relation, name)

    # ------------------------------------------------------------------
    def relation(self, name: str) -> ConstraintRelation:
        for rel_name, relation in self.relations:
            if rel_name == name:
                return relation
        raise FormulaError(f"no relation named {name!r} in the database")

    @property
    def spatial(self) -> ConstraintRelation:
        """The single spatial relation (errors if the db has several)."""
        if len(self.relations) != 1:
            raise FormulaError(
                "database has several relations; name one explicitly"
            )
        return self.relations[0][1]

    def names(self) -> tuple[str, ...]:
        return tuple(name for name, __ in self.relations)

    def __iter__(self) -> Iterator[tuple[str, ConstraintRelation]]:
        return iter(self.relations)

    def __contains__(self, name: str) -> bool:
        return any(rel_name == name for rel_name, __ in self.relations)

    def size(self) -> int:
        """The paper's |𝔅|: sum of representation sizes of all relations."""
        return sum(rel.representation_size() for __, rel in self.relations)

    def __str__(self) -> str:
        lines = [f"{name}: {relation}" for name, relation in self.relations]
        return "\n".join(lines)
